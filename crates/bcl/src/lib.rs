//! # bcl — the BCL baseline (Brock, Buluç, Yelick, ICPP 2019)
//!
//! BCL is a cross-platform distributed data-structures library. Its
//! distributed array maps every remote access **directly to an RMA
//! operation** — there is no cache, so a remote 8-byte read costs a full
//! network round trip (~2 µs, Figure 1) and a remote write a posted PUT
//! plus remote completion. Local accesses are nearly native.
//!
//! The paper also observes (§6.2, citing Hjelm et al.) that BCL's
//! multi-threaded throughput "is hindered by issues with RMA operations in
//! MPI": concurrent threads serialize inside the MPI RMA layer. We model
//! that with a per-node injection lock held for the duration of each RMA
//! operation, which is what flattens BCL's thread-scaling curve in
//! Figure 12.

use std::marker::PhantomData;
use std::sync::Arc;

use darray::Layout;
use dsim::{Ctx, JoinHandle, SimBarrier, VirtualLock};
use rdma_fabric::{CostModel, Fabric, MemoryRegion, NetConfig, Nic, NodeId};

/// Environment handed to each application thread by [`BclCluster::run`].
pub struct BclEnv {
    pub node: NodeId,
    pub thread: usize,
    pub nodes: usize,
    pub threads_per_node: usize,
    barrier: SimBarrier,
}

impl BclEnv {
    /// Global barrier over all application threads of this `run`.
    pub fn barrier(&self, ctx: &mut Ctx) {
        self.barrier.wait(ctx);
    }
}

struct ClusterInner {
    nics: Vec<Arc<Nic<()>>>,
    /// Per-node MPI-RMA injection serialization.
    rma_locks: Vec<VirtualLock>,
    cost: CostModel,
    nodes: usize,
    /// One-way latency of the flush acknowledgment leg.
    ack_leg_ns: u64,
}

/// A BCL "cluster": just the fabric — BCL has no runtime threads and no
/// coherence traffic.
pub struct BclCluster {
    inner: Arc<ClusterInner>,
}

impl BclCluster {
    /// Create a cluster over the default (paper-calibrated) network.
    pub fn new(nodes: usize) -> Self {
        Self::with_net(nodes, NetConfig::default())
    }

    /// Create with an explicit network model.
    pub fn with_net(nodes: usize, net: NetConfig) -> Self {
        let ack_leg_ns = net.prop_latency_ns;
        let fabric: Fabric<()> = Fabric::new(nodes, net);
        let nics = (0..nodes).map(|i| fabric.nic(i)).collect();
        Self {
            inner: Arc::new(ClusterInner {
                nics,
                rma_locks: (0..nodes).map(|_| VirtualLock::new()).collect(),
                cost: CostModel::default(),
                nodes,
                ack_leg_ns,
            }),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.inner.nodes
    }

    /// Allocate a zeroed distributed array, evenly partitioned.
    pub fn alloc<T: darray::Element>(&self, len: usize) -> BclGlobalArray<T> {
        self.alloc_with(len, |_| T::from_bits(0))
    }

    /// Allocate with an initializer (written locally, no traffic).
    #[allow(clippy::needless_range_loop)]
    pub fn alloc_with<T: darray::Element>(
        &self,
        len: usize,
        init: impl Fn(usize) -> T,
    ) -> BclGlobalArray<T> {
        // BCL's array is flat per node; chunking is irrelevant without a
        // cache, so use a 1-element "chunk" granularity for the partition.
        let layout = Layout::even(len, self.inner.nodes, 512);
        let regions: Vec<MemoryRegion> = (0..self.inner.nodes)
            .map(|n| MemoryRegion::new(layout.subarray_words(n)))
            .collect();
        for n in 0..self.inner.nodes {
            for i in layout.node_elems(n) {
                let w = layout.chunk_home_offset(layout.chunk_of(i)) + i % layout.chunk_size();
                regions[n].store(w, init(i).to_bits());
            }
        }
        BclGlobalArray {
            cluster: self.inner.clone(),
            layout: Arc::new(layout),
            regions: Arc::new(regions),
            _pd: PhantomData,
        }
    }

    /// Run application threads and join them.
    pub fn run<F>(&self, ctx: &mut Ctx, threads_per_node: usize, f: F)
    where
        F: Fn(&mut Ctx, BclEnv) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let nodes = self.inner.nodes;
        let barrier = SimBarrier::new(nodes * threads_per_node);
        let mut handles: Vec<JoinHandle> = Vec::new();
        for node in 0..nodes {
            for t in 0..threads_per_node {
                let env = BclEnv {
                    node,
                    thread: t,
                    nodes,
                    threads_per_node,
                    barrier: barrier.clone(),
                };
                let f2 = f.clone();
                handles.push(ctx.spawn(&format!("bcl-{node}-{t}"), move |c| f2(c, env)));
            }
        }
        for h in handles {
            h.join(ctx);
        }
    }
}

/// Unbound handle to a BCL distributed array.
pub struct BclGlobalArray<T> {
    cluster: Arc<ClusterInner>,
    layout: Arc<Layout>,
    regions: Arc<Vec<MemoryRegion>>,
    _pd: PhantomData<fn() -> T>,
}

impl<T> Clone for BclGlobalArray<T> {
    fn clone(&self) -> Self {
        Self {
            cluster: self.cluster.clone(),
            layout: self.layout.clone(),
            regions: self.regions.clone(),
            _pd: PhantomData,
        }
    }
}

impl<T: darray::Element> BclGlobalArray<T> {
    /// Node-local view.
    pub fn on(&self, node: NodeId) -> BclArray<T> {
        BclArray {
            global: self.clone(),
            node,
        }
    }

    /// Global length.
    pub fn len(&self) -> usize {
        self.layout.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.layout.is_empty()
    }
}

/// Node-local view of a BCL array.
pub struct BclArray<T> {
    global: BclGlobalArray<T>,
    node: NodeId,
}

impl<T: darray::Element> BclArray<T> {
    /// Global length.
    pub fn len(&self) -> usize {
        self.global.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.global.is_empty()
    }

    /// Home node of `index`.
    pub fn home_of(&self, index: usize) -> NodeId {
        self.global.layout.home_of(index)
    }

    #[inline]
    fn word_of(&self, index: usize) -> usize {
        let l = &self.global.layout;
        l.chunk_home_offset(l.chunk_of(index)) + index % l.chunk_size()
    }

    /// Read element `index`: direct load if local, one-sided RMA READ
    /// (full round trip) if remote.
    pub fn read(&self, ctx: &mut Ctx, index: usize) -> T {
        assert!(index < self.len());
        let cl = &self.global.cluster;
        let home = self.home_of(index);
        let w = self.word_of(index);
        if home == self.node {
            ctx.charge(cl.cost.bcl_local_path());
            return T::from_bits(self.global.regions[home].load(w));
        }
        // MPI RMA injection serialization: one in-flight RMA per node.
        cl.rma_locks[self.node].lock(ctx, cl.cost.mutex_pair_ns / 2);
        let v = cl.nics[self.node].rdma_read(ctx, home, &self.global.regions[home], w, 1);
        cl.rma_locks[self.node].unlock(ctx);
        T::from_bits(v[0])
    }

    /// Write element `index`: direct store if local, RMA PUT + remote
    /// completion (flush) if remote.
    pub fn write(&self, ctx: &mut Ctx, index: usize, value: T) {
        assert!(index < self.len());
        let cl = &self.global.cluster;
        let home = self.home_of(index);
        let w = self.word_of(index);
        if home == self.node {
            ctx.charge(cl.cost.bcl_local_path());
            self.global.regions[home].store(w, value.to_bits());
            return;
        }
        cl.rma_locks[self.node].lock(ctx, cl.cost.mutex_pair_ns / 2);
        let arrive = cl.nics[self.node].rdma_write(
            ctx,
            home,
            &self.global.regions[home],
            w,
            vec![value.to_bits()],
        );
        // BCL flushes the PUT before returning: the flush completes only
        // after the remote-completion acknowledgment travels back, so a
        // remote write costs a full round trip like a read.
        ctx.sleep_until(arrive + 1);
        ctx.sleep(self.global.cluster.ack_leg_ns);
        cl.rma_locks[self.node].unlock(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsim::{Sim, SimConfig, VTime};

    #[test]
    fn local_and_remote_roundtrip() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let c = BclCluster::with_net(2, NetConfig::instant());
            let arr = c.alloc_with::<u64>(2048, |i| i as u64);
            c.run(ctx, 1, move |ctx, env| {
                let a = arr.on(env.node);
                // Read everything (half is remote).
                for i in (0..a.len()).step_by(33) {
                    assert_eq!(a.read(ctx, i), i as u64);
                }
                // Write the other node's half.
                let start = if env.node == 0 { 1024 } else { 0 };
                for i in start..start + 32 {
                    a.write(ctx, i, 5_000 + i as u64);
                }
                env.barrier(ctx);
                for i in 0..32 {
                    assert_eq!(a.read(ctx, i), 5_000 + i as u64);
                    assert_eq!(a.read(ctx, 1024 + i), 5_000 + 1024 + i as u64);
                }
            });
        });
    }

    #[test]
    fn remote_read_costs_a_round_trip() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let c = BclCluster::new(2); // default net: ~2 µs RTT
            let arr = c.alloc_with::<u64>(2048, |i| i as u64);
            c.run(ctx, 1, move |ctx, env| {
                if env.node != 0 {
                    return;
                }
                let a = arr.on(0);
                let t0 = ctx.now();
                let _ = a.read(ctx, 2000); // node 1's element
                let dt = ctx.now() - t0;
                assert!((1_500..3_000).contains(&dt), "remote read = {dt} ns");
                let t0 = ctx.now();
                let _ = a.read(ctx, 3); // local
                assert!(ctx.now() - t0 < 50, "local read must be cheap");
            });
        });
    }

    #[test]
    fn threads_serialize_on_the_rma_lock() {
        // Figure 12: BCL throughput does not scale with threads.
        fn run(threads: usize) -> VTime {
            Sim::new(SimConfig::default()).run(move |ctx| {
                let c = BclCluster::new(2);
                let arr = c.alloc::<u64>(4096);
                let out = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
                let o2 = out.clone();
                c.run(ctx, threads, move |ctx, env| {
                    if env.node != 0 {
                        return;
                    }
                    let a = arr.on(0);
                    let per = 64 / env.threads_per_node;
                    for i in 0..per {
                        let _ = a.read(ctx, 2048 + env.thread * per + i);
                    }
                    o2.fetch_max(ctx.now(), std::sync::atomic::Ordering::Relaxed);
                });
                out.load(std::sync::atomic::Ordering::Relaxed)
            })
        }
        let t1 = run(1);
        let t4 = run(4);
        // 64 remote reads total in both cases; with perfect scaling t4
        // would be ~t1/4, but the injection lock keeps it near t1.
        assert!(t4 * 2 > t1, "BCL threads should not scale: t1={t1} t4={t4}");
    }
}
