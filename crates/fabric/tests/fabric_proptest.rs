//! Property tests of the fabric model: per-link FIFO under arbitrary send
//! schedules, latency/bandwidth accounting, and one-sided write atomicity
//! relative to notifications.

use dsim::{Sim, SimConfig};
use proptest::prelude::*;
use rdma_fabric::{Fabric, MemoryRegion, NetConfig};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Messages posted on one link arrive in order with non-decreasing
    /// delivery times, regardless of sizes and inter-send gaps.
    #[test]
    fn link_fifo_under_arbitrary_schedules(
        sends in proptest::collection::vec((0u64..10_000, 0u64..4_096), 1..40),
    ) {
        Sim::new(SimConfig::default()).run(move |ctx| {
            let fab: Fabric<u64> = Fabric::new(2, NetConfig::default());
            let n0 = fab.nic(0);
            let rx = fab.nic(1).rx();
            let count = sends.len();
            let h = {
                let sends = sends.clone();
                ctx.spawn("tx", move |c| {
                    for (i, (gap, bytes)) in sends.into_iter().enumerate() {
                        c.charge(gap + 1);
                        n0.send(c, 1, i as u64, bytes);
                    }
                })
            };
            let mut last_t = 0;
            for expect in 0..count as u64 {
                let (src, msg) = rx.recv(ctx);
                prop_assert_eq!(src, 0);
                prop_assert_eq!(msg, expect);
                prop_assert!(ctx.now() >= last_t);
                last_t = ctx.now();
            }
            h.join(ctx);
            Ok(())
        })?;
    }

    /// A WRITE+SEND pair always lands data before the notification, for any
    /// payload size and any competing traffic on the link.
    #[test]
    fn write_send_ordering_with_competition(
        payload in 1usize..2_000,
        noise in proptest::collection::vec(0u64..2_048, 0..10),
    ) {
        Sim::new(SimConfig::default()).run(move |ctx| {
            let fab: Fabric<u32> = Fabric::new(2, NetConfig::default());
            let region = MemoryRegion::new(payload);
            let n0 = fab.nic(0);
            for (i, bytes) in noise.iter().enumerate() {
                n0.send(ctx, 1, 1000 + i as u32, *bytes);
            }
            let data: Vec<u64> = (0..payload as u64).collect();
            n0.rdma_write_send(ctx, 1, &region, 0, data, 7, 8);
            let rx = fab.nic(1).rx();
            loop {
                let (_, msg) = rx.recv(ctx);
                if msg == 7 {
                    break;
                }
            }
            // The data is fully visible at notification time.
            for i in 0..payload {
                prop_assert_eq!(region.load(i), i as u64);
            }
            Ok(())
        })?;
    }

    /// Transmission time grows monotonically with message size.
    #[test]
    fn bandwidth_is_monotone(a in 0u64..100_000, b in 0u64..100_000) {
        let c = NetConfig::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(c.tx_time(lo) <= c.tx_time(hi));
        // And is consistent with the configured rate within rounding.
        let t = c.tx_time(hi);
        let ideal = hi as f64 * 1000.0 / c.bytes_per_us as f64;
        prop_assert!((t as f64 - ideal).abs() <= 1.0, "t={t} ideal={ideal}");
    }

    /// rdma_read returns the remote memory content at request arrival and
    /// charges at least the full round trip.
    #[test]
    fn read_snapshot_and_latency(vals in proptest::collection::vec(any::<u64>(), 1..64)) {
        Sim::new(SimConfig::default()).run(move |ctx| {
            let fab: Fabric<()> = Fabric::new(2, NetConfig::default());
            let region = MemoryRegion::new(vals.len());
            region.write_slice(0, &vals);
            let n0 = fab.nic(0);
            let t0 = ctx.now();
            let got = n0.rdma_read(ctx, 1, &region, 0, vals.len());
            prop_assert_eq!(&got, &vals);
            prop_assert!(ctx.now() - t0 >= 1_700, "rtt = {}", ctx.now() - t0);
            Ok(())
        })?;
    }
}
