//! The fabric itself: per-node NICs, directed links with FIFO (RC queue
//! pair) ordering, verbs, and statistics.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dsim::{Ctx, Mailbox, Rng, VTime};
use parking_lot::Mutex;

use crate::fault::FaultPlan;
use crate::net::NetConfig;
use crate::region::MemoryRegion;
use crate::NodeId;

/// Per-NIC verb counters (all monotonically increasing).
#[derive(Debug, Default)]
pub struct NicStats {
    /// Two-sided SEND verbs posted.
    pub sends: AtomicU64,
    /// Bytes carried by SEND verbs (header + payload).
    pub send_bytes: AtomicU64,
    /// One-sided WRITE verbs posted.
    pub writes: AtomicU64,
    /// Bytes carried by WRITE verbs.
    pub write_bytes: AtomicU64,
    /// One-sided READ verbs posted.
    pub reads: AtomicU64,
    /// Bytes returned by READ verbs.
    pub read_bytes: AtomicU64,
    /// Signaled completions polled (selective signaling reduces these).
    pub signaled: AtomicU64,
    /// Verbs discarded by fault injection (drops + crash discards).
    pub faulted_drops: AtomicU64,
    /// NIC stall windows entered by fault injection.
    pub faulted_stalls: AtomicU64,
}

/// Snapshot of [`NicStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStatsSnapshot {
    pub sends: u64,
    pub send_bytes: u64,
    pub writes: u64,
    pub write_bytes: u64,
    pub reads: u64,
    pub read_bytes: u64,
    pub signaled: u64,
    pub faulted_drops: u64,
    pub faulted_stalls: u64,
}

/// Per-NIC fault-injection state, present only on fabrics built with
/// [`Fabric::with_faults`]. All decisions draw from this NIC's private
/// seeded stream, so the schedule is replayable from the plan alone.
struct FaultState {
    plan: FaultPlan,
    /// This NIC's decorrelated RNG stream (`root.fork(node)`).
    rng: Mutex<Rng>,
    /// The NIC transmits nothing before this time (stall window).
    stall_until: Mutex<VTime>,
    /// Crash times of every node in the fabric, by node id.
    crash_of: Arc<Vec<Option<VTime>>>,
    /// Per-destination QP-error latch: raised when a verb toward that
    /// destination is discarded (the completion-with-error a real RC QP
    /// would report). Sticky until [`Nic::clear_link_error`].
    link_error: Vec<AtomicBool>,
}

impl FaultState {
    fn node_crashed(&self, node: NodeId, now: VTime) -> bool {
        matches!(self.crash_of[node], Some(t) if now >= t)
    }
}

struct Link {
    /// Virtual time at which the link is next free to begin a transmission.
    /// Monotone, which gives per-link FIFO delivery (RC ordering).
    next_free: Mutex<VTime>,
}

/// One simulated RNIC. `M` is the protocol-message payload type delivered
/// through two-sided verbs into the node's receive mailbox.
pub struct Nic<M> {
    node: NodeId,
    cfg: NetConfig,
    /// Outgoing link state, indexed by destination node.
    links: Vec<Link>,
    /// Receive mailboxes of every node in the fabric (including our own).
    rx_of: Vec<Mailbox<(NodeId, M)>>,
    /// Work requests posted since the last signaled completion.
    posted: AtomicU64,
    stats: NicStats,
    /// Fault-injection state; `None` on fault-free fabrics (the fast path
    /// is then bit-identical to a build without fault support).
    fault: Option<FaultState>,
}

impl<M: Send + 'static> Nic<M> {
    /// This NIC's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The receive mailbox protocol messages arrive on.
    pub fn rx(&self) -> Mailbox<(NodeId, M)> {
        self.rx_of[self.node].clone()
    }

    /// Snapshot the verb counters.
    pub fn stats(&self) -> NicStatsSnapshot {
        NicStatsSnapshot {
            sends: self.stats.sends.load(Ordering::Relaxed),
            send_bytes: self.stats.send_bytes.load(Ordering::Relaxed),
            writes: self.stats.writes.load(Ordering::Relaxed),
            write_bytes: self.stats.write_bytes.load(Ordering::Relaxed),
            reads: self.stats.reads.load(Ordering::Relaxed),
            read_bytes: self.stats.read_bytes.load(Ordering::Relaxed),
            signaled: self.stats.signaled.load(Ordering::Relaxed),
            faulted_drops: self.stats.faulted_drops.load(Ordering::Relaxed),
            faulted_stalls: self.stats.faulted_stalls.load(Ordering::Relaxed),
        }
    }

    /// True when the outgoing link to `dst` is still serializing earlier
    /// posted work at virtual time `now`. Pure observation (no link state
    /// is touched): the transport layer uses it to decide whether a newly
    /// posted frame joins the in-flight doorbell batch or opens a new one.
    pub fn link_busy(&self, dst: NodeId, now: VTime) -> bool {
        *self.links[dst].next_free.lock() > now
    }

    /// Crash time scheduled for this node, if the fabric carries a fault
    /// plan that crashes it.
    pub fn crash_time(&self) -> Option<VTime> {
        self.fault.as_ref().and_then(|f| f.crash_of[self.node])
    }

    /// Crash time scheduled for `peer` under this fabric's fault plan.
    pub fn peer_crash_time(&self, peer: NodeId) -> Option<VTime> {
        self.fault.as_ref().and_then(|f| f.crash_of[peer])
    }

    /// True once `node` has halted (its crash time has passed `now`).
    pub fn node_crashed(&self, node: NodeId, now: VTime) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|f| f.node_crashed(node, now))
    }

    /// QP-error latch toward `dst`: set when fault injection discarded a
    /// verb on that link (the completion-with-error a real RC QP reports).
    pub fn link_error(&self, dst: NodeId) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|f| f.link_error[dst].load(Ordering::Relaxed))
    }

    /// Clear the QP-error latch toward `dst` (QP reset).
    pub fn clear_link_error(&self, dst: NodeId) {
        if let Some(f) = &self.fault {
            f.link_error[dst].store(false, Ordering::Relaxed);
        }
    }

    /// Charge the posting cost and, per selective signaling, occasionally a
    /// completion-poll cost. Returns nothing; time is charged to `ctx`.
    fn charge_post(&self, ctx: &mut Ctx) {
        ctx.charge(self.cfg.post_overhead_ns);
        let n = self.posted.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.cfg.signal_interval) {
            ctx.charge(self.cfg.cq_poll_ns);
            self.stats.signaled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Claim the outgoing link to `dst` for a `bytes`-byte transmission
    /// starting no earlier than `earliest`, with `extra` ns of additional
    /// serialization (fault jitter); returns the arrival (delivery) time at
    /// the destination. The link's busy window absorbs `extra`, keeping
    /// per-link delivery monotone (RC FIFO) even under jitter.
    fn claim_link_at(&self, dst: NodeId, bytes: u64, earliest: VTime, extra: VTime) -> VTime {
        let mut nf = self.links[dst].next_free.lock();
        let start = (*nf).max(earliest);
        let done = start + self.cfg.tx_time(bytes) + extra;
        *nf = done;
        done + self.cfg.prop_latency_ns
    }

    /// Claim the outgoing link to `dst` for a `bytes`-byte transmission
    /// starting no earlier than the caller's current time; returns the
    /// arrival (delivery) time at the destination.
    fn claim_link(&self, ctx: &Ctx, dst: NodeId, bytes: u64) -> VTime {
        self.claim_link_at(dst, bytes, ctx.now(), 0)
    }

    /// Run a remote verb through fault injection and link claiming.
    /// Returns the delivery time, or `None` if the verb was discarded
    /// (random drop with `droppable`, or either endpoint crashed).
    fn tx_arrival(&self, ctx: &Ctx, dst: NodeId, bytes: u64, droppable: bool) -> Option<VTime> {
        let Some(f) = &self.fault else {
            return Some(self.claim_link(ctx, dst, bytes));
        };
        // Loopback traffic (e.g. a node's own Halt teardown message) never
        // crosses the wire; it is exempt from injection even after a crash.
        if dst == self.node {
            return Some(self.claim_link(ctx, dst, bytes));
        }
        let now = ctx.now();
        if f.node_crashed(self.node, now) || f.node_crashed(dst, now) {
            self.stats.faulted_drops.fetch_add(1, Ordering::Relaxed);
            f.link_error[dst].store(true, Ordering::Relaxed);
            return None;
        }
        // Partitions are deterministic (no RNG draw) and, like random
        // drops, sever only two-sided SENDs: one-sided WRITEs always land,
        // so a retransmitted or replayed WRITE+SEND pair stays idempotent.
        if droppable && f.plan.partitioned(self.node, dst, now) {
            self.stats.faulted_drops.fetch_add(1, Ordering::Relaxed);
            f.link_error[dst].store(true, Ordering::Relaxed);
            return None;
        }
        // Draw order is fixed (stall trial, stall duration, jitter, drop
        // trial, then an asymmetric-loss trial only for SENDs matching a
        // rule) so a plan replays identically regardless of which fault
        // classes are enabled elsewhere in the run.
        let mut rng = f.rng.lock();
        let mut earliest = now;
        if f.plan.stall_ppm > 0 && rng.chance_ppm(f.plan.stall_ppm) {
            let (lo, hi) = f.plan.stall_ns;
            let dur = rng.range(lo, hi.max(lo) + 1);
            let mut su = f.stall_until.lock();
            *su = (*su).max(now + dur);
            self.stats.faulted_stalls.fetch_add(1, Ordering::Relaxed);
        }
        earliest = earliest.max(*f.stall_until.lock());
        let jitter = if f.plan.jitter_ns > 0 {
            rng.range(0, f.plan.jitter_ns + 1)
        } else {
            0
        };
        let mut dropped = droppable && f.plan.drop_ppm > 0 && rng.chance_ppm(f.plan.drop_ppm);
        if droppable && !dropped {
            let asym_ppm = f.plan.asym_drop_ppm(self.node, dst, now);
            dropped = asym_ppm > 0 && rng.chance_ppm(asym_ppm);
        }
        drop(rng);
        // A dropped SEND still serialized on the wire; the receiver NIC
        // discarded it. Claim the link, then discard.
        let arrive = self.claim_link_at(dst, bytes, earliest, jitter);
        if dropped {
            self.stats.faulted_drops.fetch_add(1, Ordering::Relaxed);
            f.link_error[dst].store(true, Ordering::Relaxed);
            return None;
        }
        Some(arrive)
    }

    /// Two-sided SEND: deliver `msg` into `dst`'s receive mailbox.
    /// `payload_bytes` is the message body size (a header is added).
    /// Under fault injection the message may be silently discarded (QP
    /// error latched on the link); see [`crate::FaultPlan`].
    pub fn send(&self, ctx: &mut Ctx, dst: NodeId, msg: M, payload_bytes: u64) {
        self.charge_post(ctx);
        let bytes = self.cfg.header_bytes + payload_bytes;
        self.stats.sends.fetch_add(1, Ordering::Relaxed);
        self.stats.send_bytes.fetch_add(bytes, Ordering::Relaxed);
        let Some(arrive) = self.tx_arrival(ctx, dst, bytes, true) else {
            return;
        };
        self.rx_of[dst].send_at(ctx, (self.node, msg), arrive);
    }

    /// One-sided RDMA WRITE of `data` into `region` at word `offset`. The
    /// copy is performed by the destination NIC's DMA engine at the delivery
    /// time; the remote CPU is not involved. Returns the delivery time.
    pub fn rdma_write(
        &self,
        ctx: &mut Ctx,
        dst: NodeId,
        region: &MemoryRegion,
        offset: usize,
        data: Vec<u64>,
    ) -> VTime {
        self.charge_post(ctx);
        let bytes = self.cfg.header_bytes + data.len() as u64 * 8;
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats.write_bytes.fetch_add(bytes, Ordering::Relaxed);
        // WRITEs are exempt from random drops (droppable = false) so a
        // retransmitted WRITE+SEND pair is idempotent, but a crashed
        // endpoint discards them like any other verb.
        let Some(arrive) = self.tx_arrival(ctx, dst, bytes, false) else {
            return ctx.now();
        };
        let region = region.clone();
        ctx.schedule_fn(arrive, move || {
            region.write_slice(offset, &data);
        });
        arrive
    }

    /// One-sided WRITE followed by a SEND on the same queue pair: RC FIFO
    /// ordering guarantees the data lands before the notification is
    /// processed (§4.5: application data via WRITE, protocol messages via
    /// SEND/RECV).
    #[allow(clippy::too_many_arguments)]
    pub fn rdma_write_send(
        &self,
        ctx: &mut Ctx,
        dst: NodeId,
        region: &MemoryRegion,
        offset: usize,
        data: Vec<u64>,
        msg: M,
        msg_payload_bytes: u64,
    ) {
        self.rdma_write(ctx, dst, region, offset, data);
        self.send(ctx, dst, msg, msg_payload_bytes);
    }

    /// One-sided RDMA FETCH_ADD on an 8-byte word of `region` (owned by
    /// `dst`): atomically adds `delta` at the remote NIC and returns the
    /// previous value after a full round trip. (DArray itself does not use
    /// RDMA atomics — its Operate interface subsumes them — but they are
    /// part of the verb surface and useful to alternative designs.)
    pub fn rdma_fetch_add(
        &self,
        ctx: &mut Ctx,
        dst: NodeId,
        region: &MemoryRegion,
        offset: usize,
        delta: u64,
    ) -> u64 {
        self.charge_post(ctx);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let req_arrive = self.claim_link(ctx, dst, self.cfg.header_bytes + 8);
        let done = req_arrive + self.cfg.tx_time(8) + self.cfg.prop_latency_ns;
        let buf = Arc::new(Mutex::new(0u64));
        let region = region.clone();
        let b2 = buf.clone();
        ctx.schedule_fn(req_arrive, move || {
            // The remote NIC performs the atomic at request arrival.
            loop {
                let cur = region.load(offset);
                if region
                    .compare_exchange(offset, cur, cur.wrapping_add(delta))
                    .is_ok()
                {
                    *b2.lock() = cur;
                    break;
                }
            }
        });
        let oneshot: Mailbox<()> = Mailbox::new("rdma-fadd");
        oneshot.send_at(ctx, (), done);
        oneshot.recv(ctx);
        let v = *buf.lock();
        v
    }

    /// One-sided RDMA CMP_SWAP on an 8-byte word: atomically replaces the
    /// value with `new` if it equals `expect`; returns the previous value
    /// after a full round trip.
    pub fn rdma_compare_swap(
        &self,
        ctx: &mut Ctx,
        dst: NodeId,
        region: &MemoryRegion,
        offset: usize,
        expect: u64,
        new: u64,
    ) -> u64 {
        self.charge_post(ctx);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let req_arrive = self.claim_link(ctx, dst, self.cfg.header_bytes + 16);
        let done = req_arrive + self.cfg.tx_time(8) + self.cfg.prop_latency_ns;
        let buf = Arc::new(Mutex::new(0u64));
        let region = region.clone();
        let b2 = buf.clone();
        ctx.schedule_fn(req_arrive, move || {
            let prev = match region.compare_exchange(offset, expect, new) {
                Ok(p) => p,
                Err(p) => p,
            };
            *b2.lock() = prev;
        });
        let oneshot: Mailbox<()> = Mailbox::new("rdma-cas");
        oneshot.send_at(ctx, (), done);
        oneshot.recv(ctx);
        let v = *buf.lock();
        v
    }

    /// Blocking one-sided RDMA READ of `len` words from `region` (owned by
    /// `dst`) at word `offset`. The memory snapshot is taken at the request's
    /// arrival at the remote NIC; the caller resumes at the full round-trip
    /// time (≈ 2 µs with default [`NetConfig`]). This is BCL's remote access
    /// primitive.
    pub fn rdma_read(
        &self,
        ctx: &mut Ctx,
        dst: NodeId,
        region: &MemoryRegion,
        offset: usize,
        len: usize,
    ) -> Vec<u64> {
        self.charge_post(ctx);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        self.stats
            .read_bytes
            .fetch_add(len as u64 * 8, Ordering::Relaxed);
        // Request leg: header only.
        let req_arrive = self.claim_link(ctx, dst, self.cfg.header_bytes);
        // Reply leg: data payload. We do not model contention on the
        // dst->src link for READ replies (the reply is NIC-generated and its
        // serialization window is unknowable at post time); propagation and
        // transmission time are charged.
        let done = req_arrive + self.cfg.tx_time(len as u64 * 8) + self.cfg.prop_latency_ns;
        let buf = Arc::new(Mutex::new(Vec::new()));
        let region = region.clone();
        let b2 = buf.clone();
        ctx.schedule_fn(req_arrive, move || {
            *b2.lock() = region.read_vec(offset, len);
        });
        let oneshot: Mailbox<()> = Mailbox::new("rdma-read");
        oneshot.send_at(ctx, (), done);
        oneshot.recv(ctx);
        let v = std::mem::take(&mut *buf.lock());
        debug_assert_eq!(v.len(), len);
        v
    }
}

/// The whole interconnect: `n` NICs with a full mesh of directed links.
pub struct Fabric<M> {
    nics: Vec<Arc<Nic<M>>>,
    cfg: NetConfig,
}

impl<M: Send + 'static> Fabric<M> {
    /// Build a fabric of `n` nodes.
    pub fn new(n: usize, cfg: NetConfig) -> Self {
        Self::build(n, cfg, None)
    }

    /// Build a fabric of `n` nodes with deterministic fault injection.
    /// Every NIC draws from its own stream forked off `plan.seed`, so the
    /// whole fault schedule replays from the plan alone.
    pub fn with_faults(n: usize, cfg: NetConfig, plan: FaultPlan) -> Self {
        Self::build(n, cfg, Some(plan))
    }

    fn build(n: usize, cfg: NetConfig, plan: Option<FaultPlan>) -> Self {
        assert!(n > 0);
        assert!(
            cfg.bytes_per_us > 0,
            "NetConfig::bytes_per_us must be nonzero (tx_time would divide by zero)"
        );
        let rx_of: Vec<Mailbox<(NodeId, M)>> = (0..n)
            .map(|i| Mailbox::new(&format!("nic-rx-{i}")))
            .collect();
        let crash_of: Arc<Vec<Option<VTime>>> = Arc::new(
            (0..n)
                .map(|node| plan.as_ref().and_then(|p| p.crash_time_of(node)))
                .collect(),
        );
        let root_rng = plan.as_ref().map(|p| Rng::new(p.seed));
        let nics = (0..n)
            .map(|node| {
                let fault = plan.as_ref().map(|p| FaultState {
                    plan: p.clone(),
                    rng: Mutex::new(root_rng.as_ref().unwrap().fork(node as u64)),
                    stall_until: Mutex::new(0),
                    crash_of: crash_of.clone(),
                    link_error: (0..n).map(|_| AtomicBool::new(false)).collect(),
                });
                Arc::new(Nic {
                    node,
                    cfg: cfg.clone(),
                    links: (0..n)
                        .map(|_| Link {
                            next_free: Mutex::new(0),
                        })
                        .collect(),
                    rx_of: rx_of.clone(),
                    posted: AtomicU64::new(0),
                    stats: NicStats::default(),
                    fault,
                })
            })
            .collect();
        Self { nics, cfg }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nics.len()
    }

    /// The NIC of `node`.
    pub fn nic(&self, node: NodeId) -> Arc<Nic<M>> {
        self.nics[node].clone()
    }

    /// The fabric's network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsim::{Sim, SimConfig};

    fn sim() -> Sim {
        Sim::new(SimConfig::default())
    }

    #[test]
    fn send_delivers_with_latency() {
        sim().run(|ctx| {
            let fab: Fabric<u32> = Fabric::new(2, NetConfig::default());
            let n0 = fab.nic(0);
            let n1 = fab.nic(1);
            n0.send(ctx, 1, 99, 8);
            let (src, msg) = n1.rx().recv(ctx);
            assert_eq!((src, msg), (0, 99));
            // post + tx(40B) + prop
            assert!(ctx.now() >= 850, "t = {}", ctx.now());
            assert!(ctx.now() < 2_000, "t = {}", ctx.now());
        });
    }

    #[test]
    fn link_fifo_ordering_holds() {
        sim().run(|ctx| {
            let fab: Fabric<u32> = Fabric::new(2, NetConfig::default());
            let n0 = fab.nic(0);
            for i in 0..10 {
                n0.send(ctx, 1, i, 256);
            }
            let rx = fab.nic(1).rx();
            let mut last = 0;
            for i in 0..10 {
                let (_, m) = rx.recv(ctx);
                assert_eq!(m, i);
                assert!(ctx.now() >= last);
                last = ctx.now();
            }
        });
    }

    #[test]
    fn rdma_write_lands_before_notification() {
        sim().run(|ctx| {
            let fab: Fabric<&'static str> = Fabric::new(2, NetConfig::default());
            let region = MemoryRegion::new(64);
            let n0 = fab.nic(0);
            n0.rdma_write_send(ctx, 1, &region, 8, vec![5, 6, 7], "filled", 8);
            let (_, m) = fab.nic(1).rx().recv(ctx);
            assert_eq!(m, "filled");
            assert_eq!(region.read_vec(8, 3), vec![5, 6, 7]);
        });
    }

    #[test]
    fn rdma_read_round_trip_is_about_2us() {
        sim().run(|ctx| {
            let fab: Fabric<()> = Fabric::new(2, NetConfig::default());
            let region = MemoryRegion::new(4);
            region.store(2, 77);
            let n0 = fab.nic(0);
            let v = n0.rdma_read(ctx, 1, &region, 2, 1);
            assert_eq!(v, vec![77]);
            let t = ctx.now();
            assert!((1_500..2_600).contains(&t), "READ rtt = {t} ns");
        });
    }

    #[test]
    fn bandwidth_serializes_large_transfers() {
        sim().run(|ctx| {
            let fab: Fabric<u8> = Fabric::new(2, NetConfig::default());
            let region = MemoryRegion::new(1 << 16);
            let n0 = fab.nic(0);
            // 64 KiB at 12.5 GB/s is ~5.2 µs of serialization.
            let data = vec![1u64; 1 << 13];
            let t = n0.rdma_write(ctx, 1, &region, 0, data);
            assert!(t > 5_000, "arrival = {t}");
        });
    }

    #[test]
    fn selective_signaling_counts_completions() {
        sim().run(|ctx| {
            let cfg = NetConfig {
                signal_interval: 4,
                ..Default::default()
            };
            let fab: Fabric<u8> = Fabric::new(2, cfg);
            let n0 = fab.nic(0);
            for _ in 0..8 {
                n0.send(ctx, 1, 0, 0);
            }
            assert_eq!(n0.stats().signaled, 2);
            assert_eq!(n0.stats().sends, 8);
        });
    }

    #[test]
    fn rdma_fetch_add_is_atomic_and_round_trip_priced() {
        sim().run(|ctx| {
            let fab: Fabric<()> = Fabric::new(2, NetConfig::default());
            let region = MemoryRegion::new(4);
            region.store(1, 10);
            let n0 = fab.nic(0);
            let t0 = ctx.now();
            let prev = n0.rdma_fetch_add(ctx, 1, &region, 1, 5);
            assert_eq!(prev, 10);
            assert_eq!(region.load(1), 15);
            assert!(ctx.now() - t0 >= 1_500, "rtt = {}", ctx.now() - t0);
        });
    }

    #[test]
    fn rdma_compare_swap_succeeds_and_fails() {
        sim().run(|ctx| {
            let fab: Fabric<()> = Fabric::new(2, NetConfig::default());
            let region = MemoryRegion::new(1);
            let n0 = fab.nic(0);
            assert_eq!(n0.rdma_compare_swap(ctx, 1, &region, 0, 0, 42), 0);
            assert_eq!(region.load(0), 42);
            // Mismatched expect leaves the value unchanged.
            assert_eq!(n0.rdma_compare_swap(ctx, 1, &region, 0, 0, 99), 42);
            assert_eq!(region.load(0), 42);
        });
    }

    #[test]
    fn benign_fault_plan_matches_fault_free_timing() {
        let run = |faulty: bool| {
            sim().run(move |ctx| {
                let cfg = NetConfig::default();
                let fab: Fabric<u32> = if faulty {
                    Fabric::with_faults(2, cfg, FaultPlan::new(42))
                } else {
                    Fabric::new(2, cfg)
                };
                let n0 = fab.nic(0);
                for i in 0..8 {
                    n0.send(ctx, 1, i, 128);
                }
                let rx = fab.nic(1).rx();
                let mut times = Vec::new();
                for _ in 0..8 {
                    rx.recv(ctx);
                    times.push(ctx.now());
                }
                times
            })
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn jitter_preserves_fifo_and_adds_delay() {
        sim().run(|ctx| {
            let mut plan = FaultPlan::new(7);
            plan.jitter_ns = 5_000;
            let fab: Fabric<u32> = Fabric::with_faults(2, NetConfig::default(), plan);
            let n0 = fab.nic(0);
            for i in 0..20 {
                n0.send(ctx, 1, i, 64);
            }
            let rx = fab.nic(1).rx();
            let mut last = 0;
            for i in 0..20 {
                let (_, m) = rx.recv(ctx);
                assert_eq!(m, i, "jitter must not reorder a link");
                assert!(ctx.now() >= last);
                last = ctx.now();
            }
            // 20 sends with mean 2.5 µs jitter: far later than fault-free.
            assert!(last > 20_000, "t = {last}");
        });
    }

    #[test]
    fn drops_discard_sends_and_latch_qp_error() {
        sim().run(|ctx| {
            let mut plan = FaultPlan::new(3);
            plan.drop_ppm = 500_000; // 50%
            let fab: Fabric<u32> = Fabric::with_faults(2, NetConfig::default(), plan);
            let n0 = fab.nic(0);
            for i in 0..64 {
                n0.send(ctx, 1, i, 8);
            }
            let s = n0.stats();
            assert!(
                s.faulted_drops > 10 && s.faulted_drops < 54,
                "drops = {}",
                s.faulted_drops
            );
            assert!(n0.link_error(1));
            n0.clear_link_error(1);
            assert!(!n0.link_error(1));
            // Exactly the non-dropped messages arrive, in order.
            let rx = fab.nic(1).rx();
            for _ in 0..(64 - s.faulted_drops) {
                rx.recv(ctx);
            }
            assert!(rx.is_empty());
        });
    }

    #[test]
    fn stalls_freeze_the_nic_for_a_window() {
        sim().run(|ctx| {
            let mut plan = FaultPlan::new(5);
            plan.stall_ppm = 1_000_000; // every send stalls
            plan.stall_ns = (50_000, 60_000);
            let fab: Fabric<u32> = Fabric::with_faults(2, NetConfig::default(), plan);
            let n0 = fab.nic(0);
            n0.send(ctx, 1, 1, 8);
            let rx = fab.nic(1).rx();
            rx.recv(ctx);
            assert!(ctx.now() >= 50_000, "t = {}", ctx.now());
            assert_eq!(n0.stats().faulted_stalls, 1);
        });
    }

    #[test]
    fn crashed_node_drops_remote_traffic_but_not_loopback() {
        sim().run(|ctx| {
            let mut plan = FaultPlan::new(9);
            plan.crash_at = vec![(1, 10_000)];
            let fab: Fabric<u32> = Fabric::with_faults(2, NetConfig::default(), plan);
            let n0 = fab.nic(0);
            let n1 = fab.nic(1);
            // Before the crash: delivery works.
            n0.send(ctx, 1, 1, 8);
            assert_eq!(n1.rx().recv(ctx).1, 1);
            ctx.sleep_until(10_000);
            assert!(n0.node_crashed(1, ctx.now()));
            // To the crashed node: discarded, QP error latched.
            n0.send(ctx, 1, 2, 8);
            // From the crashed node: discarded.
            n1.send(ctx, 0, 3, 8);
            assert!(n0.link_error(1));
            assert!(n1.link_error(0));
            assert!(n1.rx().is_empty());
            assert!(n0.rx().is_empty());
            // Loopback on the crashed node still delivers (teardown path).
            n1.send(ctx, 1, 4, 8);
            assert_eq!(n1.rx().recv(ctx).1, 4);
            assert_eq!(n1.crash_time(), Some(10_000));
            assert_eq!(n0.peer_crash_time(1), Some(10_000));
        });
    }

    #[test]
    fn partition_blocks_cross_group_sends_then_heals() {
        use crate::fault::Partition;
        sim().run(|ctx| {
            let mut plan = FaultPlan::new(11);
            plan.partitions = vec![Partition {
                groups: vec![vec![0, 1], vec![2]],
                from_ns: 5_000,
                until_ns: 50_000,
            }];
            let fab: Fabric<u32> = Fabric::with_faults(3, NetConfig::default(), plan);
            let n0 = fab.nic(0);
            let n2 = fab.nic(2);
            // Before the window: cross-group delivery works.
            n0.send(ctx, 2, 1, 8);
            assert_eq!(n2.rx().recv(ctx).1, 1);
            ctx.sleep_until(10_000);
            // Inside: severed both ways, QP error latched, intra-group fine.
            n0.send(ctx, 2, 2, 8);
            n2.send(ctx, 0, 3, 8);
            n0.send(ctx, 1, 4, 8);
            assert!(n0.link_error(2));
            assert!(n2.link_error(0));
            assert!(n2.rx().is_empty());
            assert!(n0.rx().is_empty());
            assert_eq!(fab.nic(1).rx().recv(ctx).1, 4);
            // One-sided WRITEs cross the partition (control plane only).
            let region = MemoryRegion::new(8);
            n0.rdma_write(ctx, 2, &region, 0, vec![42]);
            ctx.sleep_until(49_000);
            assert_eq!(region.load(0), 42);
            // After the window: healed.
            ctx.sleep_until(50_000);
            n0.send(ctx, 2, 5, 8);
            assert_eq!(n2.rx().recv(ctx).1, 5);
        });
    }

    #[test]
    fn asymmetric_loss_degrades_one_direction_only() {
        use crate::fault::AsymmetricLoss;
        sim().run(|ctx| {
            let mut plan = FaultPlan::new(13);
            plan.asym_loss = vec![AsymmetricLoss {
                from: 0,
                to: 1,
                drop_ppm: 1_000_000, // every matching SEND dropped
                from_ns: 0,
                until_ns: u64::MAX,
            }];
            let fab: Fabric<u32> = Fabric::with_faults(2, NetConfig::default(), plan);
            let n0 = fab.nic(0);
            let n1 = fab.nic(1);
            for i in 0..8 {
                n0.send(ctx, 1, i, 8);
            }
            assert_eq!(n0.stats().faulted_drops, 8);
            assert!(n0.link_error(1));
            assert!(n1.rx().is_empty());
            // The reverse direction is untouched.
            for i in 0..8 {
                n1.send(ctx, 0, i, 8);
            }
            assert_eq!(n1.stats().faulted_drops, 0);
            for i in 0..8 {
                assert_eq!(n0.rx().recv(ctx).1, i);
            }
            // One-sided WRITEs on the degraded direction still land.
            let region = MemoryRegion::new(8);
            n0.rdma_write(ctx, 1, &region, 0, vec![7]);
            ctx.sleep_until(ctx.now() + 20_000);
            assert_eq!(region.load(0), 7);
        });
    }

    #[test]
    fn partition_and_asym_schedules_replay_bit_identically() {
        use crate::fault::{AsymmetricLoss, Partition};
        let run = |seed: u64| {
            sim().run(move |ctx| {
                let mut plan = FaultPlan::new(seed);
                plan.jitter_ns = 2_000;
                plan.drop_ppm = 50_000;
                plan.partitions = vec![Partition {
                    groups: vec![vec![0], vec![1, 2]],
                    from_ns: 30_000,
                    until_ns: 90_000,
                }];
                plan.asym_loss = vec![AsymmetricLoss {
                    from: 0,
                    to: 1,
                    drop_ppm: 400_000,
                    from_ns: 0,
                    until_ns: 200_000,
                }];
                let fab: Fabric<u32> = Fabric::with_faults(3, NetConfig::default(), plan);
                let n0 = fab.nic(0);
                for i in 0..200 {
                    n0.send(ctx, 1 + (i as usize % 2), i, 64);
                }
                (fab.nic(0).stats(), ctx.now())
            })
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21).0, run(22).0, "different seeds should differ");
    }

    #[test]
    fn fault_schedule_replays_bit_identically() {
        let run = |seed: u64| {
            sim().run(move |ctx| {
                let mut plan = FaultPlan::new(seed);
                plan.jitter_ns = 2_000;
                plan.drop_ppm = 100_000;
                plan.stall_ppm = 50_000;
                plan.stall_ns = (10_000, 20_000);
                let fab: Fabric<u32> = Fabric::with_faults(3, NetConfig::default(), plan);
                let n0 = fab.nic(0);
                for i in 0..200 {
                    n0.send(ctx, 1 + (i as usize % 2), i, 64);
                }
                (fab.nic(0).stats(), ctx.now())
            })
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77).0, run(78).0, "different seeds should differ");
    }

    #[test]
    fn stats_track_bytes() {
        sim().run(|ctx| {
            let fab: Fabric<u8> = Fabric::new(2, NetConfig::default());
            let region = MemoryRegion::new(8);
            let n0 = fab.nic(0);
            n0.rdma_write(ctx, 1, &region, 0, vec![1, 2]);
            let s = n0.stats();
            assert_eq!(s.writes, 1);
            assert_eq!(s.write_bytes, 32 + 16);
        });
    }
}
