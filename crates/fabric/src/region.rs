//! Registered memory regions addressable by one-sided verbs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A region of registered memory: a fixed-size array of 8-byte words that
/// remote NICs may read and write without involving the owning node's CPU
/// (the defining property of one-sided RDMA).
///
/// Words are `AtomicU64` so that the simulator's event closures (which model
/// the remote NIC's DMA engine) can store into the region while simulated
/// threads read it; the single-token scheduler serializes all accesses, the
/// atomics merely make that explicit to the Rust memory model.
#[derive(Clone)]
pub struct MemoryRegion {
    words: Arc<[AtomicU64]>,
}

impl MemoryRegion {
    /// Allocate and register a zeroed region of `len` 8-byte words.
    pub fn new(len: usize) -> Self {
        let words: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        Self {
            words: words.into(),
        }
    }

    /// Number of 8-byte words.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the region holds no words.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Load one word.
    #[inline]
    pub fn load(&self, idx: usize) -> u64 {
        self.words[idx].load(Ordering::Acquire)
    }

    /// Store one word.
    #[inline]
    pub fn store(&self, idx: usize, val: u64) {
        self.words[idx].store(val, Ordering::Release);
    }

    /// Atomic compare-and-swap on one word; returns the previous value.
    #[inline]
    pub fn compare_exchange(&self, idx: usize, current: u64, new: u64) -> Result<u64, u64> {
        self.words[idx].compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    /// Copy `dst.len()` words starting at `offset` into `dst`.
    pub fn read_into(&self, offset: usize, dst: &mut [u64]) {
        for (i, d) in dst.iter_mut().enumerate() {
            *d = self.words[offset + i].load(Ordering::Acquire);
        }
    }

    /// Copy a word range out into a fresh vector.
    pub fn read_vec(&self, offset: usize, len: usize) -> Vec<u64> {
        let mut v = vec![0u64; len];
        self.read_into(offset, &mut v);
        v
    }

    /// Write `src` into the region starting at `offset`.
    pub fn write_slice(&self, offset: usize, src: &[u64]) {
        for (i, s) in src.iter().enumerate() {
            self.words[offset + i].store(*s, Ordering::Release);
        }
    }

    /// Fill a word range with `val`.
    pub fn fill(&self, offset: usize, len: usize, val: u64) {
        for i in 0..len {
            self.words[offset + i].store(val, Ordering::Release);
        }
    }

    /// Stable identity token for this registration: two `MemoryRegion`
    /// handles share a token iff they are clones of the same allocation.
    /// Transport backends use this to key their region tables (the moral
    /// equivalent of an rkey).
    #[inline]
    pub fn region_token(&self) -> usize {
        Arc::as_ptr(&self.words) as *const AtomicU64 as usize
    }
}

impl std::fmt::Debug for MemoryRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MemoryRegion({} words)", self.words.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_words() {
        let r = MemoryRegion::new(8);
        assert_eq!(r.len(), 8);
        r.store(3, 0xdead_beef);
        assert_eq!(r.load(3), 0xdead_beef);
        assert_eq!(r.load(0), 0);
    }

    #[test]
    fn slice_write_and_read() {
        let r = MemoryRegion::new(16);
        r.write_slice(4, &[1, 2, 3]);
        assert_eq!(r.read_vec(4, 3), vec![1, 2, 3]);
        assert_eq!(r.read_vec(3, 1), vec![0]);
    }

    #[test]
    fn fill_covers_exact_range() {
        let r = MemoryRegion::new(10);
        r.fill(2, 5, 7);
        assert_eq!(r.load(1), 0);
        assert_eq!(r.load(2), 7);
        assert_eq!(r.load(6), 7);
        assert_eq!(r.load(7), 0);
    }

    #[test]
    fn cas_succeeds_and_fails_correctly() {
        let r = MemoryRegion::new(1);
        assert!(r.compare_exchange(0, 0, 5).is_ok());
        assert_eq!(r.compare_exchange(0, 0, 9), Err(5));
        assert_eq!(r.load(0), 5);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let r = MemoryRegion::new(2);
        r.load(2);
    }

    #[test]
    fn region_token_tracks_allocation_identity() {
        let a = MemoryRegion::new(4);
        let b = a.clone();
        let c = MemoryRegion::new(4);
        assert_eq!(a.region_token(), b.region_token());
        assert_ne!(a.region_token(), c.region_token());
    }
}
