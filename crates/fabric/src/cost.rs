//! Calibrated CPU-side cost constants.
//!
//! The paper's absolute numbers come from dual Xeon E5-2650 v4 nodes; we
//! cannot (and need not) match them exactly. What matters for reproducing
//! the evaluation is the *relative* cost structure, which these constants
//! encode:
//!
//! * a native array access is ~1 ns;
//! * DArray's lock-free fast path adds "a single atomic variable read
//!   (`delay_flag`), two atomic variable writes (`refcnt`), and some branch
//!   instructions" (§4.1) — an order of magnitude above native, but far
//!   below a lock;
//! * the Pin fast path eliminates the atomics, leaving only branches
//!   (paper: Pin gives 1.8–2.9× over the plain path, Figure 15);
//! * GAM's lock-based access path (hash lookup + per-chunk mutex + protocol
//!   bookkeeping on every access) is another order of magnitude up
//!   (Figure 1: GAM's local access is far slower than builtin arrays);
//! * network round trips are ~2 µs (Figure 1: BCL's per-access latency).

use dsim::VTime;

/// CPU cost constants in nanoseconds (per-word costs in picoseconds where
/// sub-nanosecond resolution matters).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Plain load/store of an 8-byte element in resident memory.
    pub native_access_ns: VTime,
    /// Atomic load (e.g. `delay_flag` check).
    pub atomic_load_ns: VTime,
    /// Atomic read-modify-write (e.g. `refcnt` inc/dec, CAS).
    pub atomic_rmw_ns: VTime,
    /// Branching / bounds check / address arithmetic of one API call.
    pub branch_ns: VTime,
    /// Uncontended mutex lock+unlock pair (GAM's per-access chunk lock).
    pub mutex_pair_ns: VTime,
    /// One hash-table probe (GAM's cache directory lookup).
    pub hash_probe_ns: VTime,
    /// Runtime-thread cost to dequeue and decode one local request.
    pub local_req_handle_ns: VTime,
    /// Runtime-thread cost to handle one protocol (RPC) message, including
    /// CQ poll amortization and directory bookkeeping.
    pub rpc_handle_ns: VTime,
    /// Directory entry state transition bookkeeping.
    pub dir_update_ns: VTime,
    /// Allocating / recycling a cacheline from the pool.
    pub cacheline_alloc_ns: VTime,
    /// Inspecting one cacheline during the eviction scan.
    pub evict_scan_ns: VTime,
    /// memcpy of one 8-byte word, in **picoseconds** (128 GB/s ≈ 62 ps per
    /// word; used for chunk fills, writebacks and operand reduction).
    pub memcpy_word_ps: u64,
    /// Applying a registered operator to one element (combine call).
    pub op_apply_ns: VTime,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            native_access_ns: 1,
            atomic_load_ns: 1,
            atomic_rmw_ns: 4,
            branch_ns: 1,
            mutex_pair_ns: 32,
            hash_probe_ns: 28,
            local_req_handle_ns: 120,
            rpc_handle_ns: 150,
            dir_update_ns: 40,
            cacheline_alloc_ns: 30,
            evict_scan_ns: 15,
            memcpy_word_ps: 62,
            op_apply_ns: 2,
        }
    }
}

impl CostModel {
    /// Cost of copying `words` 8-byte words (ns, rounded up).
    #[inline]
    pub fn memcpy(&self, words: usize) -> VTime {
        (words as u64 * self.memcpy_word_ps).div_ceil(1000)
    }

    /// DArray plain fast path: branches + `delay_flag` load + two `refcnt`
    /// RMWs + the data access itself (§4.1 "Minimal overhead").
    #[inline]
    pub fn darray_fast_path(&self) -> VTime {
        2 * self.branch_ns + self.atomic_load_ns + 2 * self.atomic_rmw_ns + self.native_access_ns
    }

    /// DArray pinned fast path: atomics eliminated, branches remain (§4.1
    /// "Pin interface"; §6.4 "abstraction overhead is not negligible due to
    /// inevitable branch instructions").
    #[inline]
    pub fn darray_pinned_path(&self) -> VTime {
        // Bounds check, window check, address math, and the access itself.
        3 * self.branch_ns + self.native_access_ns
    }

    /// GAM's lock-based access path: hash probe for the cache directory,
    /// per-chunk mutex, protocol bookkeeping, then the access.
    #[inline]
    pub fn gam_access_path(&self) -> VTime {
        self.hash_probe_ns + self.mutex_pair_ns + self.dir_update_ns / 2 + self.native_access_ns
    }

    /// BCL local access: a partition ownership check and the access.
    #[inline]
    pub fn bcl_local_path(&self) -> VTime {
        self.branch_ns + self.native_access_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_ordering_matches_figure_1() {
        let c = CostModel::default();
        // native < pin < plain darray < gam << network RTT (≈ 2000 ns).
        assert!(c.native_access_ns < c.darray_pinned_path());
        assert!(c.darray_pinned_path() < c.darray_fast_path());
        assert!(c.darray_fast_path() < c.gam_access_path());
        assert!(c.gam_access_path() < 1_000);
    }

    #[test]
    fn pin_speedup_is_in_paper_range() {
        // Figure 15: DArray-Pin outperforms DArray by 1.8x–2.9x.
        let c = CostModel::default();
        let ratio = c.darray_fast_path() as f64 / c.darray_pinned_path() as f64;
        assert!((1.8..=4.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn memcpy_rounds_up_and_scales() {
        let c = CostModel::default();
        assert_eq!(c.memcpy(0), 0);
        assert!(c.memcpy(1) >= 1);
        let chunk = c.memcpy(512);
        assert!((20..100).contains(&chunk), "chunk fill = {chunk} ns");
    }
}
