//! Pluggable transport abstraction over the fabric.
//!
//! The coherence runtime in `crates/core` speaks to the network through the
//! [`Transport`] trait only: memory registration, one-sided WRITE+notify,
//! two-sided SEND/RECV, completion/byte accounting, and node addressing.
//! Backends implement the trait; the protocol machines never see which one
//! is underneath.
//!
//! Two backends exist today:
//!
//! - [`SimTransport`] — the default. A zero-cost veneer over the dsim
//!   [`Nic`]: every call delegates verbatim to the simulated verb with the
//!   byte count taken from [`Wire::payload_bytes`], so virtual-time behaviour
//!   is bit-identical to the pre-trait code.
//! - `TcpTransport` (behind the `tcp-transport` cargo feature) — real OS
//!   sockets with length-prefixed frames; one-sided WRITE is emulated as a
//!   tagged frame applied into the registered region by the receive pump.
//!
//! A future ibverbs backend is one more impl of this trait.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dsim::{Ctx, Mailbox};

use crate::fabric::{Nic, NicStatsSnapshot};
use crate::region::MemoryRegion;
use crate::NodeId;

/// A message type that can travel over any transport backend.
///
/// Simulated backends only need [`Wire::payload_bytes`] (to charge the
/// virtual wire); real backends additionally use the byte codec. `decode`
/// must accept exactly what `encode` produced (round-trip identity).
pub trait Wire: Clone + Send + Sync + std::fmt::Debug + 'static {
    /// Logical payload size in bytes, as charged to the (possibly
    /// simulated) wire. Headers are added by the backend.
    fn payload_bytes(&self) -> u64;

    /// Append the serialized form of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Parse a message from `bytes`. Returns `None` on malformed input.
    fn decode(bytes: &[u8]) -> Option<Self>
    where
        Self: Sized;
}

/// Byte and completion counters common to every backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Bytes handed to the wire (payload + backend framing/headers).
    pub bytes_tx: u64,
    /// Bytes received from the wire (payload + backend framing/headers).
    pub bytes_rx: u64,
    /// Frames (SENDs plus WRITEs) posted by this endpoint.
    pub frames: u64,
    /// Completion events observed for posted work (selective signaling on
    /// the simulated NIC; per-flush — or every `flush_every_frames`-th
    /// frame — on TCP).
    pub completions: u64,
    /// Egress flushes: doorbell rings on the TCP pump (each a single
    /// writev-style syscall train), batch openings on the simulated NIC.
    /// Always `frames == tx_flushes + frames_coalesced`.
    pub tx_flushes: u64,
    /// Flushes that carried two or more frames (a doorbell amortized over
    /// a batch rather than rung per frame).
    pub doorbell_batches: u64,
    /// Frames that rode an already-open batch instead of ringing their own
    /// doorbell (`sum(batch_size - 1)` over all flushes).
    pub frames_coalesced: u64,
    /// High-water mark of the per-link egress ring, in frames: the deepest
    /// any link's not-yet-flushed backlog ever got (batch depth on the
    /// simulated NIC, queued ring depth on TCP).
    pub ring_hwm: u64,
}

/// Doorbell-batching knobs shared by every backend (`ClusterConfig` maps
/// its batching section here so Sim and TCP interpret one set of knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Most frames one egress flush may carry. A frame posted while its
    /// link already has a full batch open starts a new batch (and a new
    /// flush). Must be at least 1; 1 disables coalescing entirely.
    pub send_batch_max: usize,
    /// Selective-signaling override: count one completion every N-th
    /// posted frame. `None` keeps the backend default (the simulated
    /// NIC's `NetConfig::signal_interval`; one completion per flush on
    /// TCP).
    pub flush_every_frames: Option<u64>,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            send_batch_max: 16,
            flush_every_frames: None,
        }
    }
}

/// Backend-agnostic network endpoint for one node.
///
/// The contract the coherence runtime relies on:
///
/// - **Per-link FIFO**: messages (and WRITE data) from node A to node B are
///   delivered in post order.
/// - **Data before notification**: after `write_send`, the region contents
///   are visible to the destination no later than the paired message.
/// - `recv` blocks (in virtual time) until a message arrives.
pub trait Transport<M: Wire>: Send + Sync {
    /// The node this endpoint belongs to.
    fn node(&self) -> NodeId;

    /// Make `region` addressable by incoming one-sided WRITEs. Idempotent.
    /// Backends with a global address space (the simulator) may no-op.
    fn register_region(&self, region: &MemoryRegion);

    /// Two-sided SEND: deliver `msg` into `dst`'s receive queue.
    fn send(&self, ctx: &mut Ctx, dst: NodeId, msg: M);

    /// One-sided WRITE of `data` into `dst`'s `region` at word `offset`,
    /// followed by `msg` on the same ordered channel (data lands first).
    fn write_send(
        &self,
        ctx: &mut Ctx,
        dst: NodeId,
        region: &MemoryRegion,
        offset: usize,
        data: Vec<u64>,
        msg: M,
    );

    /// Block until the next message arrives; returns `(source, message)`.
    fn recv(&self, ctx: &mut Ctx) -> (NodeId, M);

    /// Non-blocking receive: a message that has already been delivered, or
    /// `None` without waiting. Lets the Rx dispatch drain a burst in one
    /// pass before falling back to the blocking [`Transport::recv`].
    fn try_recv(&self, ctx: &mut Ctx) -> Option<(NodeId, M)> {
        let _ = ctx;
        None
    }

    /// Byte/frame/completion counters for this endpoint.
    fn stats(&self) -> TransportStats;

    /// Raw simulated-NIC counters, when this endpoint is backed by one.
    /// Real backends return `None`.
    fn nic_stats(&self) -> Option<NicStatsSnapshot> {
        None
    }

    /// Tear down backend resources (sockets, pump threads). Idempotent;
    /// the simulated backend has nothing to release.
    fn shutdown(&self) {}
}

/// Default backend: delegates every verb to the dsim [`Nic`].
///
/// Each call maps 1:1 onto the pre-trait call site — same verb, same order,
/// byte counts from [`Wire::payload_bytes`] — so simulated timing and
/// protocol traffic are bit-identical to the fabric-coupled code this
/// abstraction replaced.
pub struct SimTransport<M: Send + 'static> {
    nic: Arc<Nic<M>>,
    rx: Mailbox<(NodeId, M)>,
    bytes_rx: AtomicU64,
    frames_rx: AtomicU64,
    policy: BatchPolicy,
    /// Doorbell accounting (pure bookkeeping — never charges virtual
    /// time): per-destination depth of the batch currently riding the
    /// link's busy window, plus the flush/batch counters derived from it.
    batch_depth: parking_lot::Mutex<Vec<u64>>,
    tx_flushes: AtomicU64,
    doorbell_batches: AtomicU64,
    frames_coalesced: AtomicU64,
    ring_hwm: AtomicU64,
}

impl<M: Send + 'static> SimTransport<M> {
    /// Wrap one node's simulated NIC with default batching knobs.
    pub fn new(nic: Arc<Nic<M>>) -> Self {
        Self::with_policy(nic, BatchPolicy::default())
    }

    /// Wrap one node's simulated NIC with explicit batching knobs. The
    /// knobs only steer *accounting* (which frames count as coalesced
    /// into one doorbell batch); virtual-time behaviour is untouched, so
    /// protocol traffic stays bit-identical across policies.
    pub fn with_policy(nic: Arc<Nic<M>>, policy: BatchPolicy) -> Self {
        let rx = nic.rx();
        Self {
            nic,
            rx,
            bytes_rx: AtomicU64::new(0),
            frames_rx: AtomicU64::new(0),
            policy,
            batch_depth: parking_lot::Mutex::new(Vec::new()),
            tx_flushes: AtomicU64::new(0),
            doorbell_batches: AtomicU64::new(0),
            frames_coalesced: AtomicU64::new(0),
            ring_hwm: AtomicU64::new(0),
        }
    }

    /// Account one posted frame toward `dst` as either the start of a new
    /// doorbell batch or a rider on the batch already serializing on the
    /// link. The simulated NIC's link-busy window (`Nic::link_busy`) plays
    /// the role the TCP backend's pending egress ring plays: a frame
    /// posted while the link is still transmitting earlier work would, on
    /// real hardware, be picked up by the same doorbell.
    fn account_post(&self, ctx: &Ctx, dst: NodeId) {
        let busy = self.nic.link_busy(dst, ctx.now());
        let mut depths = self.batch_depth.lock();
        if depths.len() <= dst {
            depths.resize(dst + 1, 0);
        }
        let cap = self.policy.send_batch_max.max(1) as u64;
        let depth = &mut depths[dst];
        if busy && *depth > 0 && *depth < cap {
            *depth += 1;
            self.frames_coalesced.fetch_add(1, Ordering::Relaxed);
            if *depth == 2 {
                self.doorbell_batches.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            *depth = 1;
            self.tx_flushes.fetch_add(1, Ordering::Relaxed);
        }
        self.ring_hwm.fetch_max(*depth, Ordering::Relaxed);
    }
}

impl<M: Wire> Transport<M> for SimTransport<M> {
    fn node(&self) -> NodeId {
        self.nic.node()
    }

    fn register_region(&self, _region: &MemoryRegion) {
        // The simulator addresses regions directly; nothing to register.
    }

    fn send(&self, ctx: &mut Ctx, dst: NodeId, msg: M) {
        let bytes = msg.payload_bytes();
        self.account_post(ctx, dst);
        self.nic.send(ctx, dst, msg, bytes);
    }

    fn write_send(
        &self,
        ctx: &mut Ctx,
        dst: NodeId,
        region: &MemoryRegion,
        offset: usize,
        data: Vec<u64>,
        msg: M,
    ) {
        let bytes = msg.payload_bytes();
        // Same two verbs `Nic::rdma_write_send` issues, decomposed so the
        // notification SEND is accounted *after* the WRITE has claimed the
        // link: the pair then counts as one doorbell batch, exactly like
        // the WRITE+MSG frame train the TCP backend flushes in one writev.
        self.account_post(ctx, dst);
        self.nic.rdma_write(ctx, dst, region, offset, data);
        self.account_post(ctx, dst);
        self.nic.send(ctx, dst, msg, bytes);
    }

    fn recv(&self, ctx: &mut Ctx) -> (NodeId, M) {
        let (src, msg) = self.rx.recv(ctx);
        self.bytes_rx
            .fetch_add(msg.payload_bytes(), Ordering::Relaxed);
        self.frames_rx.fetch_add(1, Ordering::Relaxed);
        (src, msg)
    }

    fn try_recv(&self, ctx: &mut Ctx) -> Option<(NodeId, M)> {
        let (src, msg) = self.rx.try_recv(ctx)?;
        self.bytes_rx
            .fetch_add(msg.payload_bytes(), Ordering::Relaxed);
        self.frames_rx.fetch_add(1, Ordering::Relaxed);
        Some((src, msg))
    }

    fn stats(&self) -> TransportStats {
        let nic = self.nic.stats();
        TransportStats {
            bytes_tx: nic.send_bytes + nic.write_bytes,
            bytes_rx: self.bytes_rx.load(Ordering::Relaxed),
            frames: nic.sends + nic.writes,
            completions: nic.signaled,
            tx_flushes: self.tx_flushes.load(Ordering::Relaxed),
            doorbell_batches: self.doorbell_batches.load(Ordering::Relaxed),
            frames_coalesced: self.frames_coalesced.load(Ordering::Relaxed),
            ring_hwm: self.ring_hwm.load(Ordering::Relaxed),
        }
    }

    fn nic_stats(&self) -> Option<NicStatsSnapshot> {
        Some(self.nic.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fabric, NetConfig};

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Ping(u64);

    impl Wire for Ping {
        fn payload_bytes(&self) -> u64 {
            8
        }
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_le_bytes());
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            Some(Ping(u64::from_le_bytes(bytes.try_into().ok()?)))
        }
    }

    #[test]
    fn sim_transport_delegates_send_recv() {
        dsim::Sim::new(dsim::SimConfig::default()).run(|ctx| {
            let fabric = Fabric::<Ping>::new(2, NetConfig::instant());
            let a: Arc<dyn Transport<Ping>> = Arc::new(SimTransport::new(fabric.nic(0)));
            let b: Arc<dyn Transport<Ping>> = Arc::new(SimTransport::new(fabric.nic(1)));
            a.send(ctx, 1, Ping(7));
            let (src, msg) = b.recv(ctx);
            assert_eq!(src, 0);
            assert_eq!(msg, Ping(7));
            let sa = a.stats();
            assert_eq!(sa.frames, 1);
            assert!(sa.bytes_tx > 0);
            let sb = b.stats();
            assert_eq!(sb.bytes_rx, 8);
            assert!(a.nic_stats().is_some());
        });
    }

    #[test]
    fn sim_transport_write_send_lands_data_first() {
        dsim::Sim::new(dsim::SimConfig::default()).run(|ctx| {
            let fabric = Fabric::<Ping>::new(2, NetConfig::instant());
            let a: Arc<dyn Transport<Ping>> = Arc::new(SimTransport::new(fabric.nic(0)));
            let b: Arc<dyn Transport<Ping>> = Arc::new(SimTransport::new(fabric.nic(1)));
            let region = MemoryRegion::new(8);
            b.register_region(&region);
            a.write_send(ctx, 1, &region, 2, vec![41, 42], Ping(1));
            let (_, msg) = b.recv(ctx);
            assert_eq!(msg, Ping(1));
            assert_eq!(region.load(2), 41);
            assert_eq!(region.load(3), 42);
        });
    }
}
