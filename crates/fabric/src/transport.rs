//! Pluggable transport abstraction over the fabric.
//!
//! The coherence runtime in `crates/core` speaks to the network through the
//! [`Transport`] trait only: memory registration, one-sided WRITE+notify,
//! two-sided SEND/RECV, completion/byte accounting, and node addressing.
//! Backends implement the trait; the protocol machines never see which one
//! is underneath.
//!
//! Two backends exist today:
//!
//! - [`SimTransport`] — the default. A zero-cost veneer over the dsim
//!   [`Nic`]: every call delegates verbatim to the simulated verb with the
//!   byte count taken from [`Wire::payload_bytes`], so virtual-time behaviour
//!   is bit-identical to the pre-trait code.
//! - `TcpTransport` (behind the `tcp-transport` cargo feature) — real OS
//!   sockets with length-prefixed frames; one-sided WRITE is emulated as a
//!   tagged frame applied into the registered region by the receive pump.
//!
//! A future ibverbs backend is one more impl of this trait.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dsim::{Ctx, Mailbox};

use crate::fabric::{Nic, NicStatsSnapshot};
use crate::region::MemoryRegion;
use crate::NodeId;

/// A message type that can travel over any transport backend.
///
/// Simulated backends only need [`Wire::payload_bytes`] (to charge the
/// virtual wire); real backends additionally use the byte codec. `decode`
/// must accept exactly what `encode` produced (round-trip identity).
pub trait Wire: Clone + Send + Sync + std::fmt::Debug + 'static {
    /// Logical payload size in bytes, as charged to the (possibly
    /// simulated) wire. Headers are added by the backend.
    fn payload_bytes(&self) -> u64;

    /// Append the serialized form of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Parse a message from `bytes`. Returns `None` on malformed input.
    fn decode(bytes: &[u8]) -> Option<Self>
    where
        Self: Sized;
}

/// Byte and completion counters common to every backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Bytes handed to the wire (payload + backend framing/headers).
    pub bytes_tx: u64,
    /// Bytes received from the wire (payload + backend framing/headers).
    pub bytes_rx: u64,
    /// Frames (SENDs plus WRITEs) posted by this endpoint.
    pub frames: u64,
    /// Completion events observed for posted work (selective signaling on
    /// the simulated NIC; per-frame flush acknowledgements on TCP).
    pub completions: u64,
}

/// Backend-agnostic network endpoint for one node.
///
/// The contract the coherence runtime relies on:
///
/// - **Per-link FIFO**: messages (and WRITE data) from node A to node B are
///   delivered in post order.
/// - **Data before notification**: after `write_send`, the region contents
///   are visible to the destination no later than the paired message.
/// - `recv` blocks (in virtual time) until a message arrives.
pub trait Transport<M: Wire>: Send + Sync {
    /// The node this endpoint belongs to.
    fn node(&self) -> NodeId;

    /// Make `region` addressable by incoming one-sided WRITEs. Idempotent.
    /// Backends with a global address space (the simulator) may no-op.
    fn register_region(&self, region: &MemoryRegion);

    /// Two-sided SEND: deliver `msg` into `dst`'s receive queue.
    fn send(&self, ctx: &mut Ctx, dst: NodeId, msg: M);

    /// One-sided WRITE of `data` into `dst`'s `region` at word `offset`,
    /// followed by `msg` on the same ordered channel (data lands first).
    fn write_send(
        &self,
        ctx: &mut Ctx,
        dst: NodeId,
        region: &MemoryRegion,
        offset: usize,
        data: Vec<u64>,
        msg: M,
    );

    /// Block until the next message arrives; returns `(source, message)`.
    fn recv(&self, ctx: &mut Ctx) -> (NodeId, M);

    /// Byte/frame/completion counters for this endpoint.
    fn stats(&self) -> TransportStats;

    /// Raw simulated-NIC counters, when this endpoint is backed by one.
    /// Real backends return `None`.
    fn nic_stats(&self) -> Option<NicStatsSnapshot> {
        None
    }

    /// Tear down backend resources (sockets, pump threads). Idempotent;
    /// the simulated backend has nothing to release.
    fn shutdown(&self) {}
}

/// Default backend: delegates every verb to the dsim [`Nic`].
///
/// Each call maps 1:1 onto the pre-trait call site — same verb, same order,
/// byte counts from [`Wire::payload_bytes`] — so simulated timing and
/// protocol traffic are bit-identical to the fabric-coupled code this
/// abstraction replaced.
pub struct SimTransport<M: Send + 'static> {
    nic: Arc<Nic<M>>,
    rx: Mailbox<(NodeId, M)>,
    bytes_rx: AtomicU64,
    frames_rx: AtomicU64,
}

impl<M: Send + 'static> SimTransport<M> {
    /// Wrap one node's simulated NIC.
    pub fn new(nic: Arc<Nic<M>>) -> Self {
        let rx = nic.rx();
        Self {
            nic,
            rx,
            bytes_rx: AtomicU64::new(0),
            frames_rx: AtomicU64::new(0),
        }
    }
}

impl<M: Wire> Transport<M> for SimTransport<M> {
    fn node(&self) -> NodeId {
        self.nic.node()
    }

    fn register_region(&self, _region: &MemoryRegion) {
        // The simulator addresses regions directly; nothing to register.
    }

    fn send(&self, ctx: &mut Ctx, dst: NodeId, msg: M) {
        let bytes = msg.payload_bytes();
        self.nic.send(ctx, dst, msg, bytes);
    }

    fn write_send(
        &self,
        ctx: &mut Ctx,
        dst: NodeId,
        region: &MemoryRegion,
        offset: usize,
        data: Vec<u64>,
        msg: M,
    ) {
        let bytes = msg.payload_bytes();
        self.nic
            .rdma_write_send(ctx, dst, region, offset, data, msg, bytes);
    }

    fn recv(&self, ctx: &mut Ctx) -> (NodeId, M) {
        let (src, msg) = self.rx.recv(ctx);
        self.bytes_rx
            .fetch_add(msg.payload_bytes(), Ordering::Relaxed);
        self.frames_rx.fetch_add(1, Ordering::Relaxed);
        (src, msg)
    }

    fn stats(&self) -> TransportStats {
        let nic = self.nic.stats();
        TransportStats {
            bytes_tx: nic.send_bytes + nic.write_bytes,
            bytes_rx: self.bytes_rx.load(Ordering::Relaxed),
            frames: nic.sends + nic.writes,
            completions: nic.signaled,
        }
    }

    fn nic_stats(&self) -> Option<NicStatsSnapshot> {
        Some(self.nic.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fabric, NetConfig};

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Ping(u64);

    impl Wire for Ping {
        fn payload_bytes(&self) -> u64 {
            8
        }
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_le_bytes());
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            Some(Ping(u64::from_le_bytes(bytes.try_into().ok()?)))
        }
    }

    #[test]
    fn sim_transport_delegates_send_recv() {
        dsim::Sim::new(dsim::SimConfig::default()).run(|ctx| {
            let fabric = Fabric::<Ping>::new(2, NetConfig::instant());
            let a: Arc<dyn Transport<Ping>> = Arc::new(SimTransport::new(fabric.nic(0)));
            let b: Arc<dyn Transport<Ping>> = Arc::new(SimTransport::new(fabric.nic(1)));
            a.send(ctx, 1, Ping(7));
            let (src, msg) = b.recv(ctx);
            assert_eq!(src, 0);
            assert_eq!(msg, Ping(7));
            let sa = a.stats();
            assert_eq!(sa.frames, 1);
            assert!(sa.bytes_tx > 0);
            let sb = b.stats();
            assert_eq!(sb.bytes_rx, 8);
            assert!(a.nic_stats().is_some());
        });
    }

    #[test]
    fn sim_transport_write_send_lands_data_first() {
        dsim::Sim::new(dsim::SimConfig::default()).run(|ctx| {
            let fabric = Fabric::<Ping>::new(2, NetConfig::instant());
            let a: Arc<dyn Transport<Ping>> = Arc::new(SimTransport::new(fabric.nic(0)));
            let b: Arc<dyn Transport<Ping>> = Arc::new(SimTransport::new(fabric.nic(1)));
            let region = MemoryRegion::new(8);
            b.register_region(&region);
            a.write_send(ctx, 1, &region, 2, vec![41, 42], Ping(1));
            let (_, msg) = b.recv(ctx);
            assert_eq!(msg, Ping(1));
            assert_eq!(region.load(2), 41);
            assert_eq!(region.load(3), 42);
        });
    }
}
