//! # rdma-fabric — a simulated RDMA network for the DArray reproduction
//!
//! Models the cluster interconnect of the paper's testbed (ConnectX-4
//! 100 Gbps InfiniBand) at the verb level, in `dsim` virtual time:
//!
//! * **Memory regions** ([`MemoryRegion`]) — registered memory addressable
//!   by one-sided verbs without involving the remote CPU.
//! * **One-sided RDMA WRITE / READ** — the paper transmits application data
//!   with one-sided WRITE (§4.5); BCL maps every remote access to RMA.
//!   A one-sided READ round trip costs ≈ 2 µs with the default
//!   [`NetConfig`], matching the paper's measurement.
//! * **Two-sided SEND/RECV** — protocol (coherence) messages.
//! * **RC queue-pair FIFO ordering** — per directed link, delivery times
//!   are monotone, so a WRITE posted before a SEND lands first. The
//!   [`Nic::rdma_write_send`] helper exploits this for data+notification.
//! * **Link serialization** — each directed link is a shared 100 Gbps
//!   resource; transmissions queue behind each other.
//! * **Selective signaling** (§4.5) — completion-queue polling cost is
//!   charged once every `signal_interval` posted verbs instead of per verb.
//!
//! The crate also hosts the [`CostModel`]: the calibrated CPU-side cost
//! constants (native access, atomic RMW, mutex, hash probe, ...) shared by
//! DArray, GAM and BCL so that their *relative* abstraction overheads match
//! the paper's Figure 1.

mod cost;
mod fabric;
mod fault;
mod net;
mod region;
#[cfg(feature = "tcp-transport")]
mod tcp;
mod transport;

pub use cost::CostModel;
pub use fabric::{Fabric, Nic, NicStats, NicStatsSnapshot};
pub use fault::{AsymmetricLoss, FaultPlan, Partition};
pub use net::NetConfig;
pub use region::MemoryRegion;
#[cfg(feature = "tcp-transport")]
pub use tcp::{TcpFabric, TcpOptions, TcpTransport};
pub use transport::{BatchPolicy, SimTransport, Transport, TransportStats, Wire};

/// Node identifier within a fabric (0-based, dense).
pub type NodeId = usize;
