//! Real-sockets transport backend (`tcp-transport` feature).
//!
//! [`TcpFabric`] brings up a full mesh of `std::net::TcpStream` connections
//! (loopback ephemeral ports by default, or a static address map) and hands
//! out one [`TcpTransport`] per node. Framing is length-prefixed:
//!
//! ```text
//! [u32 len (LE)] [u8 kind] [body]
//! ```
//!
//! with three frame kinds: `HELLO` (connection handshake, carries the
//! connecting node id), `MSG` (a [`Wire`]-encoded protocol message), and
//! `WRITE` (one-sided WRITE emulation: region id + word offset + data
//! words, applied into the registered [`MemoryRegion`] by the receive pump
//! before any later `MSG` on the same stream is delivered — preserving the
//! RDMA "data lands before the notification" contract that
//! [`Transport::write_send`] promises).
//!
//! Threading model: socket *reads* happen on plain OS pump threads (one per
//! incoming link) that block in `read_exact` and feed a per-node inbox
//! queue; simulated threads never issue a blocking syscall while holding
//! the dsim token. [`TcpTransport::recv`] polls the inbox and advances
//! virtual time via `Ctx::spin_hint` between polls, so wall-clock waits
//! appear as busy-poll time on the virtual clock. Socket *writes* are
//! issued directly from simulated threads (serialized per stream by a
//! mutex); large WRITEs are split into `max_frame_words`-sized frames,
//! which per-stream FIFO keeps ordered.
//!
//! Region addressing: every transport of one fabric shares a region table
//! keyed by [`MemoryRegion::region_token`], the moral equivalent of an
//! exchanged rkey. In-process meshes (this PR's scope) agree on ids by
//! construction; a cross-process mesh would exchange the table during the
//! HELLO handshake, which is deliberately left to the ibverbs follow-up.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use dsim::Ctx;
use parking_lot::Mutex;

use crate::region::MemoryRegion;
use crate::transport::{Transport, TransportStats, Wire};
use crate::NodeId;

const FRAME_HELLO: u8 = 0;
const FRAME_MSG: u8 = 1;
const FRAME_WRITE: u8 = 2;

/// Knobs for [`TcpFabric`] bring-up.
#[derive(Debug, Clone)]
pub struct TcpOptions {
    /// Largest one-sided WRITE carried by a single frame; bigger writes are
    /// split into consecutive frames (per-stream FIFO keeps them ordered).
    pub max_frame_words: usize,
    /// Virtual nanoseconds charged per empty inbox poll in
    /// [`TcpTransport::recv`]; models receive-side CQ polling.
    pub poll_ns: u64,
    /// Static listen addresses, one per node. `None` binds ephemeral
    /// loopback ports (the right default for in-process tests, immune to
    /// port collisions between parallel test binaries).
    pub addrs: Option<Vec<SocketAddr>>,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            max_frame_words: 4096,
            poll_ns: 200,
            addrs: None,
        }
    }
}

/// Registered-region table shared by every endpoint of one fabric.
#[derive(Default)]
struct RegionTable {
    inner: Mutex<Vec<MemoryRegion>>,
}

impl RegionTable {
    fn register(&self, region: &MemoryRegion) {
        let mut v = self.inner.lock();
        if !v.iter().any(|r| r.region_token() == region.region_token()) {
            v.push(region.clone());
        }
    }

    fn id_of(&self, region: &MemoryRegion) -> Option<u32> {
        self.inner
            .lock()
            .iter()
            .position(|r| r.region_token() == region.region_token())
            .map(|i| i as u32)
    }

    fn get(&self, id: u32) -> Option<MemoryRegion> {
        self.inner.lock().get(id as usize).cloned()
    }
}

#[derive(Default)]
struct TcpCounters {
    bytes_tx: AtomicU64,
    bytes_rx: AtomicU64,
    frames: AtomicU64,
    completions: AtomicU64,
}

/// One node's endpoint in a [`TcpFabric`] mesh.
pub struct TcpTransport<M: Wire> {
    node: NodeId,
    max_frame_words: usize,
    poll_ns: u64,
    /// Write halves, indexed by peer; `None` for self.
    peers: Vec<Option<Mutex<TcpStream>>>,
    inbox: Arc<Mutex<VecDeque<(NodeId, M)>>>,
    regions: Arc<RegionTable>,
    counters: Arc<TcpCounters>,
    pumps: Mutex<Vec<JoinHandle<()>>>,
    down: AtomicBool,
}

fn write_frame(stream: &mut TcpStream, kind: u8, body: &[u8]) -> io::Result<()> {
    let len = (body.len() + 1) as u32;
    let mut frame = Vec::with_capacity(5 + body.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(body);
    stream.write_all(&frame)
}

fn read_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty frame"));
    }
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

/// Receive pump for one incoming link: blocking OS reads, never a sim
/// thread. WRITE frames are applied into the registered region *before*
/// the following MSG frame is queued, preserving data-before-notification.
fn pump<M: Wire>(
    peer: NodeId,
    mut stream: TcpStream,
    inbox: Arc<Mutex<VecDeque<(NodeId, M)>>>,
    regions: Arc<RegionTable>,
    counters: Arc<TcpCounters>,
) {
    loop {
        let Ok(buf) = read_frame(&mut stream) else {
            return; // peer closed or local shutdown
        };
        counters
            .bytes_rx
            .fetch_add(4 + buf.len() as u64, Ordering::Relaxed);
        match buf[0] {
            FRAME_MSG => {
                let Some(msg) = M::decode(&buf[1..]) else {
                    return;
                };
                inbox.lock().push_back((peer, msg));
            }
            FRAME_WRITE => {
                if buf.len() < 13 || (buf.len() - 13) % 8 != 0 {
                    return;
                }
                let rid = u32::from_le_bytes(buf[1..5].try_into().unwrap());
                let offset = u64::from_le_bytes(buf[5..13].try_into().unwrap()) as usize;
                let words: Vec<u64> = buf[13..]
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                let Some(region) = regions.get(rid) else {
                    return;
                };
                region.write_slice(offset, &words);
            }
            _ => return,
        }
    }
}

impl<M: Wire> TcpTransport<M> {
    fn deliver_local(&self, msg: M) {
        let mut body = Vec::new();
        msg.encode(&mut body);
        let frame_bytes = 5 + body.len() as u64;
        self.counters
            .bytes_tx
            .fetch_add(frame_bytes, Ordering::Relaxed);
        self.counters
            .bytes_rx
            .fetch_add(frame_bytes, Ordering::Relaxed);
        self.counters.frames.fetch_add(1, Ordering::Relaxed);
        self.counters.completions.fetch_add(1, Ordering::Relaxed);
        self.inbox.lock().push_back((self.node, msg));
    }

    fn post(&self, dst: NodeId, buf: &[u8], frames: u64) {
        let mut stream = self.peers[dst]
            .as_ref()
            .expect("tcp transport: no link to peer")
            .lock();
        if let Err(e) = stream.write_all(buf) {
            if self.down.load(Ordering::SeqCst) {
                return;
            }
            panic!(
                "tcp transport: send from node {} to node {} failed: {e}",
                self.node, dst
            );
        }
        self.counters
            .bytes_tx
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.counters.frames.fetch_add(frames, Ordering::Relaxed);
        self.counters
            .completions
            .fetch_add(frames, Ordering::Relaxed);
    }
}

impl<M: Wire> Transport<M> for TcpTransport<M> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn register_region(&self, region: &MemoryRegion) {
        self.regions.register(region);
    }

    fn send(&self, _ctx: &mut Ctx, dst: NodeId, msg: M) {
        if dst == self.node {
            self.deliver_local(msg);
            return;
        }
        let mut body = Vec::new();
        msg.encode(&mut body);
        let mut frame = Vec::with_capacity(5 + body.len());
        frame.extend_from_slice(&((body.len() + 1) as u32).to_le_bytes());
        frame.push(FRAME_MSG);
        frame.extend_from_slice(&body);
        self.post(dst, &frame, 1);
    }

    fn write_send(
        &self,
        ctx: &mut Ctx,
        dst: NodeId,
        region: &MemoryRegion,
        offset: usize,
        data: Vec<u64>,
        msg: M,
    ) {
        if dst == self.node {
            region.write_slice(offset, &data);
            self.counters.frames.fetch_add(1, Ordering::Relaxed);
            self.counters.completions.fetch_add(1, Ordering::Relaxed);
            self.deliver_local(msg);
            return;
        }
        let rid = self
            .regions
            .id_of(region)
            .expect("tcp transport: write_send to unregistered region");
        let mut buf = Vec::with_capacity(data.len() * 8 + 64);
        let mut nframes = 0u64;
        let mut chunk_off = offset;
        for part in data.chunks(self.max_frame_words.max(1)) {
            let len = (1 + 4 + 8 + part.len() * 8) as u32;
            buf.extend_from_slice(&len.to_le_bytes());
            buf.push(FRAME_WRITE);
            buf.extend_from_slice(&rid.to_le_bytes());
            buf.extend_from_slice(&(chunk_off as u64).to_le_bytes());
            for w in part {
                buf.extend_from_slice(&w.to_le_bytes());
            }
            chunk_off += part.len();
            nframes += 1;
        }
        let mut body = Vec::new();
        msg.encode(&mut body);
        buf.extend_from_slice(&((body.len() + 1) as u32).to_le_bytes());
        buf.push(FRAME_MSG);
        buf.extend_from_slice(&body);
        nframes += 1;
        // One write_all for the whole WRITE+MSG train: per-stream FIFO makes
        // the data land before the notification, as on an RC queue pair.
        self.post(dst, &buf, nframes);
        let _ = ctx;
    }

    fn recv(&self, ctx: &mut Ctx) -> (NodeId, M) {
        loop {
            if let Some(item) = self.inbox.lock().pop_front() {
                return item;
            }
            ctx.spin_hint(self.poll_ns);
        }
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            bytes_tx: self.counters.bytes_tx.load(Ordering::Relaxed),
            bytes_rx: self.counters.bytes_rx.load(Ordering::Relaxed),
            frames: self.counters.frames.load(Ordering::Relaxed),
            completions: self.counters.completions.load(Ordering::Relaxed),
        }
    }

    fn shutdown(&self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        for peer in self.peers.iter().flatten() {
            let _ = peer.lock().shutdown(Shutdown::Both);
        }
        let pumps = std::mem::take(&mut *self.pumps.lock());
        for h in pumps {
            let _ = h.join();
        }
    }
}

impl<M: Wire> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        Transport::<M>::shutdown(self);
    }
}

/// A full mesh of TCP connections between `nodes` in-process endpoints.
pub struct TcpFabric<M: Wire> {
    transports: Vec<Arc<TcpTransport<M>>>,
}

fn read_hello(stream: &mut TcpStream) -> io::Result<NodeId> {
    let buf = read_frame(stream)?;
    if buf.len() != 5 || buf[0] != FRAME_HELLO {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad hello"));
    }
    Ok(u32::from_le_bytes(buf[1..5].try_into().unwrap()) as NodeId)
}

impl<M: Wire> TcpFabric<M> {
    /// Bind listeners, connect the full mesh, and start the receive pumps.
    ///
    /// Connection plan: node `i` dials every higher-numbered peer and
    /// announces itself with a HELLO frame; node `j`'s listener therefore
    /// accepts exactly `j` connections. All sockets are connected before
    /// any transport is handed out, so no sim thread ever blocks on
    /// connection establishment.
    pub fn new(nodes: usize, opts: TcpOptions) -> io::Result<Self> {
        assert!(nodes > 0, "tcp fabric needs at least one node");
        if let Some(addrs) = &opts.addrs {
            assert_eq!(addrs.len(), nodes, "one listen address per node");
        }
        let mut listeners = Vec::with_capacity(nodes);
        let mut addrs = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let bind_addr = match &opts.addrs {
                Some(a) => a[i],
                None => "127.0.0.1:0".parse().unwrap(),
            };
            let listener = TcpListener::bind(bind_addr)?;
            addrs.push(listener.local_addr()?);
            listeners.push(listener);
        }

        let mut accept_handles = Vec::with_capacity(nodes);
        for (j, listener) in listeners.into_iter().enumerate() {
            accept_handles.push(std::thread::spawn(
                move || -> io::Result<Vec<(NodeId, TcpStream)>> {
                    let mut conns = Vec::with_capacity(j);
                    for _ in 0..j {
                        let (mut stream, _) = listener.accept()?;
                        stream.set_nodelay(true)?;
                        let peer = read_hello(&mut stream)?;
                        conns.push((peer, stream));
                    }
                    Ok(conns)
                },
            ));
        }

        let mut endpoints: Vec<Vec<Option<TcpStream>>> = (0..nodes)
            .map(|_| (0..nodes).map(|_| None).collect())
            .collect();
        for (i, row) in endpoints.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate().skip(i + 1) {
                let mut stream = TcpStream::connect(addrs[j])?;
                stream.set_nodelay(true)?;
                write_frame(&mut stream, FRAME_HELLO, &(i as u32).to_le_bytes())?;
                *slot = Some(stream);
            }
        }
        for (j, handle) in accept_handles.into_iter().enumerate() {
            let conns = handle
                .join()
                .map_err(|_| io::Error::other("accept thread panicked"))??;
            for (peer, stream) in conns {
                if peer >= nodes || endpoints[j][peer].is_some() {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "bad peer id"));
                }
                endpoints[j][peer] = Some(stream);
            }
        }

        let regions = Arc::new(RegionTable::default());
        let mut transports = Vec::with_capacity(nodes);
        for (i, node_endpoints) in endpoints.into_iter().enumerate() {
            let inbox = Arc::new(Mutex::new(VecDeque::new()));
            let counters = Arc::new(TcpCounters::default());
            let mut peers = Vec::with_capacity(nodes);
            let mut pumps = Vec::with_capacity(nodes.saturating_sub(1));
            for (peer, endpoint) in node_endpoints.into_iter().enumerate() {
                match endpoint {
                    Some(stream) => {
                        let reader = stream.try_clone()?;
                        let inbox = inbox.clone();
                        let regions = regions.clone();
                        let counters = counters.clone();
                        pumps.push(std::thread::spawn(move || {
                            pump::<M>(peer, reader, inbox, regions, counters);
                        }));
                        peers.push(Some(Mutex::new(stream)));
                    }
                    None => peers.push(None),
                }
            }
            transports.push(Arc::new(TcpTransport {
                node: i,
                max_frame_words: opts.max_frame_words,
                poll_ns: opts.poll_ns,
                peers,
                inbox,
                regions: regions.clone(),
                counters,
                pumps: Mutex::new(pumps),
                down: AtomicBool::new(false),
            }));
        }
        Ok(Self { transports })
    }

    /// The endpoint belonging to `node`.
    pub fn transport(&self, node: NodeId) -> Arc<TcpTransport<M>> {
        self.transports[node].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Ping(u64);

    impl Wire for Ping {
        fn payload_bytes(&self) -> u64 {
            8
        }
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_le_bytes());
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            Some(Ping(u64::from_le_bytes(bytes.try_into().ok()?)))
        }
    }

    #[test]
    fn tcp_send_recv_roundtrip() {
        dsim::Sim::new(dsim::SimConfig::default()).run(|ctx| {
            let fabric = TcpFabric::<Ping>::new(2, TcpOptions::default()).unwrap();
            let a = fabric.transport(0);
            let b = fabric.transport(1);
            a.send(ctx, 1, Ping(11));
            b.send(ctx, 0, Ping(22));
            let (src, msg) = b.recv(ctx);
            assert_eq!((src, msg), (0, Ping(11)));
            let (src, msg) = a.recv(ctx);
            assert_eq!((src, msg), (1, Ping(22)));
            let s = a.stats();
            assert!(s.bytes_tx > 0 && s.bytes_rx > 0);
            assert_eq!(s.frames, 1);
            assert!(Transport::<Ping>::nic_stats(&*a).is_none());
            a.shutdown();
            b.shutdown();
            a.shutdown(); // idempotent
        });
    }

    #[test]
    fn tcp_write_send_applies_data_before_notification() {
        dsim::Sim::new(dsim::SimConfig::default()).run(|ctx| {
            let fabric = TcpFabric::<Ping>::new(
                2,
                TcpOptions {
                    max_frame_words: 3, // force splitting across frames
                    ..TcpOptions::default()
                },
            )
            .unwrap();
            let a = fabric.transport(0);
            let b = fabric.transport(1);
            let region = MemoryRegion::new(16);
            b.register_region(&region);
            let data: Vec<u64> = (1..=10).collect();
            a.write_send(ctx, 1, &region, 4, data.clone(), Ping(99));
            let (_, msg) = b.recv(ctx);
            assert_eq!(msg, Ping(99));
            assert_eq!(region.read_vec(4, 10), data);
            a.shutdown();
            b.shutdown();
        });
    }

    #[test]
    fn tcp_self_send_short_circuits() {
        dsim::Sim::new(dsim::SimConfig::default()).run(|ctx| {
            let fabric = TcpFabric::<Ping>::new(1, TcpOptions::default()).unwrap();
            let t = fabric.transport(0);
            t.send(ctx, 0, Ping(5));
            let (src, msg) = t.recv(ctx);
            assert_eq!((src, msg), (0, Ping(5)));
            t.shutdown();
        });
    }
}
