//! Real-sockets transport backend (`tcp-transport` feature).
//!
//! [`TcpFabric`] brings up a full mesh of `std::net::TcpStream` connections
//! (loopback ephemeral ports by default, or a static address map) and hands
//! out one [`TcpTransport`] per node. Framing is length-prefixed:
//!
//! ```text
//! [u32 len (LE)] [u8 kind] [body]
//! ```
//!
//! with three frame kinds: `HELLO` (connection handshake, carries the
//! connecting node id), `MSG` (a [`Wire`]-encoded protocol message), and
//! `WRITE` (one-sided WRITE emulation: region id + word offset + data
//! words, applied into the registered [`MemoryRegion`] by the receive pump
//! before any later `MSG` on the same stream is delivered — preserving the
//! RDMA "data lands before the notification" contract that
//! [`Transport::write_send`] promises).
//!
//! # Event-loop pump
//!
//! All socket I/O happens on a **fixed pool of pump threads per node**
//! ([`TcpOptions::pump_threads`], default 2) that multiplex every link of
//! that node through nonblocking sockets and `poll(2)` — never one thread
//! per link, so the thread count is independent of cluster size. Each pump
//! owns a disjoint subset of the node's links plus one wake pipe:
//!
//! - **Rx**: readable sockets are drained into a per-link reassembly
//!   buffer; complete frames are parsed in order (WRITE frames applied
//!   into their region before any later MSG is queued) and MSGs land in
//!   the node's inbox. A link that stalls mid-frame parks its partial
//!   bytes in its own buffer — other links keep flowing.
//! - **Tx (doorbell batching)**: senders never touch a socket. They encode
//!   frames onto the destination link's *egress ring* and, when the ring
//!   was idle, ring the doorbell (one byte down the owning pump's wake
//!   pipe). The pump coalesces whatever has accumulated — up to
//!   [`TcpOptions::send_batch_max`] frames — into a single
//!   `write_vectored` flush. A link whose socket is full (`WouldBlock`)
//!   parks its batch and waits for `POLLOUT`; its backlog grows on its own
//!   ring and never blocks a sim thread or another link (head-of-line
//!   isolation).
//!
//! Simulated threads therefore issue no blocking syscalls in either
//! direction while holding the dsim token. [`TcpTransport::recv`] polls
//! the inbox and advances virtual time via `Ctx::spin_hint` between polls,
//! so wall-clock waits appear as busy-poll time on the virtual clock.
//!
//! On shutdown the pumps drain every pending egress ring (bounded — a
//! stalled peer cannot wedge teardown), close their sockets and exit;
//! [`TcpTransport::shutdown`] joins them, so a dropped cluster leaks no
//! detached threads.
//!
//! Region addressing: every transport of one fabric shares a region table
//! keyed by [`MemoryRegion::region_token`], the moral equivalent of an
//! exchanged rkey. In-process meshes (this PR's scope) agree on ids by
//! construction; a cross-process mesh would exchange the table during the
//! HELLO handshake, which is deliberately left to the ibverbs follow-up.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dsim::Ctx;
use parking_lot::Mutex;

use crate::region::MemoryRegion;
use crate::transport::{Transport, TransportStats, Wire};
use crate::NodeId;

const FRAME_HELLO: u8 = 0;
const FRAME_MSG: u8 = 1;
const FRAME_WRITE: u8 = 2;

// ---------------------------------------------------------------------------
// poll(2) via the C library (always linked on the platforms this backend
// supports); the std library exposes nonblocking sockets but no readiness
// API, and the workspace is dependency-free by design.

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: libc_nfds, timeout: i32) -> i32;
}

#[allow(non_camel_case_types)]
type libc_nfds = std::ffi::c_ulong;

/// `poll(2)` over `fds`, retrying on `EINTR`. `timeout_ms < 0` blocks.
fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as libc_nfds, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

// ---------------------------------------------------------------------------

/// Knobs for [`TcpFabric`] bring-up.
#[derive(Debug, Clone)]
pub struct TcpOptions {
    /// Largest one-sided WRITE carried by a single frame; bigger writes are
    /// split into consecutive frames (per-stream FIFO keeps them ordered).
    pub max_frame_words: usize,
    /// Virtual nanoseconds charged per empty inbox poll in
    /// [`TcpTransport::recv`]; models receive-side CQ polling.
    pub poll_ns: u64,
    /// Static listen addresses, one per node. `None` binds ephemeral
    /// loopback ports (the right default for in-process tests, immune to
    /// port collisions between parallel test binaries).
    pub addrs: Option<Vec<SocketAddr>>,
    /// Pump threads per node: the fixed pool that multiplexes all of the
    /// node's links (never more threads than links). Independent of
    /// cluster size by construction.
    pub pump_threads: usize,
    /// Most frames one egress flush (`write_vectored` call) may carry.
    pub send_batch_max: usize,
    /// Selective signaling: count one completion every N-th flushed frame
    /// instead of one per flush. `None` keeps the per-flush default.
    pub flush_every_frames: Option<u64>,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            max_frame_words: 4096,
            poll_ns: 200,
            addrs: None,
            pump_threads: 2,
            send_batch_max: 16,
            flush_every_frames: None,
        }
    }
}

/// Registered-region table shared by every endpoint of one fabric.
#[derive(Default)]
struct RegionTable {
    inner: Mutex<Vec<MemoryRegion>>,
}

impl RegionTable {
    fn register(&self, region: &MemoryRegion) {
        let mut v = self.inner.lock();
        if !v.iter().any(|r| r.region_token() == region.region_token()) {
            v.push(region.clone());
        }
    }

    fn id_of(&self, region: &MemoryRegion) -> Option<u32> {
        self.inner
            .lock()
            .iter()
            .position(|r| r.region_token() == region.region_token())
            .map(|i| i as u32)
    }

    fn get(&self, id: u32) -> Option<MemoryRegion> {
        self.inner.lock().get(id as usize).cloned()
    }
}

#[derive(Default)]
struct TcpCounters {
    bytes_tx: AtomicU64,
    bytes_rx: AtomicU64,
    frames: AtomicU64,
    completions: AtomicU64,
    tx_flushes: AtomicU64,
    doorbell_batches: AtomicU64,
    frames_coalesced: AtomicU64,
    ring_hwm: AtomicU64,
    /// Frames committed to flushes so far (selective-signaling cursor).
    signaled_cursor: AtomicU64,
}

impl TcpCounters {
    /// Account one committed flush of `nframes` frames: the flush/batch
    /// counters plus completions under the selected signaling policy.
    fn flush(&self, nframes: u64, flush_every: Option<u64>) {
        self.tx_flushes.fetch_add(1, Ordering::Relaxed);
        if nframes >= 2 {
            self.doorbell_batches.fetch_add(1, Ordering::Relaxed);
            self.frames_coalesced
                .fetch_add(nframes - 1, Ordering::Relaxed);
        }
        match flush_every {
            // Default: the flush itself is the signaled completion.
            None => {
                self.completions.fetch_add(1, Ordering::Relaxed);
            }
            // Selective signaling: one completion per N-th flushed frame.
            Some(n) => {
                let n = n.max(1);
                let before = self.signaled_cursor.fetch_add(nframes, Ordering::Relaxed);
                let crossed = (before + nframes) / n - before / n;
                if crossed > 0 {
                    self.completions.fetch_add(crossed, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Egress state of one outgoing link: frame trains a sender enqueued but
/// the pump has not yet committed to a flush.
struct TxRing {
    /// Encoded frame trains awaiting flush: (bytes, frames in the train).
    queue: VecDeque<(Vec<u8>, u64)>,
    /// Frames currently queued (sum of the counts above).
    depth_frames: u64,
    /// Link torn down (peer gone or local shutdown); senders must stop.
    closed: bool,
}

/// One outgoing link: its egress ring plus the doorbell to the pump thread
/// that owns the link.
struct TxLink {
    ring: Mutex<TxRing>,
    /// Write end of the owning pump's wake pipe (nonblocking: a full pipe
    /// means the pump is already due to wake).
    wake: UnixStream,
}

/// One node's endpoint in a [`TcpFabric`] mesh.
pub struct TcpTransport<M: Wire> {
    node: NodeId,
    max_frame_words: usize,
    poll_ns: u64,
    /// Outgoing links, indexed by peer; `None` for self.
    links: Vec<Option<Arc<TxLink>>>,
    inbox: Arc<Mutex<VecDeque<(NodeId, M)>>>,
    regions: Arc<RegionTable>,
    counters: Arc<TcpCounters>,
    flush_every: Option<u64>,
    pumps: Mutex<Vec<JoinHandle<()>>>,
    down: Arc<AtomicBool>,
}

fn write_frame(stream: &mut TcpStream, kind: u8, body: &[u8]) -> io::Result<()> {
    let len = (body.len() + 1) as u32;
    let mut frame = Vec::with_capacity(5 + body.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(body);
    stream.write_all(&frame)
}

fn read_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty frame"));
    }
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

// ---------------------------------------------------------------------------
// Pump pool

/// Everything a pump thread shares with its node's transport.
struct PumpShared<M: Wire> {
    inbox: Arc<Mutex<VecDeque<(NodeId, M)>>>,
    regions: Arc<RegionTable>,
    counters: Arc<TcpCounters>,
    down: Arc<AtomicBool>,
    send_batch_max: u64,
    flush_every: Option<u64>,
}

/// One link as seen by its owning pump: the socket, the Rx reassembly
/// state and the (shared) egress ring, plus the batch currently being
/// written out.
struct PumpLink {
    peer: NodeId,
    stream: TcpStream,
    tx: Arc<TxLink>,
    /// Rx reassembly buffer: bytes read off the socket but not yet parsed
    /// into complete frames (a frame may straddle reads).
    rx_acc: Vec<u8>,
    rx_open: bool,
    tx_open: bool,
    /// Bytes of the committed in-flight batch not yet accepted by the
    /// socket (tail after a partial `write_vectored`).
    inflight: VecDeque<Vec<u8>>,
    /// Bytes of `inflight.front()` already written.
    inflight_off: usize,
}

impl PumpLink {
    fn tx_pending(&self) -> bool {
        !self.inflight.is_empty() || {
            let ring = self.tx.ring.lock();
            !ring.queue.is_empty()
        }
    }

    /// Close the egress side: mark the ring so senders see a dead link and
    /// drop whatever was queued (it can never be delivered).
    fn close_tx(&mut self) {
        self.tx_open = false;
        self.inflight.clear();
        let mut ring = self.tx.ring.lock();
        ring.closed = true;
        ring.queue.clear();
        ring.depth_frames = 0;
    }
}

/// Parse complete frames off the front of `acc`, applying WRITEs and
/// queueing MSGs. Returns `false` on a malformed frame (link is dropped).
fn parse_frames<M: Wire>(peer: NodeId, acc: &mut Vec<u8>, sh: &PumpShared<M>) -> bool {
    let mut cursor = 0usize;
    let ok = loop {
        let rest = &acc[cursor..];
        if rest.len() < 4 {
            break true;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if len == 0 {
            break false;
        }
        if rest.len() < 4 + len {
            break true; // frame still in flight; wait for more bytes
        }
        let body = &rest[4..4 + len];
        match body[0] {
            FRAME_MSG => {
                let Some(msg) = M::decode(&body[1..]) else {
                    break false;
                };
                sh.inbox.lock().push_back((peer, msg));
            }
            FRAME_WRITE => {
                if body.len() < 13 || !(body.len() - 13).is_multiple_of(8) {
                    break false;
                }
                let rid = u32::from_le_bytes(body[1..5].try_into().unwrap());
                let offset = u64::from_le_bytes(body[5..13].try_into().unwrap()) as usize;
                let words: Vec<u64> = body[13..]
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                let Some(region) = sh.regions.get(rid) else {
                    break false;
                };
                region.write_slice(offset, &words);
            }
            _ => break false,
        }
        cursor += 4 + len;
    };
    acc.drain(..cursor);
    ok
}

/// Drain a readable socket into the link's reassembly buffer and parse.
/// Returns `false` when the link is done for (EOF, error, bad frame).
fn pump_rx<M: Wire>(link: &mut PumpLink, sh: &PumpShared<M>, scratch: &mut [u8]) -> bool {
    loop {
        match link.stream.read(scratch) {
            Ok(0) => return false,
            Ok(n) => {
                sh.counters.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
                link.rx_acc.extend_from_slice(&scratch[..n]);
                if !parse_frames(link.peer, &mut link.rx_acc, sh) {
                    return false;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// Flush a link's egress ring: commit pending frame trains into batches of
/// at most `send_batch_max` frames and write each batch with one
/// `write_vectored`. Stops on `WouldBlock` (batch stays in flight, POLLOUT
/// will resume it) or when the ring is dry. Returns `false` on a dead
/// socket.
fn flush_link<M: Wire>(link: &mut PumpLink, sh: &PumpShared<M>) -> bool {
    loop {
        if link.inflight.is_empty() {
            // Commit the next batch. The counters move here — at doorbell
            // time — so `tx_flushes`/`doorbell_batches` describe flush
            // decisions, not socket-level partial writes.
            let mut ring = link.tx.ring.lock();
            if ring.queue.is_empty() {
                return true;
            }
            let mut batched = 0u64;
            while let Some(&(_, n)) = ring.queue.front() {
                // Always take at least one train, even one wider than the
                // cap (a split WRITE+MSG train is indivisible).
                if batched > 0 && batched + n > sh.send_batch_max {
                    break;
                }
                let (buf, n) = ring.queue.pop_front().unwrap();
                link.inflight.push_back(buf);
                batched += n;
                if batched >= sh.send_batch_max {
                    break;
                }
            }
            ring.depth_frames -= batched;
            drop(ring);
            link.inflight_off = 0;
            sh.counters.flush(batched, sh.flush_every);
        }
        // Write the in-flight batch outside the ring lock: senders keep
        // enqueueing while the syscall runs.
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(link.inflight.len());
        for (i, buf) in link.inflight.iter().enumerate() {
            let start = if i == 0 { link.inflight_off } else { 0 };
            slices.push(IoSlice::new(&buf[start..]));
        }
        match link.stream.write_vectored(&slices) {
            Ok(0) => return false,
            Ok(mut n) => {
                while n > 0 {
                    let head_left = link
                        .inflight
                        .front()
                        .map_or(0, |b| b.len() - link.inflight_off);
                    if n >= head_left {
                        n -= head_left;
                        link.inflight.pop_front();
                        link.inflight_off = 0;
                    } else {
                        link.inflight_off += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// The event loop of one pump thread: `poll(2)` over this pump's links and
/// its wake pipe, then service whatever is ready. Exits (after draining
/// egress) once the transport is shut down.
fn pump_loop<M: Wire>(mut links: Vec<PumpLink>, wake_rx: UnixStream, sh: PumpShared<M>) {
    let mut scratch = vec![0u8; 64 << 10];
    while !sh.down.load(Ordering::SeqCst) {
        let mut fds = Vec::with_capacity(links.len() + 1);
        fds.push(PollFd {
            fd: wake_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        let mut fd_link = Vec::with_capacity(links.len());
        for (i, link) in links.iter().enumerate() {
            let mut events = 0i16;
            if link.rx_open {
                events |= POLLIN;
            }
            if link.tx_open && link.tx_pending() {
                events |= POLLOUT;
            }
            if events != 0 {
                fds.push(PollFd {
                    fd: link.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                fd_link.push(i);
            }
        }
        // Finite timeout so a lost doorbell can only delay, never wedge.
        if poll_fds(&mut fds, 100).is_err() {
            break;
        }
        if sh.down.load(Ordering::SeqCst) {
            break;
        }
        if fds[0].revents & (POLLIN | POLLERR | POLLHUP) != 0 {
            // Swallow accumulated doorbell bytes; the ring scan below does
            // the actual work.
            loop {
                match (&wake_rx).read(&mut scratch) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }
        }
        for (slot, &i) in fd_link.iter().enumerate() {
            let revents = fds[slot + 1].revents;
            let link = &mut links[i];
            if link.rx_open
                && revents & (POLLIN | POLLHUP | POLLERR) != 0
                && !pump_rx(link, &sh, &mut scratch)
            {
                link.rx_open = false;
            }
        }
        // Opportunistic Tx pass: every link with pending egress gets one
        // flush attempt per wake — the common case writes immediately
        // without waiting for a POLLOUT cycle; a full socket just returns
        // WouldBlock and keeps its POLLOUT armed.
        for link in links.iter_mut() {
            if link.tx_open && link.tx_pending() && !flush_link(link, &sh) {
                link.close_tx();
            }
        }
    }
    drain_and_close(&mut links, &sh);
}

/// Shutdown path: give every link a bounded chance to flush its remaining
/// egress (so teardown messages reach still-listening peers), then close.
fn drain_and_close<M: Wire>(links: &mut [PumpLink], sh: &PumpShared<M>) {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let mut fds = Vec::new();
        for link in links.iter_mut() {
            if link.tx_open && link.tx_pending() {
                if !flush_link(link, sh) {
                    link.close_tx();
                } else if link.tx_pending() {
                    fds.push(PollFd {
                        fd: link.stream.as_raw_fd(),
                        events: POLLOUT,
                        revents: 0,
                    });
                }
            }
        }
        if fds.is_empty() || Instant::now() >= deadline {
            break;
        }
        if poll_fds(&mut fds, 20).is_err() {
            break;
        }
    }
    for link in links.iter_mut() {
        link.close_tx();
        link.rx_open = false;
        let _ = link.stream.shutdown(Shutdown::Both);
    }
}

// ---------------------------------------------------------------------------

impl<M: Wire> TcpTransport<M> {
    fn deliver_local(&self, msg: M) {
        let mut body = Vec::new();
        msg.encode(&mut body);
        let frame_bytes = 5 + body.len() as u64;
        self.counters
            .bytes_tx
            .fetch_add(frame_bytes, Ordering::Relaxed);
        self.counters
            .bytes_rx
            .fetch_add(frame_bytes, Ordering::Relaxed);
        self.counters.frames.fetch_add(1, Ordering::Relaxed);
        // A self-delivery is its own single-frame flush.
        self.counters.flush(1, self.flush_every);
        self.inbox.lock().push_back((self.node, msg));
    }

    /// Enqueue one encoded frame train onto `dst`'s egress ring and ring
    /// the doorbell if the ring was idle. Never blocks: the pump does all
    /// socket work.
    fn post(&self, dst: NodeId, buf: Vec<u8>, nframes: u64) {
        let link = self.links[dst]
            .as_ref()
            .expect("tcp transport: no link to peer");
        let bytes = buf.len() as u64;
        let mut ring = link.ring.lock();
        if ring.closed {
            if self.down.load(Ordering::SeqCst) {
                return;
            }
            panic!(
                "tcp transport: send from node {} to node {dst} failed: link closed",
                self.node
            );
        }
        let was_idle = ring.queue.is_empty();
        ring.queue.push_back((buf, nframes));
        ring.depth_frames += nframes;
        self.counters
            .ring_hwm
            .fetch_max(ring.depth_frames, Ordering::Relaxed);
        self.counters.bytes_tx.fetch_add(bytes, Ordering::Relaxed);
        self.counters.frames.fetch_add(nframes, Ordering::Relaxed);
        if was_idle {
            // Nonblocking doorbell; a full pipe means the pump already has
            // wakes queued, and its poll timeout backstops a lost one.
            let _ = (&link.wake).write(&[1u8]);
        }
    }

    /// Number of pump threads serving this endpoint (the fixed pool; see
    /// [`TcpOptions::pump_threads`]). Exposed so tests can assert the pool
    /// stays fixed as the mesh grows.
    pub fn pump_count(&self) -> usize {
        self.pumps.lock().len()
    }
}

impl<M: Wire> Transport<M> for TcpTransport<M> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn register_region(&self, region: &MemoryRegion) {
        self.regions.register(region);
    }

    fn send(&self, _ctx: &mut Ctx, dst: NodeId, msg: M) {
        if dst == self.node {
            self.deliver_local(msg);
            return;
        }
        let mut body = Vec::new();
        msg.encode(&mut body);
        let mut frame = Vec::with_capacity(5 + body.len());
        frame.extend_from_slice(&((body.len() + 1) as u32).to_le_bytes());
        frame.push(FRAME_MSG);
        frame.extend_from_slice(&body);
        self.post(dst, frame, 1);
    }

    fn write_send(
        &self,
        ctx: &mut Ctx,
        dst: NodeId,
        region: &MemoryRegion,
        offset: usize,
        data: Vec<u64>,
        msg: M,
    ) {
        if dst == self.node {
            region.write_slice(offset, &data);
            self.counters.frames.fetch_add(1, Ordering::Relaxed);
            self.counters.flush(1, self.flush_every);
            self.deliver_local(msg);
            return;
        }
        let rid = self
            .regions
            .id_of(region)
            .expect("tcp transport: write_send to unregistered region");
        let mut buf = Vec::with_capacity(data.len() * 8 + 64);
        let mut nframes = 0u64;
        let mut chunk_off = offset;
        for part in data.chunks(self.max_frame_words.max(1)) {
            let len = (1 + 4 + 8 + part.len() * 8) as u32;
            buf.extend_from_slice(&len.to_le_bytes());
            buf.push(FRAME_WRITE);
            buf.extend_from_slice(&rid.to_le_bytes());
            buf.extend_from_slice(&(chunk_off as u64).to_le_bytes());
            for w in part {
                buf.extend_from_slice(&w.to_le_bytes());
            }
            chunk_off += part.len();
            nframes += 1;
        }
        let mut body = Vec::new();
        msg.encode(&mut body);
        buf.extend_from_slice(&((body.len() + 1) as u32).to_le_bytes());
        buf.push(FRAME_MSG);
        buf.extend_from_slice(&body);
        nframes += 1;
        // One train for the whole WRITE+MSG sequence: the ring (and the
        // stream's FIFO) make the data land before the notification, as on
        // an RC queue pair.
        self.post(dst, buf, nframes);
        let _ = ctx;
    }

    fn recv(&self, ctx: &mut Ctx) -> (NodeId, M) {
        loop {
            if let Some(item) = self.inbox.lock().pop_front() {
                return item;
            }
            ctx.spin_hint(self.poll_ns);
        }
    }

    fn try_recv(&self, _ctx: &mut Ctx) -> Option<(NodeId, M)> {
        self.inbox.lock().pop_front()
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            bytes_tx: self.counters.bytes_tx.load(Ordering::Relaxed),
            bytes_rx: self.counters.bytes_rx.load(Ordering::Relaxed),
            frames: self.counters.frames.load(Ordering::Relaxed),
            completions: self.counters.completions.load(Ordering::Relaxed),
            tx_flushes: self.counters.tx_flushes.load(Ordering::Relaxed),
            doorbell_batches: self.counters.doorbell_batches.load(Ordering::Relaxed),
            frames_coalesced: self.counters.frames_coalesced.load(Ordering::Relaxed),
            ring_hwm: self.counters.ring_hwm.load(Ordering::Relaxed),
        }
    }

    fn shutdown(&self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake every pump (each link's doorbell reaches its owner; extra
        // wakes are harmless) and join — pumps drain their rings first.
        for link in self.links.iter().flatten() {
            let _ = (&link.wake).write(&[1u8]);
        }
        let pumps = std::mem::take(&mut *self.pumps.lock());
        for h in pumps {
            let _ = h.join();
        }
    }
}

impl<M: Wire> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        Transport::<M>::shutdown(self);
    }
}

/// A full mesh of TCP connections between `nodes` in-process endpoints.
pub struct TcpFabric<M: Wire> {
    transports: Vec<Arc<TcpTransport<M>>>,
}

fn read_hello(stream: &mut TcpStream) -> io::Result<NodeId> {
    let buf = read_frame(stream)?;
    if buf.len() != 5 || buf[0] != FRAME_HELLO {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad hello"));
    }
    Ok(u32::from_le_bytes(buf[1..5].try_into().unwrap()) as NodeId)
}

impl<M: Wire> TcpFabric<M> {
    /// Bind listeners, connect the full mesh, and start the pump pools.
    ///
    /// Connection plan: node `i` dials every higher-numbered peer and
    /// announces itself with a HELLO frame; node `j`'s listener therefore
    /// accepts exactly `j` connections. The handshake runs on blocking
    /// sockets; each stream turns nonblocking when it is handed to its
    /// pump. All sockets are connected before any transport is handed out,
    /// so no sim thread ever blocks on connection establishment.
    pub fn new(nodes: usize, opts: TcpOptions) -> io::Result<Self> {
        assert!(nodes > 0, "tcp fabric needs at least one node");
        assert!(opts.pump_threads > 0, "tcp fabric needs at least one pump");
        assert!(opts.send_batch_max > 0, "send_batch_max must be nonzero");
        if let Some(addrs) = &opts.addrs {
            assert_eq!(addrs.len(), nodes, "one listen address per node");
        }
        let mut listeners = Vec::with_capacity(nodes);
        let mut addrs = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let bind_addr = match &opts.addrs {
                Some(a) => a[i],
                None => "127.0.0.1:0".parse().unwrap(),
            };
            let listener = TcpListener::bind(bind_addr)?;
            addrs.push(listener.local_addr()?);
            listeners.push(listener);
        }

        let mut accept_handles = Vec::with_capacity(nodes);
        for (j, listener) in listeners.into_iter().enumerate() {
            accept_handles.push(std::thread::spawn(
                move || -> io::Result<Vec<(NodeId, TcpStream)>> {
                    let mut conns = Vec::with_capacity(j);
                    for _ in 0..j {
                        let (mut stream, _) = listener.accept()?;
                        stream.set_nodelay(true)?;
                        let peer = read_hello(&mut stream)?;
                        conns.push((peer, stream));
                    }
                    Ok(conns)
                },
            ));
        }

        let mut endpoints: Vec<Vec<Option<TcpStream>>> = (0..nodes)
            .map(|_| (0..nodes).map(|_| None).collect())
            .collect();
        for (i, row) in endpoints.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate().skip(i + 1) {
                let mut stream = TcpStream::connect(addrs[j])?;
                stream.set_nodelay(true)?;
                write_frame(&mut stream, FRAME_HELLO, &(i as u32).to_le_bytes())?;
                *slot = Some(stream);
            }
        }
        for (j, handle) in accept_handles.into_iter().enumerate() {
            let conns = handle
                .join()
                .map_err(|_| io::Error::other("accept thread panicked"))??;
            for (peer, stream) in conns {
                if peer >= nodes || endpoints[j][peer].is_some() {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "bad peer id"));
                }
                endpoints[j][peer] = Some(stream);
            }
        }

        let regions = Arc::new(RegionTable::default());
        let mut transports = Vec::with_capacity(nodes);
        for (i, node_endpoints) in endpoints.into_iter().enumerate() {
            let inbox = Arc::new(Mutex::new(VecDeque::new()));
            let counters = Arc::new(TcpCounters::default());
            let down = Arc::new(AtomicBool::new(false));
            let connected: Vec<(NodeId, TcpStream)> = node_endpoints
                .into_iter()
                .enumerate()
                .filter_map(|(peer, ep)| ep.map(|s| (peer, s)))
                .collect();
            // Fixed pool: never more pumps than links, never more than
            // asked for — and zero for a single-node mesh.
            let npumps = opts.pump_threads.min(connected.len());
            let mut wakes = Vec::with_capacity(npumps);
            let mut pump_links: Vec<Vec<PumpLink>> = (0..npumps).map(|_| Vec::new()).collect();
            for _ in 0..npumps {
                let (wake_rx, wake_tx) = UnixStream::pair()?;
                wake_rx.set_nonblocking(true)?;
                wake_tx.set_nonblocking(true)?;
                wakes.push((wake_rx, wake_tx));
            }
            let mut links: Vec<Option<Arc<TxLink>>> = (0..nodes).map(|_| None).collect();
            for (idx, (peer, stream)) in connected.into_iter().enumerate() {
                let pump_id = idx % npumps;
                stream.set_nonblocking(true)?;
                let tx = Arc::new(TxLink {
                    ring: Mutex::new(TxRing {
                        queue: VecDeque::new(),
                        depth_frames: 0,
                        closed: false,
                    }),
                    wake: wakes[pump_id].1.try_clone()?,
                });
                pump_links[pump_id].push(PumpLink {
                    peer,
                    stream,
                    tx: tx.clone(),
                    rx_acc: Vec::new(),
                    rx_open: true,
                    tx_open: true,
                    inflight: VecDeque::new(),
                    inflight_off: 0,
                });
                links[peer] = Some(tx);
            }
            let mut pumps = Vec::with_capacity(npumps);
            for ((wake_rx, _wake_tx), my_links) in wakes.into_iter().zip(pump_links) {
                let sh = PumpShared::<M> {
                    inbox: inbox.clone(),
                    regions: regions.clone(),
                    counters: counters.clone(),
                    down: down.clone(),
                    send_batch_max: opts.send_batch_max.max(1) as u64,
                    flush_every: opts.flush_every_frames,
                };
                pumps.push(std::thread::spawn(move || {
                    pump_loop::<M>(my_links, wake_rx, sh);
                }));
            }
            transports.push(Arc::new(TcpTransport {
                node: i,
                max_frame_words: opts.max_frame_words,
                poll_ns: opts.poll_ns,
                links,
                inbox,
                regions: regions.clone(),
                counters,
                flush_every: opts.flush_every_frames,
                pumps: Mutex::new(pumps),
                down,
            }));
        }
        Ok(Self { transports })
    }

    /// The endpoint belonging to `node`.
    pub fn transport(&self, node: NodeId) -> Arc<TcpTransport<M>> {
        self.transports[node].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Ping(u64);

    impl Wire for Ping {
        fn payload_bytes(&self) -> u64 {
            8
        }
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_le_bytes());
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            Some(Ping(u64::from_le_bytes(bytes.try_into().ok()?)))
        }
    }

    fn os_threads() -> usize {
        let status = std::fs::read_to_string("/proc/self/status").unwrap();
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .unwrap()
    }

    #[test]
    fn tcp_send_recv_roundtrip() {
        dsim::Sim::new(dsim::SimConfig::default()).run(|ctx| {
            let fabric = TcpFabric::<Ping>::new(2, TcpOptions::default()).unwrap();
            let a = fabric.transport(0);
            let b = fabric.transport(1);
            a.send(ctx, 1, Ping(11));
            b.send(ctx, 0, Ping(22));
            let (src, msg) = b.recv(ctx);
            assert_eq!((src, msg), (0, Ping(11)));
            let (src, msg) = a.recv(ctx);
            assert_eq!((src, msg), (1, Ping(22)));
            let s = a.stats();
            assert!(s.bytes_tx > 0 && s.bytes_rx > 0);
            assert_eq!(s.frames, 1);
            // The message arrived, so its flush must have been committed.
            assert_eq!(s.tx_flushes, 1);
            assert_eq!(s.frames, s.tx_flushes + s.frames_coalesced);
            assert!(Transport::<Ping>::nic_stats(&*a).is_none());
            a.shutdown();
            b.shutdown();
            a.shutdown(); // idempotent
        });
    }

    #[test]
    fn tcp_write_send_applies_data_before_notification() {
        dsim::Sim::new(dsim::SimConfig::default()).run(|ctx| {
            let fabric = TcpFabric::<Ping>::new(
                2,
                TcpOptions {
                    max_frame_words: 3, // force splitting across frames
                    ..TcpOptions::default()
                },
            )
            .unwrap();
            let a = fabric.transport(0);
            let b = fabric.transport(1);
            let region = MemoryRegion::new(16);
            b.register_region(&region);
            let data: Vec<u64> = (1..=10).collect();
            a.write_send(ctx, 1, &region, 4, data.clone(), Ping(99));
            let (_, msg) = b.recv(ctx);
            assert_eq!(msg, Ping(99));
            assert_eq!(region.read_vec(4, 10), data);
            // 4 WRITE frames + 1 MSG went out as one doorbell-batched
            // train: a single flush covering all five frames.
            let s = a.stats();
            assert_eq!(s.frames, 5);
            assert_eq!(s.tx_flushes, 1);
            assert_eq!(s.doorbell_batches, 1);
            assert_eq!(s.frames_coalesced, 4);
            assert_eq!(s.frames, s.tx_flushes + s.frames_coalesced);
            a.shutdown();
            b.shutdown();
        });
    }

    #[test]
    fn tcp_self_send_short_circuits() {
        dsim::Sim::new(dsim::SimConfig::default()).run(|ctx| {
            let fabric = TcpFabric::<Ping>::new(1, TcpOptions::default()).unwrap();
            let t = fabric.transport(0);
            t.send(ctx, 0, Ping(5));
            let (src, msg) = t.recv(ctx);
            assert_eq!((src, msg), (0, Ping(5)));
            assert_eq!(t.pump_count(), 0); // no links, no pumps
            t.shutdown();
        });
    }

    /// Satellite regression for the old unbuffered per-frame `write` path:
    /// a bursty workload must come out with fewer flushes than frames —
    /// i.e. the pump actually coalesces — and the counter identity must
    /// hold exactly.
    #[test]
    fn tcp_bursty_tx_coalesces_flushes_below_frames() {
        dsim::Sim::new(dsim::SimConfig::default()).run(|ctx| {
            let fabric = TcpFabric::<Ping>::new(2, TcpOptions::default()).unwrap();
            let a = fabric.transport(0);
            let b = fabric.transport(1);
            let region = MemoryRegion::new(1 << 10);
            b.register_region(&region);
            // Burst: 50 WRITE+MSG trains (2 frames each) plus 50 plain
            // sends, enqueued back-to-back without waiting.
            for i in 0..50u64 {
                a.write_send(
                    ctx,
                    1,
                    &region,
                    (i as usize * 8) % 1000,
                    vec![i; 8],
                    Ping(i),
                );
                a.send(ctx, 1, Ping(1000 + i));
            }
            for _ in 0..100 {
                let _ = b.recv(ctx);
            }
            let s = a.stats();
            assert_eq!(s.frames, 150); // 50 * (WRITE + MSG) + 50 * MSG
            assert!(
                s.tx_flushes < s.frames,
                "bursty egress must coalesce: {} flushes for {} frames",
                s.tx_flushes,
                s.frames
            );
            // Every WRITE+MSG train rides one flush, so at least one
            // batched flush exists and at least one frame per train
            // coalesced (more when whole trains merge into one batch).
            assert!(s.doorbell_batches >= 1);
            assert!(s.frames_coalesced >= 50);
            assert_eq!(s.frames, s.tx_flushes + s.frames_coalesced);
            a.shutdown();
            b.shutdown();
        });
    }

    /// Satellite: a stalled peer (node 2 reads nothing while its socket
    /// and our egress ring fill up) must not block traffic between the
    /// other nodes — head-of-line isolation across links.
    #[test]
    fn tcp_stalled_peer_does_not_block_other_links() {
        dsim::Sim::new(dsim::SimConfig::default()).run(|ctx| {
            let fabric = TcpFabric::<Ping>::new(3, TcpOptions::default()).unwrap();
            let a = fabric.transport(0);
            let b = fabric.transport(1);
            let c = fabric.transport(2);
            let region = MemoryRegion::new(1 << 22); // 32 MiB
            c.register_region(&region);
            // Flood the stalled peer: 1024 trains of 4096 words (32 KiB of
            // payload each, ~32 MiB total) — far beyond any default socket
            // buffering, so node 0's link-2 egress ring must back up.
            // Enqueueing never blocks the caller.
            let words = 4096usize;
            for i in 0..1024u64 {
                let off = (i as usize * words) % ((1 << 22) - words);
                a.write_send(ctx, 2, &region, off, vec![i + 1; words], Ping(i));
            }
            // Meanwhile the 0<->1 link must stay fully live: 100 prompt
            // round trips within a generous wall-clock envelope.
            let t0 = Instant::now();
            for i in 0..100u64 {
                a.send(ctx, 1, Ping(i));
                let (src, msg) = b.recv(ctx);
                assert_eq!((src, msg), (0, Ping(i)));
                b.send(ctx, 0, Ping(i));
                let (src, msg) = a.recv(ctx);
                assert_eq!((src, msg), (1, Ping(i)));
            }
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "0<->1 round trips took {:?} behind a stalled peer",
                t0.elapsed()
            );
            let hwm = a.stats().ring_hwm;
            assert!(hwm > 1, "flooded egress ring never backed up (hwm {hwm})");
            // Un-stall: drain every notification and check the data all
            // landed (nothing was lost while the ring was backed up).
            for _ in 0..1024 {
                let _ = c.recv(ctx);
            }
            let last_off = (1023usize * words) % ((1 << 22) - words);
            assert_eq!(region.load(last_off), 1024);
            a.shutdown();
            b.shutdown();
            c.shutdown();
        });
    }

    /// The pump pool is fixed: a 6-node mesh (5 links per node) still runs
    /// on `pump_threads` threads per endpoint, not one per link.
    #[test]
    fn tcp_pump_pool_is_fixed_not_per_link() {
        dsim::Sim::new(dsim::SimConfig::default()).run(|ctx| {
            let opts = TcpOptions::default();
            let fabric = TcpFabric::<Ping>::new(6, opts.clone()).unwrap();
            for n in 0..6 {
                let t = fabric.transport(n);
                assert_eq!(t.pump_count(), opts.pump_threads);
                assert!(t.pump_count() < 5, "pool must be smaller than links");
            }
            // Every pairwise link still works through the shared pumps.
            for i in 0..6 {
                for j in 0..6 {
                    if i != j {
                        fabric.transport(i).send(ctx, j, Ping((i * 6 + j) as u64));
                    }
                }
            }
            for j in 0..6 {
                let t = fabric.transport(j);
                for _ in 0..5 {
                    let (src, msg) = t.recv(ctx);
                    assert_eq!(msg, Ping((src * 6 + j) as u64));
                }
            }
            for n in 0..6 {
                fabric.transport(n).shutdown();
            }
        });
    }

    /// Satellite: repeated bring-up/tear-down must not leak pump threads —
    /// shutdown drains and joins every pump.
    #[test]
    fn tcp_teardown_loop_leaks_no_threads() {
        let before = os_threads();
        for round in 0..10u64 {
            dsim::Sim::new(dsim::SimConfig::default()).run(move |ctx| {
                let fabric = TcpFabric::<Ping>::new(3, TcpOptions::default()).unwrap();
                let a = fabric.transport(0);
                let b = fabric.transport(1);
                a.send(ctx, 1, Ping(round));
                let (_, msg) = b.recv(ctx);
                assert_eq!(msg, Ping(round));
                for n in 0..3 {
                    fabric.transport(n).shutdown();
                }
            });
        }
        // A leak would accumulate 6 pump threads per round (3 nodes x 2
        // pumps = 60 total); a small slack absorbs unrelated test threads
        // running in the same process.
        let after = os_threads();
        assert!(
            after < before + 20,
            "thread leak across teardown loop: {before} before, {after} after"
        );
    }

    /// `flush_every_frames` switches completion accounting to selective
    /// signaling: one completion per N-th flushed frame.
    #[test]
    fn tcp_selective_signaling_counts_every_nth_frame() {
        dsim::Sim::new(dsim::SimConfig::default()).run(|ctx| {
            let fabric = TcpFabric::<Ping>::new(
                2,
                TcpOptions {
                    flush_every_frames: Some(4),
                    ..TcpOptions::default()
                },
            )
            .unwrap();
            let a = fabric.transport(0);
            let b = fabric.transport(1);
            for i in 0..10u64 {
                a.send(ctx, 1, Ping(i));
            }
            for _ in 0..10 {
                let _ = b.recv(ctx);
            }
            let s = a.stats();
            assert_eq!(s.frames, 10);
            assert_eq!(s.completions, 2, "10 frames / signal interval 4");
            a.shutdown();
            b.shutdown();
        });
    }
}
