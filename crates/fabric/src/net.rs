//! Network parameters of the simulated fabric.

use dsim::VTime;

/// Fabric configuration. Defaults are calibrated to the paper's testbed:
/// ConnectX-4 100 Gbps InfiniBand, one-sided READ round trip ≈ 2 µs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// One-way propagation + switching + DMA latency (ns). With the default
    /// post overhead this yields the paper's ≈ 2 µs READ round trip.
    pub prop_latency_ns: VTime,
    /// Serialization bandwidth in bytes per microsecond (100 Gbps =
    /// 12 500 B/µs).
    pub bytes_per_us: u64,
    /// CPU cost of posting a work request to the RNIC (MMIO write), ns.
    pub post_overhead_ns: VTime,
    /// CPU cost of polling one completion from the CQ, ns.
    pub cq_poll_ns: VTime,
    /// Generate a signaled completion only every `signal_interval` work
    /// requests (selective signaling, §4.5). 1 disables the optimization.
    pub signal_interval: u64,
    /// Fixed wire size of a protocol message header, bytes.
    pub header_bytes: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            prop_latency_ns: 850,
            bytes_per_us: 12_500,
            post_overhead_ns: 80,
            cq_poll_ns: 120,
            signal_interval: 64,
            header_bytes: 32,
        }
    }
}

impl NetConfig {
    /// A configuration with near-zero latencies, for fast unit tests that
    /// only care about protocol correctness.
    pub fn instant() -> Self {
        Self {
            prop_latency_ns: 1,
            bytes_per_us: u64::MAX / 2,
            post_overhead_ns: 0,
            cq_poll_ns: 0,
            signal_interval: 1,
            header_bytes: 0,
        }
    }

    /// Wire transmission time for `bytes` payload bytes (ns).
    #[inline]
    pub fn tx_time(&self, bytes: u64) -> VTime {
        // bytes / (bytes/µs) in ns, rounding up.
        (bytes * 1_000).div_ceil(self.bytes_per_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_read_rtt_is_about_two_microseconds() {
        let c = NetConfig::default();
        // READ: post + prop (request) + prop + 8B payload (reply).
        let rtt = c.post_overhead_ns + c.prop_latency_ns + c.tx_time(8) + c.prop_latency_ns;
        assert!((1_700..2_300).contains(&rtt), "rtt = {rtt}");
    }

    #[test]
    fn tx_time_scales_with_bytes() {
        let c = NetConfig::default();
        assert_eq!(c.tx_time(12_500), 1_000); // 12.5 kB in 1 µs at 100 Gbps
        assert!(c.tx_time(0) == 0);
        assert!(c.tx_time(1) >= 1);
    }

    #[test]
    fn instant_config_is_fast() {
        let c = NetConfig::instant();
        assert!(c.tx_time(1 << 20) <= 1);
    }
}
