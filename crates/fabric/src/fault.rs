//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] attaches to a [`crate::Fabric`] at construction and
//! perturbs the wire behavior of every NIC, driven entirely by a seeded
//! [`dsim::Rng`]: the same plan (same seed) replays the exact same fault
//! schedule, bit for bit, which is what makes chaos-test failures
//! reproducible from a single `u64`.
//!
//! Injected fault classes:
//!
//! * **Latency jitter** — every remote SEND/WRITE serializes for an extra
//!   uniform `0..=jitter_ns` on its link. Jitter is added to the link's
//!   busy window (not to the arrival stamp alone), so per-link delivery
//!   stays monotone and RC FIFO ordering — which `rdma_write_send` relies
//!   on for data-before-notification — is preserved.
//! * **NIC stalls** — with probability `stall_ppm` per remote verb, the
//!   posting NIC freezes: all its subsequent transmissions start no earlier
//!   than `now + stall_ns` (a uniform draw from the configured window).
//!   Models firmware hiccups / PFC pauses.
//! * **Message drops** — with probability `drop_ppm`, a two-sided SEND is
//!   transmitted but discarded by the receiver. The sender's per-link
//!   `link_error` latch is raised (the QP-error completion notification);
//!   one-sided WRITEs are never randomly dropped, so a retransmitted
//!   WRITE+SEND pair stays idempotent.
//! * **Node crashes** — at a scheduled virtual time a node halts: every
//!   remote verb from or to it is discarded from then on. Loopback
//!   (self-node) traffic still delivers, so a crashed node's local teardown
//!   (e.g. the `Halt` self-send that stops an Rx thread) keeps working.
//!   Messages already in flight at the crash instant still deliver; the
//!   crash closes the NIC, it does not rewrite history.
//! * **Partitions** — during a [`Partition`] window, two-sided SENDs
//!   between nodes in different groups are discarded deterministically (no
//!   RNG draw). The window heals on its own; nodes absent from every group
//!   are unaffected.
//! * **Asymmetric loss** — an [`AsymmetricLoss`] rule drops two-sided
//!   SENDs on one *direction* of one link with its own probability and
//!   time window, modelling a flaky cable or a congested switch port that
//!   degrades only one flow. The reverse direction is untouched.
//!
//! Partitions and asymmetric loss sever the **control plane only**: like
//! random drops, they discard two-sided SENDs but never one-sided WRITEs,
//! preserving the invariant that a retransmitted or replayed WRITE+SEND
//! pair stays idempotent (the data always lands; only the notification is
//! at risk).
//!
//! One-sided READ/FETCH_ADD/CMP_SWAP verbs are not perturbed — the DArray
//! protocol path (the subject of the chaos suite) uses WRITE+SEND only.

use dsim::VTime;

use crate::NodeId;

/// A temporary network partition: during `[from_ns, until_ns)`, two-sided
/// SENDs between nodes in *different* groups are discarded (deterministic,
/// no RNG draw — the same plan always severs the same messages). Nodes not
/// listed in any group keep full connectivity; traffic within a group is
/// unaffected. One-sided WRITEs cross the partition untouched (see the
/// module docs on control-plane-only severing).
#[derive(Debug, Clone)]
pub struct Partition {
    /// The disjoint connectivity groups. Cross-group pairs are severed.
    pub groups: Vec<Vec<NodeId>>,
    /// Partition start (inclusive), virtual ns.
    pub from_ns: VTime,
    /// Partition end (exclusive), virtual ns; the link heals at this time.
    pub until_ns: VTime,
}

impl Partition {
    /// True when the pair `(a, b)` is severed by this partition at `now`:
    /// the window is active and the two nodes sit in different groups.
    pub fn severs(&self, a: NodeId, b: NodeId, now: VTime) -> bool {
        if now < self.from_ns || now >= self.until_ns {
            return false;
        }
        let group_of = |n: NodeId| self.groups.iter().position(|g| g.contains(&n));
        match (group_of(a), group_of(b)) {
            (Some(ga), Some(gb)) => ga != gb,
            _ => false,
        }
    }
}

/// Directional lossy link: two-sided SENDs from `from` to `to` are dropped
/// with probability `drop_ppm` during `[from_ns, until_ns)`. The reverse
/// direction is untouched, which is exactly the shape that provokes false
/// suspicion — `to` still hears nothing is wrong while `from`'s RPCs
/// toward it silently vanish (or vice versa).
#[derive(Debug, Clone)]
pub struct AsymmetricLoss {
    /// Sending side of the degraded direction.
    pub from: NodeId,
    /// Receiving side of the degraded direction.
    pub to: NodeId,
    /// Drop probability for matching SENDs, parts per million.
    pub drop_ppm: u32,
    /// Rule start (inclusive), virtual ns.
    pub from_ns: VTime,
    /// Rule end (exclusive), virtual ns; the link heals at this time.
    pub until_ns: VTime,
}

impl AsymmetricLoss {
    /// Drop probability (ppm) this rule applies to a SEND from `from` to
    /// `to` at `now`; 0 when the rule does not match.
    pub fn drop_ppm_for(&self, from: NodeId, to: NodeId, now: VTime) -> u32 {
        if self.from == from && self.to == to && now >= self.from_ns && now < self.until_ns {
            self.drop_ppm
        } else {
            0
        }
    }
}

/// Declarative, seed-driven fault schedule for a whole fabric.
///
/// The default plan is benign (no jitter, no stalls, no drops, no crashes);
/// a fabric built without a plan skips the fault paths entirely and behaves
/// bit-identically to a fault-free build.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Root seed. Each NIC derives its own decorrelated stream from it, so
    /// draw order is independent of cross-node interleaving.
    pub seed: u64,
    /// Maximum extra serialization per remote verb, ns (uniform
    /// `0..=jitter_ns`). 0 disables jitter.
    pub jitter_ns: VTime,
    /// Probability, in parts per million, that a remote two-sided SEND is
    /// dropped after transmission. 0 disables drops.
    pub drop_ppm: u32,
    /// Probability, in parts per million, that a remote verb stalls the
    /// posting NIC. 0 disables stalls.
    pub stall_ppm: u32,
    /// Stall duration window `[min, max]` ns, drawn uniformly per stall.
    pub stall_ns: (VTime, VTime),
    /// Scheduled whole-node crashes: `(node, halt_time)`. A node listed
    /// more than once crashes at the earliest of its times.
    pub crash_at: Vec<(NodeId, VTime)>,
    /// Timed network partitions (deterministic, no RNG); empty disables.
    pub partitions: Vec<Partition>,
    /// Directional lossy-link rules; empty disables. Each matching SEND
    /// costs one extra RNG draw *after* the fixed stall/jitter/drop draws,
    /// so plans without rules replay bit-identically to older plans.
    pub asym_loss: Vec<AsymmetricLoss>,
}

impl FaultPlan {
    /// A benign plan carrying only a seed; switch individual fault classes
    /// on by setting their fields.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            jitter_ns: 0,
            drop_ppm: 0,
            stall_ppm: 0,
            stall_ns: (0, 0),
            crash_at: Vec::new(),
            partitions: Vec::new(),
            asym_loss: Vec::new(),
        }
    }

    /// True when the plan injects no faults at all (a bare seed). Only a
    /// benign plan can run over a real transport backend: fault injection
    /// is a property of the simulated fabric, not of OS sockets.
    pub fn is_benign(&self) -> bool {
        self.jitter_ns == 0
            && self.drop_ppm == 0
            && self.stall_ppm == 0
            && self.crash_at.is_empty()
            && self.partitions.is_empty()
            && self.asym_loss.is_empty()
    }

    /// Crash time of `node` under this plan, if any.
    pub fn crash_time_of(&self, node: NodeId) -> Option<VTime> {
        self.crash_at
            .iter()
            .filter(|(n, _)| *n == node)
            .map(|&(_, t)| t)
            .min()
    }

    /// True when any partition severs the pair `(a, b)` at `now`.
    pub fn partitioned(&self, a: NodeId, b: NodeId, now: VTime) -> bool {
        self.partitions.iter().any(|p| p.severs(a, b, now))
    }

    /// Highest asymmetric-loss drop probability (ppm) matching a SEND from
    /// `from` to `to` at `now`; 0 when no rule matches.
    pub fn asym_drop_ppm(&self, from: NodeId, to: NodeId, now: VTime) -> u32 {
        self.asym_loss
            .iter()
            .map(|r| r.drop_ppm_for(from, to, now))
            .max()
            .unwrap_or(0)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_benign() {
        let p = FaultPlan::default();
        assert_eq!(p.jitter_ns, 0);
        assert_eq!(p.drop_ppm, 0);
        assert_eq!(p.stall_ppm, 0);
        assert!(p.crash_at.is_empty());
        assert_eq!(p.crash_time_of(0), None);
    }

    #[test]
    fn crash_time_takes_earliest_entry() {
        let mut p = FaultPlan::new(1);
        p.crash_at = vec![(2, 900), (1, 500), (2, 300)];
        assert_eq!(p.crash_time_of(2), Some(300));
        assert_eq!(p.crash_time_of(1), Some(500));
        assert_eq!(p.crash_time_of(0), None);
    }

    #[test]
    fn partition_severs_cross_group_pairs_inside_window() {
        let mut p = FaultPlan::new(1);
        p.partitions = vec![Partition {
            groups: vec![vec![0, 1], vec![2]],
            from_ns: 1_000,
            until_ns: 2_000,
        }];
        // Outside the window: connected.
        assert!(!p.partitioned(0, 2, 999));
        assert!(!p.partitioned(0, 2, 2_000));
        // Inside: cross-group severed both ways, intra-group connected.
        assert!(p.partitioned(0, 2, 1_000));
        assert!(p.partitioned(2, 1, 1_500));
        assert!(!p.partitioned(0, 1, 1_500));
        // A node listed in no group keeps full connectivity.
        assert!(!p.partitioned(0, 3, 1_500));
        assert!(!p.partitioned(3, 2, 1_500));
    }

    #[test]
    fn asym_loss_matches_one_direction_in_window() {
        let mut p = FaultPlan::new(1);
        p.asym_loss = vec![AsymmetricLoss {
            from: 0,
            to: 2,
            drop_ppm: 700_000,
            from_ns: 500,
            until_ns: 1_500,
        }];
        assert_eq!(p.asym_drop_ppm(0, 2, 1_000), 700_000);
        // Reverse direction, other pairs, and out-of-window: no rule.
        assert_eq!(p.asym_drop_ppm(2, 0, 1_000), 0);
        assert_eq!(p.asym_drop_ppm(0, 1, 1_000), 0);
        assert_eq!(p.asym_drop_ppm(0, 2, 499), 0);
        assert_eq!(p.asym_drop_ppm(0, 2, 1_500), 0);
    }

    #[test]
    fn overlapping_asym_rules_take_the_harshest() {
        let mut p = FaultPlan::new(1);
        let rule = |ppm| AsymmetricLoss {
            from: 1,
            to: 0,
            drop_ppm: ppm,
            from_ns: 0,
            until_ns: u64::MAX,
        };
        p.asym_loss = vec![rule(100_000), rule(900_000)];
        assert_eq!(p.asym_drop_ppm(1, 0, 10), 900_000);
    }
}
