//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] attaches to a [`crate::Fabric`] at construction and
//! perturbs the wire behavior of every NIC, driven entirely by a seeded
//! [`dsim::Rng`]: the same plan (same seed) replays the exact same fault
//! schedule, bit for bit, which is what makes chaos-test failures
//! reproducible from a single `u64`.
//!
//! Injected fault classes:
//!
//! * **Latency jitter** — every remote SEND/WRITE serializes for an extra
//!   uniform `0..=jitter_ns` on its link. Jitter is added to the link's
//!   busy window (not to the arrival stamp alone), so per-link delivery
//!   stays monotone and RC FIFO ordering — which `rdma_write_send` relies
//!   on for data-before-notification — is preserved.
//! * **NIC stalls** — with probability `stall_ppm` per remote verb, the
//!   posting NIC freezes: all its subsequent transmissions start no earlier
//!   than `now + stall_ns` (a uniform draw from the configured window).
//!   Models firmware hiccups / PFC pauses.
//! * **Message drops** — with probability `drop_ppm`, a two-sided SEND is
//!   transmitted but discarded by the receiver. The sender's per-link
//!   `link_error` latch is raised (the QP-error completion notification);
//!   one-sided WRITEs are never randomly dropped, so a retransmitted
//!   WRITE+SEND pair stays idempotent.
//! * **Node crashes** — at a scheduled virtual time a node halts: every
//!   remote verb from or to it is discarded from then on. Loopback
//!   (self-node) traffic still delivers, so a crashed node's local teardown
//!   (e.g. the `Halt` self-send that stops an Rx thread) keeps working.
//!   Messages already in flight at the crash instant still deliver; the
//!   crash closes the NIC, it does not rewrite history.
//!
//! One-sided READ/FETCH_ADD/CMP_SWAP verbs are not perturbed — the DArray
//! protocol path (the subject of the chaos suite) uses WRITE+SEND only.

use dsim::VTime;

use crate::NodeId;

/// Declarative, seed-driven fault schedule for a whole fabric.
///
/// The default plan is benign (no jitter, no stalls, no drops, no crashes);
/// a fabric built without a plan skips the fault paths entirely and behaves
/// bit-identically to a fault-free build.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Root seed. Each NIC derives its own decorrelated stream from it, so
    /// draw order is independent of cross-node interleaving.
    pub seed: u64,
    /// Maximum extra serialization per remote verb, ns (uniform
    /// `0..=jitter_ns`). 0 disables jitter.
    pub jitter_ns: VTime,
    /// Probability, in parts per million, that a remote two-sided SEND is
    /// dropped after transmission. 0 disables drops.
    pub drop_ppm: u32,
    /// Probability, in parts per million, that a remote verb stalls the
    /// posting NIC. 0 disables stalls.
    pub stall_ppm: u32,
    /// Stall duration window `[min, max]` ns, drawn uniformly per stall.
    pub stall_ns: (VTime, VTime),
    /// Scheduled whole-node crashes: `(node, halt_time)`. A node listed
    /// more than once crashes at the earliest of its times.
    pub crash_at: Vec<(NodeId, VTime)>,
}

impl FaultPlan {
    /// A benign plan carrying only a seed; switch individual fault classes
    /// on by setting their fields.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            jitter_ns: 0,
            drop_ppm: 0,
            stall_ppm: 0,
            stall_ns: (0, 0),
            crash_at: Vec::new(),
        }
    }

    /// Crash time of `node` under this plan, if any.
    pub fn crash_time_of(&self, node: NodeId) -> Option<VTime> {
        self.crash_at
            .iter()
            .filter(|(n, _)| *n == node)
            .map(|&(_, t)| t)
            .min()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_benign() {
        let p = FaultPlan::default();
        assert_eq!(p.jitter_ns, 0);
        assert_eq!(p.drop_ppm, 0);
        assert_eq!(p.stall_ppm, 0);
        assert!(p.crash_at.is_empty());
        assert_eq!(p.crash_time_of(0), None);
    }

    #[test]
    fn crash_time_takes_earliest_entry() {
        let mut p = FaultPlan::new(1);
        p.crash_at = vec![(2, 900), (1, 500), (2, 300)];
        assert_eq!(p.crash_time_of(2), Some(300));
        assert_eq!(p.crash_time_of(1), Some(500));
        assert_eq!(p.crash_time_of(0), None);
    }
}
