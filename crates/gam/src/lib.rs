//! # gam — the GAM baseline (Cai et al., VLDB 2018)
//!
//! GAM is the state-of-the-art RDMA distributed memory the paper compares
//! against: like DArray it keeps a per-node cache coherent with a
//! directory protocol, but it differs in exactly the ways the paper's
//! evaluation isolates:
//!
//! * **Lock-based data access path.** Every access probes a hash table to
//!   locate the cache directory entry and takes a per-chunk lock — the
//!   "large overhead / limited concurrency" strawman of §4.1. Figure 1
//!   shows the consequence: GAM's *local* access latency is an order of
//!   magnitude above a builtin array.
//! * **No Operate interface.** GAM's Atomic verbs perform the
//!   read-then-write under *exclusive ownership*, so concurrent updaters
//!   ping-pong the chunk between nodes (Figures 12c, 14, 16).
//! * **No sequential prefetch.**
//! * Heavier protocol processing per message (GAM targets bulk
//!   reads/writes; its per-message runtime cost is higher).
//!
//! This crate realizes GAM over the same simulated fabric and the same
//! directory-protocol engine as `darray` (GAM's protocol is the
//! Unshared/Shared/Dirty subset — the Operated state is simply never
//! entered), configured with GAM's access path and cost structure. The
//! public API mirrors GAM's: `read` / `write` / `atomic` / distributed
//! locks.

use darray::{
    AccessPath, ArrayOptions, Cluster, ClusterConfig, CostModel, Ctx, DArray, Element, GlobalArray,
    NetConfig, NodeEnv, NodeId,
};

/// Build the cluster configuration that realizes GAM's design on the shared
/// protocol engine.
pub fn gam_config(nodes: usize) -> ClusterConfig {
    gam_config_with_net(nodes, NetConfig::default())
}

/// GAM configuration with a custom network model (tests use
/// `NetConfig::instant()`).
pub fn gam_config_with_net(nodes: usize, net: NetConfig) -> ClusterConfig {
    let cost = CostModel::default();
    let mut cfg = ClusterConfig::with_nodes(nodes);
    cfg.net = net;
    cfg.access_path = AccessPath::LockBased;
    // Per access: hash probe to find the directory entry (the chunk lock
    // itself is charged by the lock, and the data access by the body).
    cfg.fast_path_cost_ns = Some(cost.hash_probe_ns + cost.dir_update_ns / 2);
    // GAM's runtime processes protocol messages with more bookkeeping.
    cfg.cost.rpc_handle_ns = cost.rpc_handle_ns * 2;
    cfg.cost.local_req_handle_ns = cost.local_req_handle_ns * 2;
    // No sequential prefetch.
    cfg.cache.prefetch_lines = 0;
    cfg
}

/// A running GAM cluster.
pub struct GamCluster {
    inner: Cluster,
}

impl GamCluster {
    /// Boot a GAM cluster with the default (paper-calibrated) network.
    pub fn new(ctx: &mut Ctx, nodes: usize) -> Self {
        Self::with_config(ctx, gam_config(nodes))
    }

    /// Boot with an explicit configuration (must keep the GAM access path).
    pub fn with_config(ctx: &mut Ctx, cfg: ClusterConfig) -> Self {
        assert_eq!(
            cfg.access_path,
            AccessPath::LockBased,
            "GAM uses the lock-based access path"
        );
        Self {
            inner: Cluster::new(ctx, cfg),
        }
    }

    /// Allocate a zeroed global array (GAM's `Malloc` + even distribution).
    pub fn alloc<T: Element>(&self, len: usize) -> GamGlobalArray<T> {
        GamGlobalArray {
            inner: self.inner.alloc(len, ArrayOptions::default()),
        }
    }

    /// Allocate with an initializer, written node-locally.
    pub fn alloc_with<T: Element>(
        &self,
        len: usize,
        init: impl Fn(usize) -> T,
    ) -> GamGlobalArray<T> {
        GamGlobalArray {
            inner: self.inner.alloc_with(len, ArrayOptions::default(), init),
        }
    }

    /// Allocate with a custom partition (GAM also lets callers place
    /// memory; used to match the graph engines' edge-balanced partition).
    pub fn alloc_partitioned<T: Element>(
        &self,
        len: usize,
        offsets: Vec<usize>,
        init: impl Fn(usize) -> T,
    ) -> GamGlobalArray<T> {
        GamGlobalArray {
            inner: self.inner.alloc_with(
                len,
                ArrayOptions {
                    chunk_size: None,
                    partition_offset: Some(offsets),
                },
                init,
            ),
        }
    }

    /// Run application threads (same collective model as `darray`).
    pub fn run<F>(&self, ctx: &mut Ctx, threads_per_node: usize, f: F)
    where
        F: Fn(&mut Ctx, NodeEnv) + Send + Sync + 'static,
    {
        self.inner.run(ctx, threads_per_node, f)
    }

    /// Runtime statistics of one node.
    pub fn stats(&self, node: NodeId) -> darray::NodeStatsSnapshot {
        self.inner.stats(node)
    }

    /// Tear down.
    pub fn shutdown(self, ctx: &mut Ctx) {
        self.inner.shutdown(ctx)
    }
}

/// Unbound handle to a GAM global array.
pub struct GamGlobalArray<T: Element> {
    inner: GlobalArray<T>,
}

impl<T: Element> Clone for GamGlobalArray<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Element> GamGlobalArray<T> {
    /// Node-local view.
    pub fn on(&self, node: NodeId) -> GamArray<T> {
        GamArray {
            inner: self.inner.on(node),
        }
    }

    /// Global length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

/// Node-local view of a GAM array.
pub struct GamArray<T: Element> {
    inner: DArray<T>,
}

impl<T: Element> Clone for GamArray<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Element> GamArray<T> {
    /// GAM `Read`.
    pub fn read(&self, ctx: &mut Ctx, index: usize) -> T {
        self.inner.get(ctx, index)
    }

    /// GAM `Write`.
    pub fn write(&self, ctx: &mut Ctx, index: usize, value: T) {
        self.inner.set(ctx, index, value)
    }

    /// GAM `Atomic`: read-modify-write under exclusive ownership. The
    /// chunk's ownership migrates to the caller; concurrent updaters on
    /// other nodes serialize through the home directory — the contention
    /// the Operate interface was designed to avoid (§6.2).
    pub fn atomic(&self, ctx: &mut Ctx, index: usize, f: impl Fn(T) -> T) {
        self.inner.update(ctx, index, f)
    }

    /// Distributed reader lock.
    pub fn rlock(&self, ctx: &mut Ctx, index: usize) {
        self.inner.rlock(ctx, index)
    }

    /// Distributed writer lock.
    pub fn wlock(&self, ctx: &mut Ctx, index: usize) {
        self.inner.wlock(ctx, index)
    }

    /// Release a held lock.
    pub fn unlock(&self, ctx: &mut Ctx, index: usize) {
        self.inner.unlock(ctx, index)
    }

    /// Global length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Elements homed on this node.
    pub fn local_range(&self) -> std::ops::Range<usize> {
        self.inner.local_range()
    }

    /// Home node of an element.
    pub fn home_of(&self, index: usize) -> NodeId {
        self.inner.home_of(index)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.inner.nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darray::{Sim, SimConfig};

    fn instant(nodes: usize) -> ClusterConfig {
        gam_config_with_net(nodes, NetConfig::instant())
    }

    #[test]
    fn read_write_roundtrip_across_nodes() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let g = GamCluster::with_config(ctx, instant(3));
            let arr = g.alloc_with::<u64>(3 * 512, |i| i as u64);
            g.run(ctx, 1, move |ctx, env| {
                let a = arr.on(env.node);
                let i = (env.node + 1) % 3 * 512 + 5; // a remote element
                assert_eq!(a.read(ctx, i), i as u64);
                a.write(ctx, i, 999 + env.node as u64);
                env.barrier(ctx);
                let mine = env.node * 512 + 5;
                assert_eq!(a.read(ctx, mine), 999 + ((env.node + 2) % 3) as u64);
            });
            g.shutdown(ctx);
        });
    }

    #[test]
    fn atomic_is_atomic_under_contention() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let g = GamCluster::with_config(ctx, instant(3));
            let arr = g.alloc::<u64>(512);
            g.run(ctx, 2, move |ctx, env| {
                let a = arr.on(env.node);
                for _ in 0..40 {
                    a.atomic(ctx, 17, |v| v + 1);
                }
                env.barrier(ctx);
                assert_eq!(a.read(ctx, 17), 3 * 2 * 40);
            });
            g.shutdown(ctx);
        });
    }

    #[test]
    fn locks_work() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let g = GamCluster::with_config(ctx, instant(2));
            let arr = g.alloc::<u64>(512);
            g.run(ctx, 1, move |ctx, env| {
                let a = arr.on(env.node);
                for _ in 0..10 {
                    a.wlock(ctx, 3);
                    let v = a.read(ctx, 3);
                    a.write(ctx, 3, v + 1);
                    a.unlock(ctx, 3);
                }
                env.barrier(ctx);
                assert_eq!(a.read(ctx, 3), 20);
            });
            g.shutdown(ctx);
        });
    }

    #[test]
    fn gam_local_access_is_costlier_than_darray() {
        // Figure 1's key motivation: GAM's access path is far more
        // expensive than DArray's lock-free path even on purely local data.
        let gam_time = Sim::new(SimConfig::default()).run(|ctx| {
            let g = GamCluster::with_config(ctx, instant(1));
            let arr = g.alloc::<u64>(4096);
            g.run(ctx, 1, move |ctx, env| {
                let a = arr.on(env.node);
                for i in 0..4096 {
                    let _ = a.read(ctx, i);
                }
            });
            let t = ctx.now();
            g.shutdown(ctx);
            t
        });
        let darray_time = Sim::new(SimConfig::default()).run(|ctx| {
            let c = Cluster::new(ctx, ClusterConfig::test_config(1));
            let arr = c.alloc::<u64>(4096, ArrayOptions::default());
            c.run(ctx, 1, move |ctx, env| {
                let a = arr.on(env.node);
                for i in 0..4096 {
                    let _ = a.get(ctx, i);
                }
            });
            let t = ctx.now();
            c.shutdown(ctx);
            t
        });
        assert!(
            gam_time > darray_time * 3,
            "gam {gam_time} should be several times darray {darray_time}"
        );
    }
}
