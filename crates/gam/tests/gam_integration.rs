//! GAM baseline integration tests: eviction under tiny caches, atomic
//! contention patterns, determinism, and the cost-structure properties the
//! evaluation relies on.

use darray::{Sim, SimConfig};
use gam::{gam_config, gam_config_with_net, GamCluster};
use rdma_fabric::NetConfig;

#[test]
fn eviction_preserves_gam_writes() {
    Sim::new(SimConfig::default()).run(|ctx| {
        let mut cfg = gam_config_with_net(2, NetConfig::instant());
        cfg.cache.capacity_lines = 8;
        let g = GamCluster::with_config(ctx, cfg);
        let arr = g.alloc::<u64>(64 * 512);
        g.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            if env.node == 1 {
                for c in 0..32 {
                    a.write(ctx, c * 512 + 9, c as u64 + 500);
                }
            }
            env.barrier(ctx);
            if env.node == 0 {
                for c in 0..32 {
                    assert_eq!(a.read(ctx, c * 512 + 9), c as u64 + 500);
                }
            }
        });
        g.shutdown(ctx);
    });
}

#[test]
fn atomic_min_and_max_patterns() {
    Sim::new(SimConfig::default()).run(|ctx| {
        let g = GamCluster::with_config(ctx, gam_config_with_net(3, NetConfig::instant()));
        let arr = g.alloc_with::<u64>(1024, |_| 1_000);
        g.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            let me = env.node as u64;
            a.atomic(ctx, 10, move |v: u64| v.min(me * 100 + 1));
            a.atomic(ctx, 20, move |v: u64| v.max(me * 100 + 1));
            env.barrier(ctx);
            assert_eq!(a.read(ctx, 10), 1); // min over {1, 101, 201}
            assert_eq!(a.read(ctx, 20), 1_000); // max keeps the initial 1000
        });
        g.shutdown(ctx);
    });
}

#[test]
fn gam_runs_are_deterministic() {
    fn once() -> (u64, u64) {
        Sim::new(SimConfig::default()).run(|ctx| {
            let g = GamCluster::new(ctx, 3);
            let arr = g.alloc::<u64>(4 * 512);
            g.run(ctx, 2, move |ctx, env| {
                let a = arr.on(env.node);
                for k in 0..50 {
                    let i = (env.node * 700 + env.thread * 13 + k * 7) % a.len();
                    a.atomic(ctx, i, |v| v + 1);
                }
                env.barrier(ctx);
            });
            let s = g.stats(0);
            let out = (s.rpcs_handled, s.fills);
            g.shutdown(ctx);
            out
        })
    }
    assert_eq!(once(), once());
}

#[test]
fn gam_remote_read_caches_like_darray() {
    // GAM *does* have a cache (unlike BCL): the second scan of a remote
    // region is miss-free. (GAM's per-access path is so expensive that the
    // *time* difference is modest — the distinguishing observable is the
    // fill count, plus the per-op cost staying far below a round trip.)
    Sim::new(SimConfig::default()).run(|ctx| {
        let g = GamCluster::with_config(ctx, gam_config(2));
        let arr = g.alloc_with::<u64>(8 * 512, |i| i as u64);
        let cluster = g;
        let arr2 = arr.clone();
        cluster.run(ctx, 1, move |ctx, env| {
            if env.node != 1 {
                return;
            }
            let a = arr2.on(1);
            for i in 0..2048 {
                assert_eq!(a.read(ctx, i), i as u64);
            }
        });
        let fills_after_cold = cluster.stats(1).fills;
        assert!(fills_after_cold >= 4, "cold scan must fill remote chunks");
        cluster.run(ctx, 1, move |ctx, env| {
            if env.node != 1 {
                return;
            }
            let a = arr.on(1);
            let t0 = ctx.now();
            for i in 0..2048 {
                assert_eq!(a.read(ctx, i), i as u64);
            }
            let warm = ctx.now() - t0;
            // Every access is a hit: per-op cost stays far below the ~2 µs
            // round trip BCL would pay.
            assert!(warm / 2048 < 200, "warm per-op = {}", warm / 2048);
        });
        let fills_after_warm = cluster.stats(1).fills;
        assert_eq!(
            fills_after_cold, fills_after_warm,
            "warm scan must not refill"
        );
        cluster.shutdown(ctx);
    });
}

#[test]
fn gam_atomic_ownership_pingpong_is_visible_in_stats() {
    Sim::new(SimConfig::default()).run(|ctx| {
        let g = GamCluster::with_config(ctx, gam_config(4));
        let arr = g.alloc::<u64>(512);
        g.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            for round in 0..8 {
                a.atomic(ctx, 0, |v| v + 1);
                let _ = round;
                env.barrier(ctx);
            }
            env.barrier(ctx);
            assert_eq!(a.read(ctx, 0), 32);
        });
        // The single hot chunk migrated between the nodes repeatedly.
        let total_fills: u64 = (0..4).map(|n| g.stats(n).fills).sum();
        assert!(total_fills >= 8, "fills = {total_fills}");
        g.shutdown(ctx);
    });
}
