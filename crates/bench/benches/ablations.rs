//! Criterion versions of the key design-choice ablations (virtual time;
//! the full tables come from the `ablations` binary).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use darray::{AccessPath, ArrayOptions, Cluster, ClusterConfig, Sim, SimConfig};

/// Virtual time of a 2-node remote sequential scan under `cfg`.
fn scan_elapsed(cfg: ClusterConfig, ops: u64) -> u64 {
    let nodes = cfg.nodes;
    let len = 8192 * nodes;
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(len, ArrayOptions::default());
        let el = Arc::new(AtomicU64::new(0));
        let e2 = el.clone();
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            let start = (env.node * 2048) % len;
            env.barrier(ctx);
            let t0 = ctx.now();
            for k in 0..ops {
                std::hint::black_box(a.get(ctx, (start + k as usize) % len));
            }
            e2.fetch_max(ctx.now() - t0, Ordering::Relaxed);
        });
        let t = el.load(Ordering::Relaxed);
        cluster.shutdown(ctx);
        t
    })
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for (name, path) in [
        ("access_path/lock_free", AccessPath::LockFree),
        ("access_path/lock_based", AccessPath::LockBased),
    ] {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let mut cfg = ClusterConfig::with_nodes(2);
                    cfg.access_path = path;
                    total += Duration::from_nanos(scan_elapsed(cfg, 4096));
                }
                total
            })
        });
    }

    for (name, prefetch) in [
        ("prefetch/off", 0usize),
        ("prefetch/depth2", 2),
        ("prefetch/depth8", 8),
    ] {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let mut cfg = ClusterConfig::with_nodes(2);
                    cfg.cache.prefetch_lines = prefetch;
                    total += Duration::from_nanos(scan_elapsed(cfg, 4096));
                }
                total
            })
        });
    }

    for (name, tx) in [("tx_threads/inline", false), ("tx_threads/dedicated", true)] {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let mut cfg = ClusterConfig::with_nodes(2);
                    cfg.tx_threads = tx;
                    total += Duration::from_nanos(scan_elapsed(cfg, 4096));
                }
                total
            })
        });
    }

    g.finish();
}

criterion_group! {
    name = benches;
    // Deterministic virtual-time samples have zero variance, which breaks
    // criterion's plot generation; disable plots.
    config = Criterion::default().without_plots();
    targets = bench_ablations
}
criterion_main!(benches);
