//! Criterion benches, one per evaluation figure/table, at reduced scale.
//!
//! Each iteration runs the deterministic simulation and reports the
//! *virtual* duration via `iter_custom`, so `cargo bench` tracks the same
//! quantity the figure binaries print (host time is irrelevant and the
//! variance is zero by construction). The full paper-scale tables come
//! from the `fig*` binaries.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use darray_bench::graphs::{graph_cell, Algo, GraphSys};
use darray_bench::kvsbench::{kvs_ycsb, KvSys};
use darray_bench::micro::{micro, Op, Pattern, System};
use darray_bench::operate::zipf_update;

fn virtual_bench(
    g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    name: &str,
    mut f: impl FnMut() -> u64,
) {
    g.bench_function(name, |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += Duration::from_nanos(f());
            }
            total
        })
    });
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    // Figure 1: sequential-read latency comparison (distributed).
    virtual_bench(&mut g, "fig01/darray_seq_read_3n", || {
        micro(
            System::DArray,
            Op::Read,
            Pattern::Sequential,
            3,
            1,
            4096,
            8192,
        )
        .elapsed
    });
    virtual_bench(&mut g, "fig01/gam_seq_read_3n", || {
        micro(System::Gam, Op::Read, Pattern::Sequential, 3, 1, 4096, 8192).elapsed
    });
    virtual_bench(&mut g, "fig01/bcl_seq_read_3n", || {
        micro(System::Bcl, Op::Read, Pattern::Sequential, 3, 1, 4096, 512).elapsed
    });

    // Figure 12: intra-node thread scaling (4 threads, 3 nodes).
    virtual_bench(&mut g, "fig12/darray_read_4t", || {
        micro(
            System::DArray,
            Op::Read,
            Pattern::Sequential,
            3,
            4,
            4096,
            4096,
        )
        .elapsed
    });
    virtual_bench(&mut g, "fig12/gam_read_4t", || {
        micro(System::Gam, Op::Read, Pattern::Sequential, 3, 4, 4096, 4096).elapsed
    });

    // Figure 13: inter-node scaling (4 nodes, weak-scaled array).
    virtual_bench(&mut g, "fig13/darray_write_4n", || {
        micro(
            System::DArray,
            Op::Write,
            Pattern::Sequential,
            4,
            1,
            4096,
            4096,
        )
        .elapsed
    });
    virtual_bench(&mut g, "fig13/darray_operate_4n", || {
        micro(
            System::DArray,
            Op::Operate,
            Pattern::Sequential,
            4,
            1,
            4096,
            4096,
        )
        .elapsed
    });

    // Figure 14: Operate vs WLock+Read+Write under Zipf contention.
    virtual_bench(&mut g, "fig14/operate_3n", || {
        zipf_update(3, 8192, 2000, true).elapsed
    });
    virtual_bench(&mut g, "fig14/lock_3n", || {
        zipf_update(3, 8192, 500, false).elapsed
    });

    // Figure 15: the Pin interface.
    virtual_bench(&mut g, "fig15/pin_seq_read_3n", || {
        micro(
            System::DArrayPin,
            Op::Read,
            Pattern::Sequential,
            3,
            1,
            4096,
            8192,
        )
        .elapsed
    });

    // Figure 16: graph engines on a small R-MAT graph.
    virtual_bench(&mut g, "fig16/pr_darray_2n", || {
        graph_cell(GraphSys::DArray, Algo::PageRank, 2, 11, 4, 2)
    });
    virtual_bench(&mut g, "fig16/pr_gemini_2n", || {
        graph_cell(GraphSys::Gemini, Algo::PageRank, 2, 11, 4, 2)
    });
    virtual_bench(&mut g, "fig16/cc_darraypin_2n", || {
        graph_cell(GraphSys::DArrayPin, Algo::Cc, 2, 11, 4, 2)
    });

    // Figure 17: KVS under YCSB.
    virtual_bench(&mut g, "fig17/kvs_darray_get100", || {
        kvs_ycsb(KvSys::DArray, 2, 1, 1.0, 256, 300).elapsed
    });
    virtual_bench(&mut g, "fig17/kvs_gam_get100", || {
        kvs_ycsb(KvSys::Gam, 2, 1, 1.0, 256, 300).elapsed
    });

    // Figure 18: random access under cache thrash.
    virtual_bench(&mut g, "fig18/darray_rand_read_3n", || {
        micro(
            System::DArray,
            Op::Read,
            Pattern::Random,
            3,
            1,
            65_536,
            1_500,
        )
        .elapsed
    });

    g.finish();
}

criterion_group! {
    name = benches;
    // Deterministic virtual-time samples have zero variance, which breaks
    // criterion's plot generation; disable plots.
    config = Criterion::default().without_plots();
    targets = bench_figures
}
criterion_main!(benches);
