//! Host-time microbenchmarks of the building blocks (these measure real
//! wall time of the implementation, not simulated time): RNG, Zipfian
//! sampling, R-MAT generation, slab allocation, entry packing, and the
//! simulator's scheduling primitives.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use darray_kvs::{Entry, SlabAllocator};
use dsim::{Mailbox, Sim, SimConfig};
use workloads::{Rng, Zipfian};

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    g.bench_function("rng/next_u64", |b| {
        let mut r = Rng::new(1);
        b.iter(|| black_box(r.next_u64()));
    });

    g.bench_function("zipf/next_theta_0.99", |b| {
        let z = Zipfian::new(1 << 20);
        let mut r = Rng::new(2);
        b.iter(|| black_box(z.next(&mut r)));
    });

    g.bench_function("zipf/next_scrambled", |b| {
        let z = Zipfian::new(1 << 20);
        let mut r = Rng::new(3);
        b.iter(|| black_box(z.next_scrambled(&mut r)));
    });

    g.bench_function("rmat/scale12_ef4", |b| {
        b.iter(|| black_box(darray_graph::rmat(12, 4, 7).edges.len()));
    });

    g.bench_function("slab/alloc_free", |b| {
        let mut s = SlabAllocator::new(0, 1 << 24);
        b.iter(|| {
            let off = s.alloc(100).unwrap();
            s.free(off, 100);
            black_box(off)
        });
    });

    g.bench_function("kvs/entry_pack_unpack", |b| {
        b.iter(|| {
            let e = Entry::pack(black_box(0xAB), black_box(512), black_box(123_456));
            black_box((e.tag(), e.size(), e.offset()))
        });
    });

    g.bench_function("dsim/spawn_join", |b| {
        b.iter(|| {
            Sim::new(SimConfig::default()).run(|ctx| {
                let h = ctx.spawn("w", |c| c.charge(100));
                h.join(ctx);
                black_box(ctx.now())
            })
        });
    });

    g.bench_function("dsim/mailbox_roundtrip", |b| {
        b.iter(|| {
            Sim::new(SimConfig::default()).run(|ctx| {
                let mb: Mailbox<u64> = Mailbox::new("b");
                let tx = mb.clone();
                let h = ctx.spawn("tx", move |c| {
                    for i in 0..16 {
                        tx.send(c, i, 100);
                    }
                });
                let mut sum = 0;
                for _ in 0..16 {
                    sum += mb.recv(ctx);
                }
                h.join(ctx);
                black_box(sum)
            })
        });
    });

    g.finish();
}

criterion_group! {
    name = benches;
    // Deterministic virtual-time samples have zero variance, which breaks
    // criterion's plot generation; disable plots.
    config = Criterion::default().without_plots();
    targets = bench_primitives
}
criterion_main!(benches);
