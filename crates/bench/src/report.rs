//! Table formatting and scalability helpers for the figure binaries.

/// Print a markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for r in rows {
        println!("| {} |", r.join(" | "));
    }
}

/// The paper's scalability ratio: `T(n_max) / (T(n_min) * n_max / n_min)`,
/// i.e. the fraction of perfect scaling retained at the largest node count.
pub fn scalability(points: &[(usize, f64)]) -> f64 {
    assert!(points.len() >= 2);
    let (n0, t0) = points[0];
    let (n1, t1) = *points.last().unwrap();
    (t1 / t0) / (n1 as f64 / n0 as f64)
}

/// Format a float to 3 significant-ish digits.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalability_of_perfect_scaling_is_one() {
        let pts = [(1, 10.0), (2, 20.0), (4, 40.0)];
        assert!((scalability(&pts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scalability_of_flat_throughput_decays() {
        let pts = [(1, 10.0), (4, 10.0)];
        assert!((scalability(&pts) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(123.4), "123");
        assert_eq!(fmt(3.146), "3.15");
        assert_eq!(fmt(0.1234), "0.1234");
    }
}
