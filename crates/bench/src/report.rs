//! Table formatting, scalability helpers and the BENCH_*.json
//! protocol-traffic reports for the figure binaries.

use std::io::Write;
use std::path::PathBuf;

use darray::{Cluster, NodeStatsSnapshot};

/// Print a markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for r in rows {
        println!("| {} |", r.join(" | "));
    }
}

/// The paper's scalability ratio: `T(n_max) / (T(n_min) * n_max / n_min)`,
/// i.e. the fraction of perfect scaling retained at the largest node count.
pub fn scalability(points: &[(usize, f64)]) -> f64 {
    assert!(points.len() >= 2);
    let (n0, t0) = points[0];
    let (n1, t1) = *points.last().unwrap();
    (t1 / t0) / (n1 as f64 / n0 as f64)
}

/// Format a float to 3 significant-ish digits.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Cluster-wide protocol message traffic, summed over nodes from the
/// per-transition counters the protocol machines emit (`NodeStats`).
/// This is the coherence cost behind a benchmark's headline number: a
/// workload whose throughput regresses while its `invalidations`/`recalls`
/// climb is suffering protocol ping-pong, not compute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolTraffic {
    /// Chunk fills sent by home nodes (shared + exclusive).
    pub fills: u64,
    /// Invalidation requests sent to sharers.
    pub invalidations: u64,
    /// Recall/downgrade messages honored by owners.
    pub recalls: u64,
    /// Dirty-data writebacks to home.
    pub writebacks: u64,
    /// Combined-operand flushes to home.
    pub operand_flushes: u64,
    /// Remote operand buffers reduced into a home subarray.
    pub operated_reductions: u64,
    /// Cachelines reclaimed by the watermark eviction scan.
    pub evictions: u64,
    /// Structured protocol state transitions (home + cache machines).
    pub transitions: u64,
    /// Sharer/wait-set slots pruned from directories by peer death.
    pub sharers_pruned: u64,
    /// Operated epochs closed by abort because a contributor died.
    pub epochs_aborted: u64,
    /// Locks reclaimed from dead holders (and waiter slots dropped).
    pub orphaned_locks_reclaimed: u64,
    /// Peers that entered the Suspected state (retry exhaustion).
    pub suspicions: u64,
    /// Suspicions withdrawn because a quorum poll or a fresh lease proved
    /// the peer alive (parked traffic was replayed, nothing discarded).
    pub refutations: u64,
    /// Suspicions promoted to Dead by a quorum of the membership view.
    pub confirmed_deaths: u64,
    /// Highest membership-view epoch reached on any node (a gauge — taken
    /// as the max over nodes, not a sum).
    pub membership_epoch: u64,
    /// Dirty flushes persisted to the durable chunk store before their
    /// protocol acknowledgement (zero when `durability.policy` is `None`).
    pub flush_persists: u64,
    /// Durable-log records replayed while opening the store at bring-up.
    pub log_replays: u64,
    /// Distinct chunk images recovered from the durable log at bring-up.
    pub recovered_chunks: u64,
    /// Bytes held in the durable chunk logs, summed over nodes (zero when
    /// `durability.policy` is `None`).
    pub log_bytes: u64,
    /// Bytes of the newest durable checkpoint sidecars, summed over nodes.
    pub checkpoint_bytes: u64,
    /// Checkpoints taken by the chunk stores (periodic + on-demand).
    pub compactions: u64,
    /// Log records dropped by compaction truncation, summed over nodes.
    pub truncated_records: u64,
    /// Chunks handed to a new home by committed migrations (elastic mode).
    pub migrations_out: u64,
    /// Chunk migrations adopted as the new authoritative home.
    pub migrations_in: u64,
    /// Requests parked behind a migration fence and replayed after it.
    pub parked_replays: u64,
    /// Transport bytes posted to the wire, summed over nodes (payload plus
    /// backend framing; backend-dependent, unlike the protocol counters).
    pub bytes_tx: u64,
    /// Transport bytes received from the wire, summed over nodes.
    pub bytes_rx: u64,
    /// Transport frames (SENDs + one-sided WRITEs) posted, summed.
    pub frames: u64,
    /// Transport completion events observed, summed.
    pub completions: u64,
    /// Egress flushes committed by the transports (doorbell rings; always
    /// `frames == tx_flushes + frames_coalesced`), summed.
    pub tx_flushes: u64,
    /// Flushes that carried two or more frames, summed.
    pub doorbell_batches: u64,
    /// Frames that rode an already-open batch instead of ringing their own
    /// doorbell, summed.
    pub frames_coalesced: u64,
    /// Per-link egress-ring high-water mark in frames (a gauge — taken as
    /// the max over nodes, not a sum).
    pub ring_hwm: u64,
}

impl ProtocolTraffic {
    /// Accumulate one node's counters.
    pub fn add(&mut self, s: &NodeStatsSnapshot) {
        self.fills += s.fills;
        self.invalidations += s.invalidations;
        self.recalls += s.recalls;
        self.writebacks += s.writebacks;
        self.operand_flushes += s.operand_flushes;
        self.operated_reductions += s.operated_reductions;
        self.evictions += s.evictions;
        self.transitions += s.transitions;
        self.sharers_pruned += s.sharers_pruned;
        self.epochs_aborted += s.epochs_aborted;
        self.orphaned_locks_reclaimed += s.orphaned_locks_reclaimed;
        self.suspicions += s.suspicions;
        self.refutations += s.refutations;
        self.confirmed_deaths += s.confirmed_deaths;
        self.membership_epoch = self.membership_epoch.max(s.membership_epoch);
        self.flush_persists += s.flush_persists;
        self.log_replays += s.log_replays;
        self.recovered_chunks += s.recovered_chunks;
        self.log_bytes += s.log_bytes;
        self.checkpoint_bytes += s.checkpoint_bytes;
        self.compactions += s.compactions;
        self.truncated_records += s.truncated_records;
        self.migrations_out += s.migrations_out;
        self.migrations_in += s.migrations_in;
        self.parked_replays += s.parked_replays;
        self.bytes_tx += s.bytes_tx;
        self.bytes_rx += s.bytes_rx;
        self.frames += s.frames;
        self.completions += s.completions;
        self.tx_flushes += s.tx_flushes;
        self.doorbell_batches += s.doorbell_batches;
        self.frames_coalesced += s.frames_coalesced;
        self.ring_hwm = self.ring_hwm.max(s.ring_hwm);
    }

    /// Sum the counters of every node in a cluster (call before shutdown).
    pub fn collect(cluster: &Cluster) -> Self {
        let mut t = Self::default();
        for n in 0..cluster.config().nodes {
            t.add(&cluster.stats(n));
        }
        t
    }

    /// The JSON object for one BENCH_*.json section.
    pub fn json(&self) -> String {
        format!(
            "{{\"fills\":{},\"invalidations\":{},\"recalls\":{},\"writebacks\":{},\
             \"operand_flushes\":{},\"operated_reductions\":{},\"evictions\":{},\
             \"transitions\":{},\"sharers_pruned\":{},\"epochs_aborted\":{},\
             \"orphaned_locks_reclaimed\":{},\"suspicions\":{},\"refutations\":{},\
             \"confirmed_deaths\":{},\"membership_epoch\":{},\
             \"flush_persists\":{},\"log_replays\":{},\"recovered_chunks\":{},\
             \"log_bytes\":{},\"checkpoint_bytes\":{},\"compactions\":{},\
             \"truncated_records\":{},\
             \"migrations_out\":{},\"migrations_in\":{},\"parked_replays\":{},\
             \"bytes_tx\":{},\"bytes_rx\":{},\"frames\":{},\"completions\":{},\
             \"tx_flushes\":{},\"doorbell_batches\":{},\"frames_coalesced\":{},\
             \"ring_hwm\":{}}}",
            self.fills,
            self.invalidations,
            self.recalls,
            self.writebacks,
            self.operand_flushes,
            self.operated_reductions,
            self.evictions,
            self.transitions,
            self.sharers_pruned,
            self.epochs_aborted,
            self.orphaned_locks_reclaimed,
            self.suspicions,
            self.refutations,
            self.confirmed_deaths,
            self.membership_epoch,
            self.flush_persists,
            self.log_replays,
            self.recovered_chunks,
            self.log_bytes,
            self.checkpoint_bytes,
            self.compactions,
            self.truncated_records,
            self.migrations_out,
            self.migrations_in,
            self.parked_replays,
            self.bytes_tx,
            self.bytes_rx,
            self.frames,
            self.completions,
            self.tx_flushes,
            self.doorbell_batches,
            self.frames_coalesced,
            self.ring_hwm
        )
    }
}

/// Render the BENCH_*.json body: one protocol-traffic section per labelled
/// configuration.
pub fn render_bench_json(name: &str, sections: &[(String, ProtocolTraffic)]) -> String {
    render_bench_json_with_metrics(name, &[], sections)
}

/// [`render_bench_json`] plus a `metrics` object of headline numbers
/// (throughput, per-pool occupancy, …). Virtual-time determinism makes
/// the floats — and hence the file — byte-identical across runs; the
/// `protocol_diff` harness skips the object, so metrics never trip the
/// 0% counter threshold. With no metrics, the key is omitted entirely
/// and the output is byte-identical to the pre-metrics format.
pub fn render_bench_json_with_metrics(
    name: &str,
    metrics: &[(String, f64)],
    sections: &[(String, ProtocolTraffic)],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"bench\": \"{name}\",\n"));
    if !metrics.is_empty() {
        s.push_str("  \"metrics\": {\n");
        for (i, (label, v)) in metrics.iter().enumerate() {
            let comma = if i + 1 < metrics.len() { "," } else { "" };
            s.push_str(&format!("    \"{label}\": {v:.6}{comma}\n"));
        }
        s.push_str("  },\n");
    }
    s.push_str("  \"protocol_traffic\": {\n");
    for (i, (label, t)) in sections.iter().enumerate() {
        let comma = if i + 1 < sections.len() { "," } else { "" };
        s.push_str(&format!("    \"{label}\": {}{comma}\n", t.json()));
    }
    s.push_str("  }\n}\n");
    s
}

/// Write `BENCH_<name>.json` into the current directory and return its
/// path. Virtual-time determinism makes the file byte-identical across
/// runs of the same binary.
pub fn write_bench_json(
    name: &str,
    sections: &[(String, ProtocolTraffic)],
) -> std::io::Result<PathBuf> {
    write_bench_json_with_metrics(name, &[], sections)
}

/// [`write_bench_json`] with a metrics object.
pub fn write_bench_json_with_metrics(
    name: &str,
    metrics: &[(String, f64)],
    sections: &[(String, ProtocolTraffic)],
) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(render_bench_json_with_metrics(name, metrics, sections).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalability_of_perfect_scaling_is_one() {
        let pts = [(1, 10.0), (2, 20.0), (4, 40.0)];
        assert!((scalability(&pts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scalability_of_flat_throughput_decays() {
        let pts = [(1, 10.0), (4, 10.0)];
        assert!((scalability(&pts) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(123.4), "123");
        assert_eq!(fmt(3.146), "3.15");
        assert_eq!(fmt(0.1234), "0.1234");
    }

    #[test]
    fn protocol_traffic_json_names_every_counter() {
        let t = ProtocolTraffic {
            fills: 1,
            invalidations: 2,
            recalls: 3,
            writebacks: 4,
            operand_flushes: 5,
            operated_reductions: 6,
            evictions: 7,
            transitions: 8,
            sharers_pruned: 9,
            epochs_aborted: 10,
            orphaned_locks_reclaimed: 11,
            suspicions: 12,
            refutations: 13,
            confirmed_deaths: 14,
            membership_epoch: 15,
            flush_persists: 16,
            log_replays: 17,
            recovered_chunks: 18,
            log_bytes: 26,
            checkpoint_bytes: 27,
            compactions: 28,
            truncated_records: 29,
            migrations_out: 23,
            migrations_in: 24,
            parked_replays: 25,
            bytes_tx: 19,
            bytes_rx: 20,
            frames: 21,
            completions: 22,
            tx_flushes: 30,
            doorbell_batches: 31,
            frames_coalesced: 32,
            ring_hwm: 33,
        };
        let j = t.json();
        for key in [
            "\"fills\":1",
            "\"invalidations\":2",
            "\"recalls\":3",
            "\"writebacks\":4",
            "\"operand_flushes\":5",
            "\"operated_reductions\":6",
            "\"evictions\":7",
            "\"transitions\":8",
            "\"sharers_pruned\":9",
            "\"epochs_aborted\":10",
            "\"orphaned_locks_reclaimed\":11",
            "\"suspicions\":12",
            "\"refutations\":13",
            "\"confirmed_deaths\":14",
            "\"membership_epoch\":15",
            "\"flush_persists\":16",
            "\"log_replays\":17",
            "\"recovered_chunks\":18",
            "\"log_bytes\":26",
            "\"checkpoint_bytes\":27",
            "\"compactions\":28",
            "\"truncated_records\":29",
            "\"migrations_out\":23",
            "\"migrations_in\":24",
            "\"parked_replays\":25",
            "\"bytes_tx\":19",
            "\"bytes_rx\":20",
            "\"frames\":21",
            "\"completions\":22",
            "\"tx_flushes\":30",
            "\"doorbell_batches\":31",
            "\"frames_coalesced\":32",
            "\"ring_hwm\":33",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn metrics_object_renders_and_empty_is_omitted() {
        let t = ProtocolTraffic::default();
        let body = render_bench_json_with_metrics(
            "unit",
            &[("read_rt2_mops".to_string(), 12.5)],
            &[("read_rt2".to_string(), t)],
        );
        assert!(body.contains("\"metrics\": {"));
        assert!(body.contains("\"read_rt2_mops\": 12.500000"));
        // No metrics -> byte-identical to the legacy format.
        let legacy = render_bench_json("unit", &[("read_rt2".to_string(), t)]);
        let via_full = render_bench_json_with_metrics("unit", &[], &[("read_rt2".to_string(), t)]);
        assert_eq!(legacy, via_full);
        assert!(!legacy.contains("metrics"));
    }

    #[test]
    fn bench_json_body_shape() {
        let t = ProtocolTraffic {
            fills: 42,
            ..Default::default()
        };
        let body = render_bench_json(
            "unit",
            &[
                ("seq_read".to_string(), t),
                ("seq_write".to_string(), ProtocolTraffic::default()),
            ],
        );
        assert!(body.contains("\"bench\": \"unit\""));
        assert!(body.contains("\"seq_read\""));
        assert!(body.contains("\"fills\":42"));
        assert!(body.trim_end().ends_with('}'));
        assert_eq!(
            body.matches("\"fills\"").count(),
            2,
            "one object per section"
        );
    }
}
