//! Run every figure and table in sequence (the full evaluation). Set
//! `FIG_FAST=1` for a quick smoke pass. Individual binaries exist per
//! figure (`fig01` … `fig18`, `table1`, `ablations`).

use std::process::Command;

fn main() {
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("bin dir");
    for bin in [
        "table1",
        "fig01",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "ablations",
    ] {
        println!("\n========================= {bin} =========================");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
