//! Figure 17: total KVS throughput (Kops/s) on six nodes under YCSB with a
//! Zipfian(0.99) key distribution, varying thread count and get ratio.

use darray_bench::kvsbench::{kvs_ycsb, KvSys};
use darray_bench::report::{fmt, print_table, write_bench_json};

fn main() {
    let fast = darray_bench::fast_mode();
    let nodes = if fast { 2 } else { 6 };
    let records: u64 = if fast { 512 } else { 2_048 };
    let ops: u64 = if fast { 300 } else { 1_200 };
    let threads: &[usize] = if fast { &[1] } else { &[1, 2, 4] };
    let ratios = [1.0f64, 0.95, 0.5];

    let mut traffic = Vec::new();
    for &get_ratio in &ratios {
        let mut rows = Vec::new();
        for &t in threads {
            let d = kvs_ycsb(KvSys::DArray, nodes, t, get_ratio, records, ops);
            let g = kvs_ycsb(KvSys::Gam, nodes, t, get_ratio, records, ops);
            traffic.push((
                format!("get{:02.0}_t{t}_{nodes}n", get_ratio * 100.0),
                d.protocol,
            ));
            rows.push(vec![
                t.to_string(),
                fmt(d.kops()),
                fmt(g.kops()),
                fmt(d.kops() / g.kops()),
            ]);
        }
        print_table(
            &format!(
                "Figure 17 — KVS YCSB throughput, get ratio {:.0}% ({} nodes, Kops/s)",
                get_ratio * 100.0,
                nodes
            ),
            &["threads/node", "DArray-KVS", "GAM-KVS", "speedup"],
            &rows,
        );
    }
    // Doorbell-batching sweep (DESIGN.md §13): the put-heavy cell again
    // under explicit batching knobs, so the BENCH json records how egress
    // coalescing responds. batch1 disables coalescing (every frame rings
    // its own doorbell); batch16_sig8 pairs the default ring depth with
    // selective signaling every 8th frame.
    let sweep_t = *threads.last().unwrap();
    let mut sweep_rows = Vec::new();
    for (label, batch) in [
        (
            "batch1",
            darray::BatchConfig {
                send_batch_max: 1,
                flush_every_frames: None,
            },
        ),
        (
            "batch16_sig8",
            darray::BatchConfig {
                send_batch_max: 16,
                flush_every_frames: Some(8),
            },
        ),
    ] {
        darray_bench::set_batch_override(Some(batch));
        let d = kvs_ycsb(KvSys::DArray, nodes, sweep_t, 0.5, records, ops);
        sweep_rows.push(vec![
            label.to_string(),
            d.protocol.frames.to_string(),
            d.protocol.tx_flushes.to_string(),
            d.protocol.doorbell_batches.to_string(),
            d.protocol.frames_coalesced.to_string(),
        ]);
        traffic.push((format!("{label}_get50_t{sweep_t}_{nodes}n"), d.protocol));
    }
    darray_bench::set_batch_override(None);
    print_table(
        &format!("Figure 17 — doorbell-batching sweep, get ratio 50% ({nodes} nodes)"),
        &[
            "batch",
            "frames",
            "tx_flushes",
            "doorbell_batches",
            "frames_coalesced",
        ],
        &sweep_rows,
    );
    println!("\npaper: 20x-41x at 100% gets; 2x-3.8x under put-heavy contention; DArray-KVS also scales better intra-node (0.63-0.96 vs 0.48-0.64).");
    match write_bench_json("fig17", &traffic) {
        Ok(p) => println!("protocol traffic written to {}", p.display()),
        Err(e) => eprintln!("could not write BENCH_fig17.json: {e}"),
    }
}
