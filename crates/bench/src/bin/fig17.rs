//! Figure 17: total KVS throughput (Kops/s) on six nodes under YCSB with a
//! Zipfian(0.99) key distribution, varying thread count and get ratio.

use darray_bench::kvsbench::{kvs_ycsb, KvSys};
use darray_bench::report::{fmt, print_table, write_bench_json};

fn main() {
    let fast = darray_bench::fast_mode();
    let nodes = if fast { 2 } else { 6 };
    let records: u64 = if fast { 512 } else { 2_048 };
    let ops: u64 = if fast { 300 } else { 1_200 };
    let threads: &[usize] = if fast { &[1] } else { &[1, 2, 4] };
    let ratios = [1.0f64, 0.95, 0.5];

    let mut traffic = Vec::new();
    for &get_ratio in &ratios {
        let mut rows = Vec::new();
        for &t in threads {
            let d = kvs_ycsb(KvSys::DArray, nodes, t, get_ratio, records, ops);
            let g = kvs_ycsb(KvSys::Gam, nodes, t, get_ratio, records, ops);
            traffic.push((
                format!("get{:02.0}_t{t}_{nodes}n", get_ratio * 100.0),
                d.protocol,
            ));
            rows.push(vec![
                t.to_string(),
                fmt(d.kops()),
                fmt(g.kops()),
                fmt(d.kops() / g.kops()),
            ]);
        }
        print_table(
            &format!(
                "Figure 17 — KVS YCSB throughput, get ratio {:.0}% ({} nodes, Kops/s)",
                get_ratio * 100.0,
                nodes
            ),
            &["threads/node", "DArray-KVS", "GAM-KVS", "speedup"],
            &rows,
        );
    }
    println!("\npaper: 20x-41x at 100% gets; 2x-3.8x under put-heavy contention; DArray-KVS also scales better intra-node (0.63-0.96 vs 0.48-0.64).");
    match write_bench_json("fig17", &traffic) {
        Ok(p) => println!("protocol traffic written to {}", p.display()),
        Err(e) => eprintln!("could not write BENCH_fig17.json: {e}"),
    }
}
