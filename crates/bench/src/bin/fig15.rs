//! Figure 15: DArray vs DArray-Pin sequential 8-byte read throughput
//! (paper: Pin wins by 1.8×–2.9×).

use darray_bench::micro::{micro, Op, Pattern, System};
use darray_bench::report::{fmt, print_table};

fn main() {
    let fast = darray_bench::fast_mode();
    let elems_per_node = if fast { 4_096 } else { 8_192 };
    let ops: u64 = if fast { 8_192 } else { 50_000 };
    let node_counts: &[usize] = if fast {
        &[1, 3]
    } else {
        &[1, 2, 4, 6, 8, 10, 12]
    };

    let mut rows = Vec::new();
    for &n in node_counts {
        let plain = micro(
            System::DArray,
            Op::Read,
            Pattern::Sequential,
            n,
            1,
            elems_per_node,
            ops,
        );
        let pin = micro(
            System::DArrayPin,
            Op::Read,
            Pattern::Sequential,
            n,
            1,
            elems_per_node,
            ops,
        );
        rows.push(vec![
            n.to_string(),
            fmt(plain.mops()),
            fmt(pin.mops()),
            fmt(pin.mops() / plain.mops()),
        ]);
    }
    print_table(
        "Figure 15 — sequential 8-byte read throughput (Mops/s)",
        &["nodes", "DArray", "DArray-Pin", "speedup"],
        &rows,
    );
    println!("\npaper: DArray-Pin outperforms DArray by 1.8x to 2.9x.");
}
