//! Figure 16: running time of PageRank and Connected Components on an
//! R-MAT graph across DArray, DArray-Pin, GAM and Gemini, with scalability
//! ratios for DArray-Pin and Gemini.
//!
//! The paper runs rMat24 (2²⁴ vertices, 2²⁶ edges) on up to 12 nodes with
//! all cores; this harness defaults to rMat14 (set `FIG16_SCALE` to go
//! bigger) — the *relative* behaviour is scale-invariant (see DESIGN.md §2).

use darray_bench::graphs::{graph_cell_with_traffic, Algo, GraphSys};
use darray_bench::report::{fmt, print_table, scalability, write_bench_json};

fn main() {
    let fast = darray_bench::fast_mode();
    let scale: u32 = std::env::var("FIG16_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fast { 11 } else { 14 });
    let iters = if fast { 2 } else { 5 };
    let node_counts: &[usize] = if fast { &[1, 2] } else { &[1, 2, 4, 8, 12] };
    let systems = [
        GraphSys::DArray,
        GraphSys::DArrayPin,
        GraphSys::Gam,
        GraphSys::Gemini,
    ];

    let mut traffic = Vec::new();
    for algo in [Algo::PageRank, Algo::Cc] {
        let mut rows = Vec::new();
        let mut speed: Vec<Vec<(usize, f64)>> = vec![Vec::new(); systems.len()];
        for &n in node_counts {
            let mut row = vec![n.to_string()];
            for (si, &sys) in systems.iter().enumerate() {
                // GAM's ownership ping-pong makes large-node cells extremely
                // slow (it is already 3+ orders of magnitude behind by 8
                // nodes); skip the largest point.
                if sys == GraphSys::Gam && n > 8 {
                    row.push("-".to_string());
                    continue;
                }
                let (t, tr) = graph_cell_with_traffic(sys, algo, n, scale, 4, iters);
                if let Some(tr) = tr {
                    traffic.push((format!("{}_{}_{n}n", sys.label(), algo.label()), tr));
                }
                let ms = t as f64 / 1e6;
                speed[si].push((n, 1.0 / ms)); // "throughput" = 1/time
                row.push(fmt(ms));
            }
            rows.push(row);
        }
        let mut ratio_row = vec!["scalability".to_string()];
        for s in &speed {
            ratio_row.push(fmt(scalability(s)));
        }
        rows.push(ratio_row);
        print_table(
            &format!(
                "Figure 16 — {} running time on rMat{scale} (ms, virtual)",
                algo.label()
            ),
            &["nodes", "DArray", "DArray-Pin", "GAM", "Gemini"],
            &rows,
        );
    }
    println!("\npaper: DArray 2-3 orders of magnitude faster than GAM; Gemini wins on 1 node, DArray-Pin overtakes as nodes grow (1.3x PR / 2.1x CC), with scalability 0.55/0.74 vs Gemini's 0.28/0.09.");
    match write_bench_json("fig16", &traffic) {
        Ok(p) => println!("protocol traffic written to {}", p.display()),
        Err(e) => eprintln!("could not write BENCH_fig16.json: {e}"),
    }
}
