//! Figure 14: throughput and latency of Zipfian(0.99) `write_add` using the
//! Operate interface vs WLock+Read+Write, one thread per node.

use darray_bench::operate::zipf_update;
use darray_bench::report::{fmt, print_table, write_bench_json};

fn main() {
    let fast = darray_bench::fast_mode();
    let len = if fast { 16_384 } else { 65_536 };
    let op_ops: u64 = if fast { 2_000 } else { 10_000 };
    let lk_ops: u64 = if fast { 500 } else { 3_000 };
    let node_counts: &[usize] = if fast { &[1, 3] } else { &[1, 2, 4, 6, 8] };

    let mut thr = Vec::new();
    let mut lat = Vec::new();
    let mut traffic = Vec::new();
    for &n in node_counts {
        let o = zipf_update(n, len, op_ops, true);
        let l = zipf_update(n, len, lk_ops, false);
        traffic.push((format!("operate_{n}n"), o.protocol));
        traffic.push((format!("lock_{n}n"), l.protocol));
        thr.push(vec![n.to_string(), fmt(o.mops()), fmt(l.mops())]);
        lat.push(vec![
            n.to_string(),
            fmt(o.avg_latency_ns(op_ops)),
            fmt(l.avg_latency_ns(lk_ops)),
        ]);
    }
    print_table(
        "Figure 14a — zipfian write_add throughput (Mops/s)",
        &["nodes", "Operate", "WLock+Read+Write"],
        &thr,
    );
    print_table(
        "Figure 14b — zipfian write_add latency (ns/op)",
        &["nodes", "Operate", "WLock+Read+Write"],
        &lat,
    );
    println!("\npaper: Operate scales with nodes at flat latency; the lock-based scheme's throughput stalls and its latency grows sharply (exclusive-ownership contention).");
    match write_bench_json("fig14", &traffic) {
        Ok(p) => println!("protocol traffic written to {}", p.display()),
        Err(e) => eprintln!("could not write BENCH_fig14.json: {e}"),
    }
}
