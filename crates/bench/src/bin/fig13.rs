//! Figure 13: sequential Read / Write / Operate throughput (Mops/s) with
//! increasing node counts (one thread per node, array weak-scaled with the
//! node count), plus the scalability ratios the paper quotes (§6.2:
//! DArray 0.82/0.76/0.87, GAM 0.72/0.68/0.73, BCL 0.52/0.52).

use darray_bench::micro::{micro, Op, Pattern, System};
use darray_bench::report::{fmt, print_table, scalability};

fn main() {
    let fast = darray_bench::fast_mode();
    let elems_per_node = if fast { 4_096 } else { 8_192 };
    let ops: u64 = if fast { 4_096 } else { 40_000 };
    let bcl_ops: u64 = if fast { 512 } else { 2_500 };
    let node_counts: &[usize] = if fast {
        &[1, 3]
    } else {
        &[1, 2, 3, 4, 6, 8, 10, 12]
    };

    for op in [Op::Read, Op::Write, Op::Operate] {
        let mut rows = Vec::new();
        let mut pts: [Vec<(usize, f64)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for &n in node_counts {
            let d = micro(
                System::DArray,
                op,
                Pattern::Sequential,
                n,
                1,
                elems_per_node,
                ops,
            );
            let g = micro(
                System::Gam,
                op,
                Pattern::Sequential,
                n,
                1,
                elems_per_node,
                ops,
            );
            let b = if op == Op::Operate {
                None
            } else {
                Some(micro(
                    System::Bcl,
                    op,
                    Pattern::Sequential,
                    n,
                    1,
                    elems_per_node,
                    bcl_ops,
                ))
            };
            pts[0].push((n, d.mops()));
            pts[1].push((n, g.mops()));
            if let Some(bb) = b {
                pts[2].push((n, bb.mops()));
            }
            rows.push(vec![
                n.to_string(),
                fmt(d.mops()),
                fmt(g.mops()),
                b.map(|x| fmt(x.mops())).unwrap_or_else(|| "-".into()),
            ]);
        }
        let ratios = vec![vec![
            "scalability".to_string(),
            fmt(scalability(&pts[0])),
            fmt(scalability(&pts[1])),
            // BCL's single-node run is all-local (no RMA at all), so its
            // scalability is measured from the first distributed point.
            if pts[2].len() < 3 {
                "-".to_string()
            } else {
                fmt(scalability(&pts[2][1..]))
            },
        ]];
        let mut all = rows;
        all.extend(ratios);
        print_table(
            &format!(
                "Figure 13{} — sequential {} throughput vs nodes (Mops/s), 1 thread/node",
                match op {
                    Op::Read => "a",
                    Op::Write => "b",
                    Op::Operate => "c",
                },
                op.label()
            ),
            &["nodes", "DArray", "GAM", "BCL"],
            &all,
        );
    }
    println!(
        "\npaper scalability ratios: DArray 0.82/0.76/0.87, GAM 0.72/0.68/0.73, BCL 0.52/0.52."
    );
}
