//! Figure 13: sequential Read / Write / Operate throughput (Mops/s) with
//! increasing node counts (one thread per node, array weak-scaled with the
//! node count), plus the scalability ratios the paper quotes (§6.2:
//! DArray 0.82/0.76/0.87, GAM 0.72/0.68/0.73, BCL 0.52/0.52).
//!
//! DArray cells sweep `runtime_threads ∈ {1, 2, 4}` alongside the node
//! count; throughput lands in the `metrics` object and coherence traffic
//! in the `protocol_traffic` sections of `BENCH_fig13.json`.

use darray_bench::micro::{micro_rt, Op, Pattern, System};
use darray_bench::report::{
    fmt, print_table, scalability, write_bench_json_with_metrics, ProtocolTraffic,
};

const RT_SWEEP: [usize; 3] = [1, 2, 4];

fn op_key(op: Op) -> &'static str {
    match op {
        Op::Read => "read",
        Op::Write => "write",
        Op::Operate => "operate",
    }
}

fn main() {
    let fast = darray_bench::fast_mode();
    let elems_per_node = if fast { 4_096 } else { 8_192 };
    let ops: u64 = if fast { 4_096 } else { 40_000 };
    let bcl_ops: u64 = if fast { 512 } else { 2_500 };
    let node_counts: &[usize] = if fast {
        &[1, 3]
    } else {
        &[1, 2, 3, 4, 6, 8, 10, 12]
    };

    let mut traffic: Vec<(String, ProtocolTraffic)> = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();

    for op in [Op::Read, Op::Write, Op::Operate] {
        let mut rows = Vec::new();
        // Scaling curves: one per DArray runtime-thread count, then GAM, BCL.
        let mut d_pts: Vec<Vec<(usize, f64)>> = vec![Vec::new(); RT_SWEEP.len()];
        let mut g_pts: Vec<(usize, f64)> = Vec::new();
        let mut b_pts: Vec<(usize, f64)> = Vec::new();
        for &n in node_counts {
            let mut d_cells = Vec::new();
            for (i, &rts) in RT_SWEEP.iter().enumerate() {
                let d = micro_rt(
                    System::DArray,
                    op,
                    Pattern::Sequential,
                    n,
                    1,
                    elems_per_node,
                    ops,
                    rts,
                );
                let label = format!("{}_n{n}_rt{rts}", op_key(op));
                metrics.push((format!("{label}_mops"), d.mops()));
                traffic.push((label, d.protocol));
                d_pts[i].push((n, d.mops()));
                d_cells.push(d.mops());
            }
            let g = micro_rt(
                System::Gam,
                op,
                Pattern::Sequential,
                n,
                1,
                elems_per_node,
                ops,
                1,
            );
            metrics.push((format!("{}_n{n}_gam_mops", op_key(op)), g.mops()));
            g_pts.push((n, g.mops()));
            let b = if op == Op::Operate {
                None
            } else {
                let b = micro_rt(
                    System::Bcl,
                    op,
                    Pattern::Sequential,
                    n,
                    1,
                    elems_per_node,
                    bcl_ops,
                    1,
                );
                metrics.push((format!("{}_n{n}_bcl_mops", op_key(op)), b.mops()));
                b_pts.push((n, b.mops()));
                Some(b)
            };
            let mut row = vec![n.to_string()];
            row.extend(d_cells.iter().map(|&m| fmt(m)));
            row.push(fmt(g.mops()));
            row.push(b.map(|x| fmt(x.mops())).unwrap_or_else(|| "-".into()));
            rows.push(row);
        }
        let ratios = vec![vec![
            "scalability".to_string(),
            fmt(scalability(&d_pts[0])),
            fmt(scalability(&d_pts[1])),
            fmt(scalability(&d_pts[2])),
            fmt(scalability(&g_pts)),
            // BCL's single-node run is all-local (no RMA at all), so its
            // scalability is measured from the first distributed point.
            if b_pts.len() < 3 {
                "-".to_string()
            } else {
                fmt(scalability(&b_pts[1..]))
            },
        ]];
        metrics.push((
            format!("{}_scalability_rt1", op_key(op)),
            scalability(&d_pts[0]),
        ));
        metrics.push((
            format!("{}_scalability_rt2", op_key(op)),
            scalability(&d_pts[1]),
        ));
        let mut all = rows;
        all.extend(ratios);
        print_table(
            &format!(
                "Figure 13{} — sequential {} throughput vs nodes (Mops/s), 1 thread/node",
                match op {
                    Op::Read => "a",
                    Op::Write => "b",
                    Op::Operate => "c",
                },
                op.label()
            ),
            &[
                "nodes",
                "DArray rt=1",
                "DArray rt=2",
                "DArray rt=4",
                "GAM",
                "BCL",
            ],
            &all,
        );
    }

    match write_bench_json_with_metrics("fig13", &metrics, &traffic) {
        Ok(p) => println!("\nprotocol traffic + throughput written to {}", p.display()),
        Err(e) => eprintln!("could not write BENCH_fig13.json: {e}"),
    }
    println!("paper scalability ratios: DArray 0.82/0.76/0.87, GAM 0.72/0.68/0.73, BCL 0.52/0.52.");
}
