//! Figure 18 (limitations): uniform-random Read / Write / Operate latency
//! (ns) with increasing node counts, one thread per node. With poor
//! locality the coherence protocol's fills/evictions dominate DArray and
//! GAM, while cache-less BCL stays flat at the RDMA round trip.

use darray_bench::micro::{micro, Op, Pattern, System};
use darray_bench::report::{fmt, print_table, write_bench_json};

fn main() {
    let fast = darray_bench::fast_mode();
    // Working set far beyond the cache so random access thrashes (§6.6).
    let elems_per_node = if fast { 65_536 } else { 262_144 };
    let ops: u64 = if fast { 2_000 } else { 8_000 };
    let bcl_ops: u64 = if fast { 500 } else { 2_000 };
    let node_counts: &[usize] = if fast { &[1, 3] } else { &[1, 2, 4, 6, 8] };

    let mut traffic = Vec::new();
    for op in [Op::Read, Op::Write, Op::Operate] {
        let mut rows = Vec::new();
        for &n in node_counts {
            let d = micro(
                System::DArray,
                op,
                Pattern::Random,
                n,
                1,
                elems_per_node,
                ops,
            );
            traffic.push((format!("{}_{n}n", op.label()), d.protocol));
            let g = micro(System::Gam, op, Pattern::Random, n, 1, elems_per_node, ops);
            let b = if op == Op::Operate {
                None
            } else {
                Some(micro(
                    System::Bcl,
                    op,
                    Pattern::Random,
                    n,
                    1,
                    elems_per_node,
                    bcl_ops,
                ))
            };
            rows.push(vec![
                n.to_string(),
                fmt(d.avg_latency_ns(ops)),
                fmt(g.avg_latency_ns(ops)),
                b.map(|x| fmt(x.avg_latency_ns(bcl_ops)))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        print_table(
            &format!(
                "Figure 18{} — uniform random {} latency (ns)",
                match op {
                    Op::Read => "a",
                    Op::Write => "b",
                    Op::Operate => "c",
                },
                op.label()
            ),
            &["nodes", "DArray", "GAM", "BCL"],
            &rows,
        );
    }
    // Doorbell-batching sweep (DESIGN.md §13): the write-thrash cell at the
    // largest node count under explicit batching knobs, recording how the
    // egress coalescing counters respond in BENCH json.
    let sweep_n = *node_counts.last().unwrap();
    let mut sweep_rows = Vec::new();
    for (label, batch) in [
        (
            "batch1",
            darray::BatchConfig {
                send_batch_max: 1,
                flush_every_frames: None,
            },
        ),
        (
            "batch16_sig8",
            darray::BatchConfig {
                send_batch_max: 16,
                flush_every_frames: Some(8),
            },
        ),
    ] {
        darray_bench::set_batch_override(Some(batch));
        let d = micro(
            System::DArray,
            Op::Write,
            Pattern::Random,
            sweep_n,
            1,
            elems_per_node,
            ops,
        );
        sweep_rows.push(vec![
            label.to_string(),
            d.protocol.frames.to_string(),
            d.protocol.tx_flushes.to_string(),
            d.protocol.doorbell_batches.to_string(),
            d.protocol.frames_coalesced.to_string(),
        ]);
        traffic.push((format!("{label}_write_{sweep_n}n"), d.protocol));
    }
    darray_bench::set_batch_override(None);
    print_table(
        &format!("Figure 18 — doorbell-batching sweep, random write ({sweep_n} nodes)"),
        &[
            "batch",
            "frames",
            "tx_flushes",
            "doorbell_batches",
            "frames_coalesced",
        ],
        &sweep_rows,
    );
    println!("\npaper: DArray/GAM latency grows with nodes (coherence + eviction overhead); BCL stays ≈2 µs; random writes cost more than reads (contention).");
    match write_bench_json("fig18", &traffic) {
        Ok(p) => println!("protocol traffic written to {}", p.display()),
        Err(e) => eprintln!("could not write BENCH_fig18.json: {e}"),
    }
}
