//! Protocol-traffic regression diff.
//!
//! Compares a checked-in baseline `BENCH_*.json` against a freshly
//! generated one and fails (exit code 1) when any protocol counter grew
//! beyond the allowed threshold. Because every figure binary runs in
//! deterministic virtual time, the JSON is byte-identical run-to-run: the
//! default threshold of 0% catches *any* change in coherence traffic —
//! an extra invalidation round, a lost fast-path hit, a recall storm —
//! before it shows up as a latency regression.
//!
//! ```text
//! protocol_diff <baseline.json> <current.json> [--threshold-pct <f>] [--abs-slack <n>]
//!               [--transport-pct <f>] [--update]
//! ```
//!
//! Rules:
//! - a protocol-counter increase beyond `baseline * (1 + pct/100) + slack`
//!   fails;
//! - the transport byte/frame counters (`bytes_tx`, `bytes_rx`, `frames`,
//!   `completions`) carry backend framing overhead, so they diff under
//!   their own *symmetric* band (`--transport-pct`, default 10%): leaving
//!   the band in either direction fails, drift inside it is a note;
//! - a section or counter present in the baseline but missing from the
//!   current file fails (instrumentation was dropped);
//! - protocol-counter decreases and brand-new counters are reported but
//!   pass (improvements and schema growth are fine).
//!
//! `--update` replaces the baseline with the current file (after checking
//! both parse) and exits 0 — the blessed way to regenerate baselines after
//! an intentional protocol change or a counter-schema extension, instead
//! of hand-editing JSON.
//!
//! The parser is hand-rolled for the restricted JSON the report writer
//! emits (string keys, nested objects, unsigned integers) — the harness
//! deliberately has no serde dependency.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// `section label -> counter name -> value`, in file order (BTreeMap for
/// stable report ordering).
type Traffic = BTreeMap<String, BTreeMap<String, u64>>;

/// Minimal recursive-descent scanner over the report-writer's JSON shape.
struct Scanner<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            s: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            let found = self.peek().map(|c| c as char);
            Err(format!(
                "expected '{}' at byte {} (found {:?})",
                b as char, self.pos, found
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while self.pos < self.s.len() && self.s[self.pos] != b'"' {
            if self.s[self.pos] == b'\\' {
                return Err(format!("escape sequences unsupported at byte {}", self.pos));
            }
            self.pos += 1;
        }
        if self.pos >= self.s.len() {
            return Err("unterminated string".to_string());
        }
        let out = String::from_utf8_lossy(&self.s[start..self.pos]).into_owned();
        self.pos += 1; // closing quote
        Ok(out)
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected number at byte {start}"));
        }
        String::from_utf8_lossy(&self.s[start..self.pos])
            .parse()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    /// A flat `{"name": 123, ...}` counter object.
    fn counters(&mut self) -> Result<BTreeMap<String, u64>, String> {
        let mut out = BTreeMap::new();
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            out.insert(key, self.number()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                other => return Err(format!("expected ',' or '}}' (found {other:?})")),
            }
        }
    }

    /// Skip a value we don't care about: a string, a number (including
    /// the floats of the `metrics` object), or a nested object of such
    /// values. Everything outside `protocol_traffic` goes through here.
    fn skip_value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'"') => self.string().map(|_| ()),
            Some(b'{') => {
                self.pos += 1;
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.string()?;
                    self.expect(b':')?;
                    self.skip_value()?;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        other => return Err(format!("expected ',' or '}}' (found {other:?})")),
                    }
                }
            }
            Some(c) if c.is_ascii_digit() || c == b'-' => {
                let start = self.pos;
                while self.pos < self.s.len()
                    && matches!(
                        self.s[self.pos],
                        b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E'
                    )
                {
                    self.pos += 1;
                }
                if start == self.pos {
                    return Err(format!("expected number at byte {start}"));
                }
                Ok(())
            }
            other => Err(format!("unskippable value (found {other:?})")),
        }
    }
}

/// Parse one `BENCH_*.json` body into its `protocol_traffic` sections.
fn parse_bench(body: &str) -> Result<Traffic, String> {
    let mut sc = Scanner::new(body);
    sc.expect(b'{')?;
    let mut traffic = Traffic::new();
    loop {
        match sc.peek() {
            Some(b'}') | None => break,
            _ => {}
        }
        let key = sc.string()?;
        sc.expect(b':')?;
        if key == "protocol_traffic" {
            sc.expect(b'{')?;
            if sc.peek() == Some(b'}') {
                sc.pos += 1;
            } else {
                loop {
                    let label = sc.string()?;
                    sc.expect(b':')?;
                    traffic.insert(label, sc.counters()?);
                    match sc.peek() {
                        Some(b',') => sc.pos += 1,
                        Some(b'}') => {
                            sc.pos += 1;
                            break;
                        }
                        other => return Err(format!("expected ',' or '}}' (found {other:?})")),
                    }
                }
            }
        } else {
            sc.skip_value()?;
        }
        if sc.peek() == Some(b',') {
            sc.pos += 1;
        }
    }
    Ok(traffic)
}

/// One rule violation or informational note.
struct Finding {
    fatal: bool,
    msg: String,
}

/// Transport-level counters measure wire traffic and egress mechanics
/// (payload + backend framing, doorbell batching), not protocol
/// transitions, so they get a symmetric tolerance band of their own
/// instead of the exact protocol threshold.
const TRANSPORT_COUNTERS: [&str; 8] = [
    "bytes_tx",
    "bytes_rx",
    "frames",
    "completions",
    "tx_flushes",
    "doorbell_batches",
    "frames_coalesced",
    "ring_hwm",
];

/// Apply the diff rules; findings in deterministic (sorted) order.
fn diff(
    baseline: &Traffic,
    current: &Traffic,
    pct: f64,
    slack: u64,
    transport_pct: f64,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (label, base_counters) in baseline {
        let Some(cur_counters) = current.get(label) else {
            out.push(Finding {
                fatal: true,
                msg: format!("section `{label}` missing from current run"),
            });
            continue;
        };
        for (name, &base) in base_counters {
            let Some(&cur) = cur_counters.get(name) else {
                out.push(Finding {
                    fatal: true,
                    msg: format!("{label}: counter `{name}` missing from current run"),
                });
                continue;
            };
            let transport = TRANSPORT_COUNTERS.contains(&name.as_str());
            let band = if transport { transport_pct } else { pct };
            let limit = (base as f64 * (1.0 + band / 100.0)).floor() as u64 + slack;
            if cur > limit {
                let growth = if base == 0 {
                    "from zero".to_string()
                } else {
                    format!("+{:.1}%", (cur as f64 / base as f64 - 1.0) * 100.0)
                };
                out.push(Finding {
                    fatal: true,
                    msg: format!(
                        "{label}: `{name}` regressed {base} -> {cur} ({growth}, limit {limit})"
                    ),
                });
            } else if transport {
                // Symmetric band: a big byte/frame *drop* is not an
                // improvement, it means traffic went missing.
                let floor =
                    ((base as f64 * (1.0 - band / 100.0)).ceil() as u64).saturating_sub(slack);
                if cur < floor {
                    out.push(Finding {
                        fatal: true,
                        msg: format!(
                            "{label}: `{name}` left the -{band}% transport band: \
                             {base} -> {cur} (floor {floor})"
                        ),
                    });
                } else if cur != base {
                    out.push(Finding {
                        fatal: false,
                        msg: format!(
                            "{label}: `{name}` drifted {base} -> {cur} \
                             (within ±{band}% transport band)"
                        ),
                    });
                }
            } else if cur < base {
                out.push(Finding {
                    fatal: false,
                    msg: format!("{label}: `{name}` improved {base} -> {cur}"),
                });
            }
        }
        for name in cur_counters.keys() {
            if !base_counters.contains_key(name) {
                out.push(Finding {
                    fatal: false,
                    msg: format!("{label}: new counter `{name}` (not in baseline)"),
                });
            }
        }
    }
    for label in current.keys() {
        if !baseline.contains_key(label) {
            out.push(Finding {
                fatal: false,
                msg: format!("new section `{label}` (not in baseline)"),
            });
        }
    }
    out
}

fn usage() -> ! {
    eprintln!(
        "usage: protocol_diff <baseline.json> <current.json> \
         [--threshold-pct <float>] [--abs-slack <int>] \
         [--transport-pct <float>] [--update]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut pct = 0.0f64;
    let mut slack = 0u64;
    let mut transport_pct = 10.0f64;
    let mut update = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--threshold-pct" => {
                i += 1;
                pct = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--abs-slack" => {
                i += 1;
                slack = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--transport-pct" => {
                i += 1;
                transport_pct = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--update" => update = true,
            p if !p.starts_with("--") => paths.push(p.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    if paths.len() != 2 {
        usage();
    }
    let read = |p: &str| -> String {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("protocol_diff: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let parse = |p: &str, body: &str| -> Traffic {
        parse_bench(body).unwrap_or_else(|e| {
            eprintln!("protocol_diff: cannot parse {p}: {e}");
            std::process::exit(2);
        })
    };
    let (bp, cp) = (&paths[0], &paths[1]);
    if update {
        // Bless the current run as the new baseline. The current file must
        // parse (a malformed report should never be checked in); the old
        // baseline need not even exist.
        let body = read(cp);
        let sections = parse(cp, &body).len();
        if let Err(e) = std::fs::write(bp, &body) {
            eprintln!("protocol_diff: cannot write {bp}: {e}");
            return ExitCode::from(2);
        }
        println!("protocol_diff: baseline {bp} updated from {cp} ({sections} section(s))");
        return ExitCode::SUCCESS;
    }
    let baseline = parse(bp, &read(bp));
    let current = parse(cp, &read(cp));

    let findings = diff(&baseline, &current, pct, slack, transport_pct);
    let fatal = findings.iter().filter(|f| f.fatal).count();
    for f in &findings {
        println!("{} {}", if f.fatal { "FAIL" } else { "note" }, f.msg);
    }
    if fatal > 0 {
        println!(
            "protocol_diff: {fatal} regression(s) vs {bp} \
             (threshold {pct}% + {slack}, transport band ±{transport_pct}%)"
        );
        ExitCode::FAILURE
    } else {
        println!(
            "protocol_diff: OK — {} section(s), no counter above threshold {pct}% + {slack} \
             (transport band ±{transport_pct}%)",
            baseline.len()
        );
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bench": "unit",
  "protocol_traffic": {
    "a_1n": {"fills":10,"invalidations":0,"transitions":30},
    "b_2n": {"fills":5,"invalidations":2,"transitions":9}
  }
}
"#;

    #[test]
    fn parses_sections_and_counters() {
        let t = parse_bench(SAMPLE).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t["a_1n"]["fills"], 10);
        assert_eq!(t["b_2n"]["invalidations"], 2);
        assert_eq!(t["b_2n"]["transitions"], 9);
    }

    #[test]
    fn skips_metrics_object_with_floats() {
        let body = r#"{
  "bench": "fig12",
  "metrics": {
    "read_t4_rt1_mops": 12.345678,
    "read_t4_rt2_mops": 20.100000,
    "empty": {},
    "negative_exp": -1.5e-3
  },
  "protocol_traffic": {
    "read_t4_rt2": {"fills":7,"transitions":9}
  }
}
"#;
        let t = parse_bench(body).unwrap();
        assert_eq!(t.len(), 1, "metrics must not become sections");
        assert_eq!(t["read_t4_rt2"]["fills"], 7);
    }

    #[test]
    fn writer_metrics_output_parses() {
        let body = darray_bench::report::render_bench_json_with_metrics(
            "m",
            &[("x_mops".to_string(), 1.25)],
            &[(
                "x".to_string(),
                darray_bench::report::ProtocolTraffic {
                    fills: 4,
                    ..Default::default()
                },
            )],
        );
        let parsed = parse_bench(&body).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed["x"]["fills"], 4);
    }

    #[test]
    fn parses_empty_traffic() {
        let t = parse_bench("{\"bench\": \"x\", \"protocol_traffic\": {}}").unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn identical_files_pass() {
        let t = parse_bench(SAMPLE).unwrap();
        let f = diff(&t, &t, 0.0, 0, 10.0);
        assert!(f.iter().all(|x| !x.fatal), "no fatal findings");
    }

    #[test]
    fn increase_beyond_threshold_fails() {
        let base = parse_bench(SAMPLE).unwrap();
        let mut cur = base.clone();
        *cur.get_mut("a_1n").unwrap().get_mut("fills").unwrap() = 12;
        // 20% growth: fails at 0%, fails at 10%, passes at 25%.
        assert!(diff(&base, &cur, 0.0, 0, 10.0).iter().any(|f| f.fatal));
        assert!(diff(&base, &cur, 10.0, 0, 10.0).iter().any(|f| f.fatal));
        assert!(!diff(&base, &cur, 25.0, 0, 10.0).iter().any(|f| f.fatal));
        // An absolute slack of 2 also forgives it at 0%.
        assert!(!diff(&base, &cur, 0.0, 2, 10.0).iter().any(|f| f.fatal));
    }

    #[test]
    fn growth_from_zero_fails_without_slack() {
        let base = parse_bench(SAMPLE).unwrap();
        let mut cur = base.clone();
        *cur.get_mut("a_1n")
            .unwrap()
            .get_mut("invalidations")
            .unwrap() = 1;
        assert!(diff(&base, &cur, 50.0, 0, 10.0).iter().any(|f| f.fatal));
        assert!(!diff(&base, &cur, 0.0, 1, 10.0).iter().any(|f| f.fatal));
    }

    #[test]
    fn missing_section_or_counter_fails() {
        let base = parse_bench(SAMPLE).unwrap();
        let mut cur = base.clone();
        cur.remove("b_2n");
        assert!(diff(&base, &cur, 100.0, 99, 10.0).iter().any(|f| f.fatal));
        let mut cur2 = base.clone();
        cur2.get_mut("a_1n").unwrap().remove("transitions");
        assert!(diff(&base, &cur2, 100.0, 99, 10.0).iter().any(|f| f.fatal));
    }

    #[test]
    fn decreases_and_new_counters_are_notes() {
        let base = parse_bench(SAMPLE).unwrap();
        let mut cur = base.clone();
        *cur.get_mut("a_1n").unwrap().get_mut("fills").unwrap() = 1;
        cur.get_mut("a_1n")
            .unwrap()
            .insert("epochs_aborted".into(), 0);
        cur.insert("c_3n".into(), BTreeMap::new());
        let f = diff(&base, &cur, 0.0, 0, 10.0);
        assert!(f.iter().all(|x| !x.fatal));
        assert_eq!(f.len(), 3, "improvement + new counter + new section noted");
    }

    #[test]
    fn transport_counters_diff_in_their_own_band() {
        let base = parse_bench(
            r#"{"bench":"t","protocol_traffic":{
                 "w_2n": {"transitions":100,"bytes_tx":1000,"frames":50}
               }}"#,
        )
        .unwrap();
        // +8% bytes_tx: inside the default ±10% band even at protocol
        // threshold 0 — a note, not a failure.
        let mut cur = base.clone();
        *cur.get_mut("w_2n").unwrap().get_mut("bytes_tx").unwrap() = 1080;
        let f = diff(&base, &cur, 0.0, 0, 10.0);
        assert!(f.iter().all(|x| !x.fatal), "within band must pass");
        assert!(
            f.iter().any(|x| x.msg.contains("transport band")),
            "drift inside the band is still reported"
        );
        // +20% leaves the band upward.
        *cur.get_mut("w_2n").unwrap().get_mut("bytes_tx").unwrap() = 1200;
        assert!(diff(&base, &cur, 0.0, 0, 10.0).iter().any(|f| f.fatal));
        // -20% leaves it downward: missing wire traffic is NOT an
        // improvement, unlike a protocol-counter decrease.
        *cur.get_mut("w_2n").unwrap().get_mut("bytes_tx").unwrap() = 800;
        assert!(diff(&base, &cur, 0.0, 0, 10.0).iter().any(|f| f.fatal));
        // A wider band forgives the same drop.
        assert!(!diff(&base, &cur, 0.0, 0, 25.0).iter().any(|f| f.fatal));
    }

    #[test]
    fn transport_band_is_independent_of_protocol_threshold() {
        let base = parse_bench(
            r#"{"bench":"t","protocol_traffic":{
                 "w_2n": {"transitions":100,"frames":50}
               }}"#,
        )
        .unwrap();
        let mut cur = base.clone();
        // transitions +5% must still fail at the exact protocol threshold
        // even when the transport band would allow it.
        *cur.get_mut("w_2n").unwrap().get_mut("transitions").unwrap() = 105;
        assert!(diff(&base, &cur, 0.0, 0, 10.0).iter().any(|f| f.fatal));
        // frames +5% rides the transport band and passes at the same knobs.
        let mut cur2 = base.clone();
        *cur2.get_mut("w_2n").unwrap().get_mut("frames").unwrap() = 52;
        assert!(!diff(&base, &cur2, 0.0, 0, 10.0).iter().any(|f| f.fatal));
    }

    #[test]
    fn batching_counters_ride_the_transport_band() {
        let base = parse_bench(
            r#"{"bench":"t","protocol_traffic":{
                 "w_2n": {"transitions":100,"tx_flushes":40,
                          "doorbell_batches":10,"frames_coalesced":60,
                          "ring_hwm":20}
               }}"#,
        )
        .unwrap();
        // Small drift in either direction stays inside the ±10% band even
        // at protocol threshold 0.
        let mut cur = base.clone();
        *cur.get_mut("w_2n").unwrap().get_mut("tx_flushes").unwrap() = 42;
        *cur.get_mut("w_2n").unwrap().get_mut("ring_hwm").unwrap() = 19;
        assert!(!diff(&base, &cur, 0.0, 0, 10.0).iter().any(|f| f.fatal));
        // Doubling the batch count leaves the band and fails.
        *cur.get_mut("w_2n")
            .unwrap()
            .get_mut("doorbell_batches")
            .unwrap() = 20;
        assert!(diff(&base, &cur, 0.0, 0, 10.0).iter().any(|f| f.fatal));
    }

    #[test]
    fn real_report_roundtrip() {
        // The writer's own output must parse (guards format drift).
        let t = darray_bench::report::ProtocolTraffic {
            fills: 3,
            epochs_aborted: 1,
            ..Default::default()
        };
        let body = darray_bench::report::render_bench_json("rt", &[("w_1n".to_string(), t)]);
        let parsed = parse_bench(&body).unwrap();
        assert_eq!(parsed["w_1n"]["fills"], 3);
        assert_eq!(parsed["w_1n"]["epochs_aborted"], 1);
        assert_eq!(parsed["w_1n"]["orphaned_locks_reclaimed"], 0);
        assert_eq!(parsed["w_1n"]["flush_persists"], 0);
        assert_eq!(parsed["w_1n"]["recovered_chunks"], 0);
    }
}
