//! Figure 1 (motivation): average latency of 8-byte sequential access over
//! the entire array, on a single machine and distributed over 6 nodes.
//! Compares a builtin array, BCL, GAM, DArray and DArray-Pin.

use darray_bench::micro::{micro, Op, Pattern, System};
use darray_bench::report::{fmt, print_table, write_bench_json};

fn main() {
    let fast = darray_bench::fast_mode();
    let elems_per_node = if fast { 4_096 } else { 16_384 };
    let ops: u64 = if fast { 8_192 } else { 65_536 };
    let bcl_ops: u64 = if fast { 1_024 } else { 4_096 };

    let systems = [
        System::Builtin,
        System::Bcl,
        System::Gam,
        System::DArray,
        System::DArrayPin,
    ];
    let mut rows = Vec::new();
    let mut traffic = Vec::new();
    for sys in systems {
        let o = if sys == System::Bcl { bcl_ops } else { ops };
        let single = micro(sys, Op::Read, Pattern::Sequential, 1, 1, elems_per_node, o);
        let lat1 = single.avg_latency_ns(o);
        let lat6 = if sys == System::Builtin {
            f64::NAN // a builtin array does not distribute
        } else {
            let six = micro(sys, Op::Read, Pattern::Sequential, 6, 1, elems_per_node, o);
            if matches!(sys, System::DArray | System::DArrayPin) {
                traffic.push((format!("{}_seq_read_6n", sys.label()), six.protocol));
            }
            six.avg_latency_ns(o)
        };
        rows.push(vec![
            sys.label().to_string(),
            fmt(lat1),
            if lat6.is_nan() {
                "-".to_string()
            } else {
                fmt(lat6)
            },
        ]);
    }
    print_table(
        "Figure 1 — avg latency of 8-byte sequential access (ns)",
        &["system", "single machine", "distributed (6 nodes)"],
        &rows,
    );
    println!(
        "\npaper: BCL distributed ≈ RDMA round trip (~2 µs); GAM lower than \
         BCL remotely but far above builtin locally; DArray low; DArray-Pin lowest."
    );
    match write_bench_json("fig01", &traffic) {
        Ok(p) => println!("protocol traffic written to {}", p.display()),
        Err(e) => eprintln!("could not write BENCH_fig01.json: {e}"),
    }
}
