//! Ablations of DArray's design choices (DESIGN.md §5): each table flips
//! one mechanism and reruns a focused workload.
//!
//! 1. lock-free vs lock-based data access path (§4.1's strawman);
//! 2. sequential prefetch on/off (§4.2);
//! 3. dedicated Tx threads vs inline posting (§4.5);
//! 4. selective signaling interval (§4.5);
//! 5. runtime threads per node (§3.1's parallel runtime layer);
//! 6. eviction watermark settings under cache thrash (§4.2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use darray::{
    AccessPath, ArrayOptions, CacheConfig, Cluster, ClusterConfig, PoolStats, Sim, SimConfig, VTime,
};
use darray_bench::report::{fmt, print_table, write_bench_json_with_metrics, ProtocolTraffic};
use workloads::Rng;

/// Sequential scan throughput (Mops/s) and the protocol traffic it cost,
/// under an arbitrary configuration.
fn scan(
    cfg: ClusterConfig,
    threads: usize,
    elems_per_node: usize,
    ops: u64,
    random: bool,
) -> (f64, ProtocolTraffic) {
    let (mops, traffic, _) = scan_pools(cfg, threads, elems_per_node, ops, random);
    (mops, traffic)
}

/// [`scan`] that also returns each node's per-runtime-thread cache-pool
/// snapshots (`pools[node][rt]`), for the placement-skew ablation.
fn scan_pools(
    cfg: ClusterConfig,
    threads: usize,
    elems_per_node: usize,
    ops: u64,
    random: bool,
) -> (f64, ProtocolTraffic, Vec<Vec<PoolStats>>) {
    let nodes = cfg.nodes;
    let len = elems_per_node * nodes;
    let (elapsed, traffic, pools): (VTime, ProtocolTraffic, Vec<Vec<PoolStats>>) =
        Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, cfg);
            let arr = cluster.alloc::<u64>(len, ArrayOptions::default());
            let el = Arc::new(AtomicU64::new(0));
            let e2 = el.clone();
            cluster.run(ctx, threads, move |ctx, env| {
                let a = arr.on(env.node);
                let mut rng = Rng::new((env.node * 64 + env.thread) as u64 + 1);
                env.barrier(ctx);
                let t0 = ctx.now();
                for k in 0..ops {
                    let i = if random {
                        rng.next_below(len as u64) as usize
                    } else {
                        (k as usize) % len
                    };
                    std::hint::black_box(a.get(ctx, i));
                }
                e2.fetch_max(ctx.now() - t0, Ordering::Relaxed);
            });
            let t = el.load(Ordering::Relaxed);
            let traffic = ProtocolTraffic::collect(&cluster);
            let pools = (0..nodes).map(|n| cluster.pool_stats(n)).collect();
            cluster.shutdown(ctx);
            (t, traffic, pools)
        });
    let mops = (ops * (nodes * threads) as u64) as f64 / (elapsed as f64 / 1e9) / 1e6;
    (mops, traffic, pools)
}

fn main() {
    let fast = darray_bench::fast_mode();
    let ops: u64 = if fast { 4_096 } else { 30_000 };
    // One protocol-traffic section per ablated configuration: the diff
    // harness then pins each mechanism's coherence cost, not just its
    // headline throughput.
    let mut traffic: Vec<(String, ProtocolTraffic)> = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();

    // 1. Access path (the §4.1 strawman): local scans with rising thread
    // counts — the lock serializes threads within a chunk.
    {
        let mut rows = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let mut free = ClusterConfig::with_nodes(1);
            free.runtime_threads = 1;
            free.access_path = AccessPath::LockFree;
            let mut lock = ClusterConfig::with_nodes(1);
            lock.runtime_threads = 1;
            lock.access_path = AccessPath::LockBased;
            let (f, tf) = scan(free, threads, 16_384, ops, false);
            let (l, tl) = scan(lock, threads, 16_384, ops, false);
            traffic.push((format!("a1_lockfree_t{threads}"), tf));
            traffic.push((format!("a1_lockbased_t{threads}"), tl));
            rows.push(vec![threads.to_string(), fmt(f), fmt(l), fmt(f / l)]);
        }
        print_table(
            "Ablation 1 — lock-free vs lock-based access path (1 node, seq read, Mops/s)",
            &["threads", "lock-free", "lock-based", "speedup"],
            &rows,
        );
    }

    // 2. Prefetch: remote sequential scan with and without it.
    {
        let mut rows = Vec::new();
        for prefetch in [0usize, 1, 2, 4, 8] {
            let mut cfg = ClusterConfig::with_nodes(2);
            cfg.runtime_threads = 1;
            cfg.cache.prefetch_lines = prefetch;
            let (t, tr) = scan(cfg, 1, 16_384, ops, false);
            traffic.push((format!("a2_prefetch{prefetch}"), tr));
            rows.push(vec![prefetch.to_string(), fmt(t)]);
        }
        print_table(
            "Ablation 2 — prefetch depth (2 nodes, remote seq read, Mops/s)",
            &["prefetch lines", "throughput"],
            &rows,
        );
    }

    // 3. Dedicated Tx threads vs inline posting.
    {
        let mut rows = Vec::new();
        for tx in [false, true] {
            let mut cfg = ClusterConfig::with_nodes(4);
            cfg.runtime_threads = 1;
            cfg.tx_threads = tx;
            let (t, tr) = scan(cfg, 1, 8_192, ops, false);
            traffic.push((
                format!("a3_tx_{}", if tx { "dedicated" } else { "inline" }),
                tr,
            ));
            rows.push(vec![
                if tx {
                    "dedicated Tx threads"
                } else {
                    "inline posting"
                }
                .to_string(),
                fmt(t),
            ]);
        }
        print_table(
            "Ablation 3 — Tx thread offload (4 nodes, seq read, Mops/s)",
            &["comm layer", "throughput"],
            &rows,
        );
    }

    // 4. Selective signaling interval.
    {
        let mut rows = Vec::new();
        for r in [1u64, 4, 16, 64, 256] {
            let mut cfg = ClusterConfig::with_nodes(2);
            cfg.runtime_threads = 1;
            cfg.net.signal_interval = r;
            let (t, tr) = scan(cfg, 1, 8_192, ops, false);
            traffic.push((format!("a4_signal{r}"), tr));
            rows.push(vec![r.to_string(), fmt(t)]);
        }
        print_table(
            "Ablation 4 — selective signaling interval (2 nodes, seq read, Mops/s)",
            &["signal every r requests", "throughput"],
            &rows,
        );
    }

    // 5. Runtime threads: chunks (and protocol work) partition across
    // them, so coherence-heavy workloads gain from a second runtime thread.
    // Per-pool occupancy rides along in the metrics object: skewed
    // placement would show up as one pool's allocs/peak dwarfing the rest.
    {
        let mut rows = Vec::new();
        for rts in [1usize, 2, 4] {
            let mut cfg = ClusterConfig::with_nodes(4);
            cfg.runtime_threads = rts;
            let (t, tr, pools) = scan_pools(cfg, 2, 8_192, ops, false);
            traffic.push((format!("a5_rt{rts}"), tr));
            // Aggregate each pool index over the (symmetric) nodes.
            let mut pool_cells = Vec::new();
            for r in 0..rts {
                let allocs: u64 = pools.iter().map(|n| n[r].allocs).sum();
                let evictions: u64 = pools.iter().map(|n| n[r].evictions).sum();
                let peak: u64 = pools.iter().map(|n| n[r].peak_occupied as u64).sum();
                metrics.push((format!("a5_rt{rts}_pool{r}_allocs"), allocs as f64));
                metrics.push((format!("a5_rt{rts}_pool{r}_evictions"), evictions as f64));
                metrics.push((format!("a5_rt{rts}_pool{r}_peak"), peak as f64));
                pool_cells.push(format!("p{r}: {allocs}/{peak}"));
            }
            metrics.push((format!("a5_rt{rts}_mops"), t));
            rows.push(vec![rts.to_string(), fmt(t), pool_cells.join("  ")]);
        }
        print_table(
            "Ablation 5 — runtime threads per node (4 nodes, 2 app threads, seq read, Mops/s)",
            &[
                "runtime threads",
                "throughput",
                "pool allocs/peak (all nodes)",
            ],
            &rows,
        );
    }

    // 6. Eviction watermarks under random-access thrash.
    {
        let mut rows = Vec::new();
        for (lo, hi) in [(0.05, 0.10), (0.30, 0.50), (0.60, 0.80)] {
            let mut cfg = ClusterConfig::with_nodes(2);
            cfg.runtime_threads = 1;
            cfg.cache = CacheConfig {
                capacity_lines: 64,
                low_watermark: lo,
                high_watermark: hi,
                prefetch_lines: 0,
                ..CacheConfig::default()
            };
            let (t, tr) = scan(cfg, 1, 131_072, ops / 4, true);
            traffic.push((
                format!("a6_wm{:02}_{:02}", (lo * 100.0) as u32, (hi * 100.0) as u32),
                tr,
            ));
            rows.push(vec![format!("{lo:.2}/{hi:.2}"), fmt(t)]);
        }
        print_table(
            "Ablation 6 — eviction watermarks (2 nodes, random read, thrashing cache, Mops/s)",
            &["low/high watermark", "throughput"],
            &rows,
        );
    }

    match write_bench_json_with_metrics("ablations", &metrics, &traffic) {
        Ok(p) => println!("\nprotocol traffic written to {}", p.display()),
        Err(e) => eprintln!("could not write BENCH_ablations.json: {e}"),
    }
}
