//! Figure 12: sequential Read / Write / Operate throughput (Mops/s) with
//! increasing thread counts on three nodes. DArray vs GAM vs BCL (Operate:
//! DArray's Operate vs GAM's Atomic; BCL has no Operate).

use darray_bench::micro::{micro, Op, Pattern, System};
use darray_bench::report::{fmt, print_table};

fn main() {
    let fast = darray_bench::fast_mode();
    let nodes = 3;
    let elems_per_node = if fast { 4_096 } else { 16_384 };
    let ops: u64 = if fast { 4_096 } else { 30_000 };
    let bcl_ops: u64 = if fast { 512 } else { 2_500 };
    let threads: &[usize] = if fast { &[1, 4] } else { &[1, 2, 4, 8] };

    for op in [Op::Read, Op::Write, Op::Operate] {
        let mut rows = Vec::new();
        for &t in threads {
            let d = micro(
                System::DArray,
                op,
                Pattern::Sequential,
                nodes,
                t,
                elems_per_node,
                ops,
            );
            let g = micro(
                System::Gam,
                op,
                Pattern::Sequential,
                nodes,
                t,
                elems_per_node,
                ops,
            );
            let b = if op == Op::Operate {
                None
            } else {
                Some(micro(
                    System::Bcl,
                    op,
                    Pattern::Sequential,
                    nodes,
                    t,
                    elems_per_node,
                    bcl_ops,
                ))
            };
            rows.push(vec![
                t.to_string(),
                fmt(d.mops()),
                fmt(g.mops()),
                b.map(|x| fmt(x.mops())).unwrap_or_else(|| "-".into()),
            ]);
        }
        print_table(
            &format!(
                "Figure 12{} — sequential {} throughput on 3 nodes (Mops/s)",
                match op {
                    Op::Read => "a",
                    Op::Write => "b",
                    Op::Operate => "c",
                },
                op.label()
            ),
            &["threads/node", "DArray", "GAM", "BCL"],
            &rows,
        );
    }
    println!("\npaper: DArray consistently above GAM and BCL; the gap grows with threads; BCL flat (MPI RMA serialization).");
}
