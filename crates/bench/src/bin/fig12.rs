//! Figure 12: sequential Read / Write / Operate throughput (Mops/s) with
//! increasing thread counts on three nodes. DArray vs GAM vs BCL (Operate:
//! DArray's Operate vs GAM's Atomic; BCL has no Operate).
//!
//! DArray cells additionally sweep `runtime_threads ∈ {1, 2, 4}` — the
//! intra-node protocol-execution parallelism this figure motivates. The
//! sweep's throughput (`metrics`) and coherence traffic
//! (`protocol_traffic`) land in `BENCH_fig12.json`; the checked-in
//! baseline pins both, and the library's multi-threaded default
//! (`ClusterConfig::runtime_threads`) was chosen from this sweep.

use darray_bench::micro::{micro_rt, Op, Pattern, System};
use darray_bench::report::{fmt, print_table, write_bench_json_with_metrics, ProtocolTraffic};

const RT_SWEEP: [usize; 3] = [1, 2, 4];

fn op_key(op: Op) -> &'static str {
    match op {
        Op::Read => "read",
        Op::Write => "write",
        Op::Operate => "operate",
    }
}

fn main() {
    let fast = darray_bench::fast_mode();
    let nodes = 3;
    let elems_per_node = if fast { 4_096 } else { 16_384 };
    let ops: u64 = if fast { 4_096 } else { 30_000 };
    let bcl_ops: u64 = if fast { 512 } else { 2_500 };
    let threads: &[usize] = if fast { &[1, 4] } else { &[1, 2, 4, 8] };

    let mut traffic: Vec<(String, ProtocolTraffic)> = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    // (op, app threads) -> mops per runtime-thread count, for the summary.
    let mut rt_mops: Vec<(Op, usize, Vec<f64>)> = Vec::new();

    for op in [Op::Read, Op::Write, Op::Operate] {
        let mut rows = Vec::new();
        for &t in threads {
            let mut d_cells = Vec::new();
            for &rts in &RT_SWEEP {
                let d = micro_rt(
                    System::DArray,
                    op,
                    Pattern::Sequential,
                    nodes,
                    t,
                    elems_per_node,
                    ops,
                    rts,
                );
                let label = format!("{}_t{t}_rt{rts}", op_key(op));
                metrics.push((format!("{label}_mops"), d.mops()));
                traffic.push((label, d.protocol));
                d_cells.push(d.mops());
            }
            rt_mops.push((op, t, d_cells.clone()));
            let g = micro_rt(
                System::Gam,
                op,
                Pattern::Sequential,
                nodes,
                t,
                elems_per_node,
                ops,
                1,
            );
            metrics.push((format!("{}_t{t}_gam_mops", op_key(op)), g.mops()));
            let b = if op == Op::Operate {
                None
            } else {
                let b = micro_rt(
                    System::Bcl,
                    op,
                    Pattern::Sequential,
                    nodes,
                    t,
                    elems_per_node,
                    bcl_ops,
                    1,
                );
                metrics.push((format!("{}_t{t}_bcl_mops", op_key(op)), b.mops()));
                Some(b)
            };
            let mut row = vec![t.to_string()];
            row.extend(d_cells.iter().map(|&m| fmt(m)));
            row.push(fmt(g.mops()));
            row.push(b.map(|x| fmt(x.mops())).unwrap_or_else(|| "-".into()));
            rows.push(row);
        }
        print_table(
            &format!(
                "Figure 12{} — sequential {} throughput on 3 nodes (Mops/s)",
                match op {
                    Op::Read => "a",
                    Op::Write => "b",
                    Op::Operate => "c",
                },
                op.label()
            ),
            &[
                "threads/node",
                "DArray rt=1",
                "DArray rt=2",
                "DArray rt=4",
                "GAM",
                "BCL",
            ],
            &rows,
        );
    }

    // The sequential scans above amortize coherence over whole chunks, so
    // they are insensitive to the runtime-thread count (every rt column
    // ties — that is the result, not a bug). The regime that motivates the
    // multi-threaded default is *contended* access: uniform-random ops
    // over the global array make nearly every access a slow-path request
    // (ownership transfers for Write, fills for Read, operand state for
    // Operate), so each node's runtime threads — not the app threads —
    // become the bottleneck, and partitioning the protocol work across
    // them pays directly.
    let rnd_threads = 8usize;
    let rnd_elems = 16_384usize;
    let rnd_ops: u64 = if fast { 2_048 } else { 4_096 };
    let mut rnd_rows = Vec::new();
    let mut rnd_verdict: Vec<(Op, Vec<f64>)> = Vec::new();
    for op in [Op::Read, Op::Write, Op::Operate] {
        let mut cells = Vec::new();
        for &rts in &RT_SWEEP {
            let d = micro_rt(
                System::DArray,
                op,
                Pattern::Random,
                nodes,
                rnd_threads,
                rnd_elems,
                rnd_ops,
                rts,
            );
            let label = format!("coherent_{}_t{rnd_threads}_rt{rts}", op_key(op));
            metrics.push((format!("{label}_mops"), d.mops()));
            traffic.push((label, d.protocol));
            cells.push(d.mops());
        }
        rnd_rows.push(vec![
            op.label().to_string(),
            fmt(cells[0]),
            fmt(cells[1]),
            fmt(cells[2]),
            fmt(cells[1] / cells[0]),
        ]);
        rnd_verdict.push((op, cells));
    }
    print_table(
        &format!(
            "Figure 12d (supplement) — contended random ops on 3 nodes, \
             {rnd_threads} app threads/node (Mops/s): the coherence-heavy \
             regime the multi-threaded runtime default is chosen from"
        ),
        &["op", "rt=1", "rt=2", "rt=4", "rt2/rt1"],
        &rnd_rows,
    );

    // Runtime-thread verdict: the sequential cells at the highest
    // app-thread count (amortized; expect ~1.0) next to the contended
    // cells (protocol-bound; rt=2 must win for the default to hold).
    let t_max = *threads.last().unwrap();
    let mut rows = Vec::new();
    for (op, t, cells) in &rt_mops {
        if *t != t_max {
            continue;
        }
        rows.push(vec![
            format!("seq {}", op.label()),
            fmt(cells[0]),
            fmt(cells[1]),
            fmt(cells[2]),
            fmt(cells[1] / cells[0]),
        ]);
    }
    for (op, cells) in &rnd_verdict {
        rows.push(vec![
            format!("contended {}", op.label()),
            fmt(cells[0]),
            fmt(cells[1]),
            fmt(cells[2]),
            fmt(cells[1] / cells[0]),
        ]);
    }
    print_table(
        &format!(
            "Runtime-thread sweep (seq at {t_max} app threads/node, contended at {rnd_threads})"
        ),
        &["workload", "rt=1", "rt=2", "rt=4", "rt2/rt1"],
        &rows,
    );

    match write_bench_json_with_metrics("fig12", &metrics, &traffic) {
        Ok(p) => println!("\nprotocol traffic + throughput written to {}", p.display()),
        Err(e) => eprintln!("could not write BENCH_fig12.json: {e}"),
    }
    println!("paper: DArray consistently above GAM and BCL; the gap grows with threads; BCL flat (MPI RMA serialization).");
}
