//! Table 1: the states of the extended cache coherence protocol, printed
//! from the implementation (`darray::table1_rows`) and therefore guaranteed
//! to match what the runtime actually enforces.

use darray::table1_rows;
use darray_bench::report::print_table;

fn main() {
    let rows: Vec<Vec<String>> = table1_rows()
        .into_iter()
        .map(|r| {
            vec![
                r.state.to_string(),
                r.home.to_string(),
                r.others.to_string(),
                if r.exclusive { "Yes" } else { "No" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1 — states in the extended cache coherence protocol",
        &["State", "Home node", "Other nodes", "Exclusive"],
        &rows,
    );
    println!(
        "\npaper: Unshared R/W/O|None|Yes; Shared R|R|No; Dirty None|R/W|Yes; Operated O|O|No."
    );
}
