//! Table 1: the states of the extended cache coherence protocol, printed
//! from the implementation (`darray::table1_rows`) and therefore guaranteed
//! to match what the runtime actually enforces.
//!
//! The binary also *drives* every state of the table on a live 2-node
//! cluster (Unshared -> Shared -> Dirty -> Operated and back home) and
//! writes the resulting protocol traffic to `BENCH_table1.json`, so the
//! diff harness pins the canonical state walk alongside the figure
//! workloads.

use darray::{table1_rows, ArrayOptions, Cluster, ClusterConfig, Sim, SimConfig};
use darray_bench::report::{print_table, write_bench_json, ProtocolTraffic};

/// Walk a chunk homed at node 0 through every Table 1 state and return the
/// cluster-wide protocol traffic. Deterministic in virtual time: the JSON
/// is byte-identical run-to-run.
fn state_walk() -> ProtocolTraffic {
    const NODES: usize = 2;
    let mut cfg = ClusterConfig::test_config(NODES);
    // The checked-in baseline records the single-runtime-thread walk; the
    // walk itself is barrier-serialized, so this only pins the schedule.
    cfg.runtime_threads = 1;
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(4096, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            // Unshared -> Shared: node 1 reads an element homed at node 0.
            if env.node == 1 {
                assert_eq!(a.get(ctx, 0), 0);
            }
            env.barrier(ctx);
            // Shared -> Dirty: node 1 writes it (invalidate + exclusive).
            if env.node == 1 {
                a.set(ctx, 0, 7);
            }
            env.barrier(ctx);
            // Dirty -> home: node 0 reads it back, recalling the dirty copy.
            if env.node == 0 {
                assert_eq!(a.get(ctx, 0), 7);
            }
            env.barrier(ctx);
            // -> Operated: both nodes combine into the same element.
            a.apply(ctx, 1, add, 1);
            env.barrier(ctx);
            // Operated -> home: a read forces the cross-node reduction.
            if env.node == 0 {
                assert_eq!(a.get(ctx, 1), NODES as u64);
            }
            env.barrier(ctx);
        });
        let traffic = ProtocolTraffic::collect(&cluster);
        cluster.shutdown(ctx);
        traffic
    })
}

fn main() {
    let rows: Vec<Vec<String>> = table1_rows()
        .into_iter()
        .map(|r| {
            vec![
                r.state.to_string(),
                r.home.to_string(),
                r.others.to_string(),
                if r.exclusive { "Yes" } else { "No" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1 — states in the extended cache coherence protocol",
        &["State", "Home node", "Other nodes", "Exclusive"],
        &rows,
    );
    println!(
        "\npaper: Unshared R/W/O|None|Yes; Shared R|R|No; Dirty None|R/W|Yes; Operated O|O|No."
    );

    let walk = state_walk();
    match write_bench_json("table1", &[("state_walk_2n".to_string(), walk)]) {
        Ok(p) => println!("protocol traffic written to {}", p.display()),
        Err(e) => eprintln!("could not write BENCH_table1.json: {e}"),
    }
}
