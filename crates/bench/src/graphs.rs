//! Figure 16: PageRank and Connected Components running time across the
//! four engines (DArray, DArray-Pin, GAM, Gemini).

use crate::report::ProtocolTraffic;
use darray::{Cluster, Sim, SimConfig, VTime};
use darray_graph::cc::cc_darray;
use darray_graph::gam_engine::{cc_gam, pagerank_gam};
use darray_graph::gemini::{cc_gemini, pagerank_gemini};
use darray_graph::pagerank::pagerank_darray;
use darray_graph::rmat;
use gam::{gam_config, GamCluster};
use rdma_fabric::NetConfig;

/// The engine under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphSys {
    DArray,
    DArrayPin,
    Gam,
    Gemini,
}

impl GraphSys {
    pub fn label(self) -> &'static str {
        match self {
            GraphSys::DArray => "DArray",
            GraphSys::DArrayPin => "DArray-Pin",
            GraphSys::Gam => "GAM",
            GraphSys::Gemini => "Gemini",
        }
    }
}

/// Which algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    PageRank,
    Cc,
}

impl Algo {
    pub fn label(self) -> &'static str {
        match self {
            Algo::PageRank => "PR",
            Algo::Cc => "CC",
        }
    }
}

/// Run one (engine, algorithm, node-count) cell of Figure 16 on an rMAT
/// graph of the given scale; returns the virtual running time in ns.
pub fn graph_cell(
    sys: GraphSys,
    algo: Algo,
    nodes: usize,
    scale: u32,
    edge_factor: usize,
    pr_iters: usize,
) -> VTime {
    graph_cell_with_traffic(sys, algo, nodes, scale, edge_factor, pr_iters).0
}

/// [`graph_cell`] plus the cluster-wide protocol traffic of the run —
/// `Some` for the DArray engines (which expose `NodeStats`), `None` for
/// the GAM and Gemini comparison engines.
pub fn graph_cell_with_traffic(
    sys: GraphSys,
    algo: Algo,
    nodes: usize,
    scale: u32,
    edge_factor: usize,
    pr_iters: usize,
) -> (VTime, Option<ProtocolTraffic>) {
    let el = rmat(scale, edge_factor, 24);
    match sys {
        GraphSys::DArray | GraphSys::DArrayPin => {
            let pin = sys == GraphSys::DArrayPin;
            Sim::new(SimConfig::default()).run(move |ctx| {
                let cluster = Cluster::new(ctx, crate::bench_cluster_config(nodes));
                let t = match algo {
                    Algo::PageRank => pagerank_darray(ctx, &cluster, &el, pr_iters, pin).elapsed,
                    Algo::Cc => cc_darray(ctx, &cluster, &el, pin).elapsed,
                };
                let traffic = ProtocolTraffic::collect(&cluster);
                cluster.shutdown(ctx);
                (t, Some(traffic))
            })
        }
        GraphSys::Gam => Sim::new(SimConfig::default()).run(move |ctx| {
            let g = GamCluster::with_config(ctx, gam_config(nodes));
            let t = match algo {
                Algo::PageRank => pagerank_gam(ctx, &g, &el, pr_iters).elapsed,
                Algo::Cc => cc_gam(ctx, &g, &el).elapsed,
            };
            g.shutdown(ctx);
            (t, None)
        }),
        GraphSys::Gemini => Sim::new(SimConfig::default()).run(move |ctx| {
            let t = match algo {
                Algo::PageRank => {
                    pagerank_gemini(ctx, &el, nodes, pr_iters, NetConfig::default()).elapsed
                }
                Algo::Cc => cc_gemini(ctx, &el, nodes, NetConfig::default()).elapsed,
            };
            (t, None)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gam_is_orders_of_magnitude_slower_than_darray() {
        let d = graph_cell(GraphSys::DArray, Algo::PageRank, 3, 12, 4, 2);
        let g = graph_cell(GraphSys::Gam, Algo::PageRank, 3, 12, 4, 2);
        // The gap widens further with scale and node count (the full
        // Figure 16 shows 3 orders of magnitude).
        assert!(g > d * 30, "gam {g} vs darray {d}");
    }

    #[test]
    fn gemini_wins_on_one_node() {
        let d = graph_cell(GraphSys::DArrayPin, Algo::PageRank, 1, 10, 4, 2);
        let g = graph_cell(GraphSys::Gemini, Algo::PageRank, 1, 10, 4, 2);
        assert!(g < d, "gemini {g} should beat darray-pin {d} on one node");
    }
}
