//! # darray-bench — the evaluation harness
//!
//! One module per experiment family; every figure binary (`fig01` …
//! `fig18`, `table1`, `ablations`) and the criterion benches call into
//! these functions. All numbers are **virtual time** from the
//! deterministic simulation, so every run of a binary reproduces the same
//! table bit-for-bit.
//!
//! See `DESIGN.md` §5 for the experiment ↔ figure mapping and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.

pub mod graphs;
pub mod kvsbench;
pub mod micro;
pub mod operate;
pub mod report;

/// True when `FIG_FAST=1`: figure binaries shrink workloads for smoke runs.
pub fn fast_mode() -> bool {
    std::env::var("FIG_FAST").map(|v| v == "1").unwrap_or(false)
}
