//! # darray-bench — the evaluation harness
//!
//! One module per experiment family; every figure binary (`fig01` …
//! `fig18`, `table1`, `ablations`) and the criterion benches call into
//! these functions. All numbers are **virtual time** from the
//! deterministic simulation, so every run of a binary reproduces the same
//! table bit-for-bit.
//!
//! See `DESIGN.md` §5 for the experiment ↔ figure mapping and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.

pub mod graphs;
pub mod kvsbench;
pub mod micro;
pub mod operate;
pub mod report;

pub use darray::TransportKind;

use std::sync::Mutex;

/// Process-wide doorbell-batching override for benchmark cells. The
/// figure binaries' workload functions (`kvs_ycsb`, `micro::*`) build
/// their clusters through [`bench_cluster_config`] with fixed signatures,
/// so sweeps over the batching knobs set this instead of threading a
/// config through every call. `None` (the default) keeps
/// `BatchConfig::default()`.
static BATCH_OVERRIDE: Mutex<Option<darray::BatchConfig>> = Mutex::new(None);

/// Set (or with `None`, clear) the [`darray::BatchConfig`] that
/// [`bench_cluster_config`] applies to every cluster built until the next
/// call. Figure binaries run their cells sequentially, so scoping is by
/// call order.
pub fn set_batch_override(batch: Option<darray::BatchConfig>) {
    *BATCH_OVERRIDE.lock().unwrap() = batch;
}

/// True when `FIG_FAST=1`: figure binaries shrink workloads for smoke runs.
pub fn fast_mode() -> bool {
    std::env::var("FIG_FAST").map(|v| v == "1").unwrap_or(false)
}

/// Network backend for the DArray clusters, selected by `--transport=sim`
/// / `--transport=tcp` on the command line (or the `DARRAY_TRANSPORT` env
/// var; flag wins). Defaults to the deterministic simulated fabric — the
/// only backend whose virtual-time numbers mean anything; a TCP run keeps
/// the protocol-traffic sections comparable but its timings are wall-clock
/// noise. The comparison engines (GAM, Gemini, BCL) always simulate.
pub fn transport_kind() -> TransportKind {
    fn pick(v: &str) -> TransportKind {
        match v {
            "sim" => TransportKind::Sim,
            "tcp" if cfg!(feature = "tcp-transport") => TransportKind::Tcp,
            "tcp" => panic!("--transport=tcp requires building with --features tcp-transport"),
            other => panic!("unknown transport {other:?} (expected `sim` or `tcp`)"),
        }
    }
    for arg in std::env::args() {
        if let Some(v) = arg.strip_prefix("--transport=") {
            return pick(v);
        }
    }
    match std::env::var("DARRAY_TRANSPORT") {
        Ok(v) => pick(&v),
        Err(_) => TransportKind::Sim,
    }
}

/// The `ClusterConfig` every DArray benchmark cell boots with: the
/// calibrated config for `nodes` on the backend picked by
/// [`transport_kind`], **pinned to one runtime thread**. The library
/// default is multi-threaded, but the checked-in `BENCH_*` baselines were
/// recorded single-threaded and `protocol_diff` holds them at 0%; figure
/// binaries that study the thread count (fig12, fig13, ablation 5) opt in
/// per cell via [`bench_cluster_config_rt`].
pub fn bench_cluster_config(nodes: usize) -> darray::ClusterConfig {
    bench_cluster_config_rt(nodes, 1)
}

/// [`bench_cluster_config`] with an explicit runtime-thread count, for
/// the benchmark cells that sweep it.
pub fn bench_cluster_config_rt(nodes: usize, runtime_threads: usize) -> darray::ClusterConfig {
    let mut cfg = darray::ClusterConfig::with_nodes(nodes);
    cfg.runtime_threads = runtime_threads;
    cfg.transport = transport_kind();
    if let Some(batch) = *BATCH_OVERRIDE.lock().unwrap() {
        cfg.batch = batch;
    }
    cfg
}
