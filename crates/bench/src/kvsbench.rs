//! Figure 17: YCSB throughput of the DArray-based KVS versus the GAM-based
//! KVS on six nodes, sweeping thread count and get ratio (Zipfian 0.99).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use darray::{ArrayOptions, Cluster, Ctx, Sim, SimConfig, VTime};
use darray_kvs::{DArrayBackend, GamBackend, KvBackend, Kvs, KvsConfig, KvsView};

use crate::report::ProtocolTraffic;
use gam::{gam_config, GamCluster};
use workloads::{YcsbOp, YcsbSpec, YcsbStream};

/// Which KVS backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvSys {
    DArray,
    Gam,
}

impl KvSys {
    pub fn label(self) -> &'static str {
        match self {
            KvSys::DArray => "DArray-KVS",
            KvSys::Gam => "GAM-KVS",
        }
    }
}

/// Result of one Figure-17 cell.
#[derive(Debug, Clone, Copy)]
pub struct KvsOut {
    pub total_ops: u64,
    pub elapsed: VTime,
    /// Cluster-wide coherence traffic behind this cell (all-zero for the
    /// GAM backend, which does not expose `NodeStats`).
    pub protocol: ProtocolTraffic,
}

impl KvsOut {
    /// Total throughput in Kops/s.
    pub fn kops(&self) -> f64 {
        self.total_ops as f64 / (self.elapsed as f64 / 1e9) / 1e3
    }
}

fn drive<B: KvBackend>(
    ctx: &mut Ctx,
    env: &darray::NodeEnv,
    kv: &KvsView<B>,
    spec: &YcsbSpec,
    ops_per_thread: u64,
    elapsed: &AtomicU64,
) {
    // Preload: each node inserts its share of the records.
    let records = spec.records;
    let vsize = spec.value_size;
    for k in 0..records {
        if k as usize % env.nodes == env.node && env.thread == 0 {
            let val = YcsbStream::value_for(k, 0, vsize);
            kv.put(ctx, &k.to_le_bytes(), &val).expect("preload put");
        }
    }
    env.barrier(ctx);
    let mut stream = YcsbStream::new(spec.clone(), (env.node * 64 + env.thread) as u64 + 1000);
    let mut version = 1u64;
    env.barrier(ctx);
    let t0 = ctx.now();
    for _ in 0..ops_per_thread {
        match stream.next_op() {
            YcsbOp::Get(k) => {
                std::hint::black_box(kv.get(ctx, &k.to_le_bytes()));
            }
            YcsbOp::Put(k) => {
                version += 1;
                let val = YcsbStream::value_for(k, version, vsize);
                kv.put(ctx, &k.to_le_bytes(), &val).expect("put");
            }
        }
    }
    elapsed.fetch_max(ctx.now() - t0, Ordering::Relaxed);
}

/// Run one YCSB cell.
pub fn kvs_ycsb(
    sys: KvSys,
    nodes: usize,
    threads: usize,
    get_ratio: f64,
    records: u64,
    ops_per_thread: u64,
) -> KvsOut {
    let spec = YcsbSpec {
        records,
        get_ratio,
        theta: 0.99,
        value_size: 100,
        distribution: workloads::RequestDistribution::Zipfian,
    };
    let cfg = KvsConfig {
        buckets: (records / 8).max(16),
        overflow_per_node: (records / 16).max(8),
        value_capacity: (records * 2 + 1024) * 256,
        nodes,
    };
    let total_ops = ops_per_thread * (nodes * threads) as u64;
    match sys {
        KvSys::DArray => Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, crate::bench_cluster_config(nodes));
            let entries = cluster.alloc::<u64>(cfg.entry_array_len(), ArrayOptions::default());
            let bytes = cluster.alloc::<u64>(cfg.byte_array_words(), ArrayOptions::default());
            let kvs = Kvs::new(cfg);
            let elapsed = Arc::new(AtomicU64::new(0));
            let e2 = elapsed.clone();
            cluster.run(ctx, threads, move |ctx, env| {
                let kv = kvs.view(
                    env.node,
                    DArrayBackend(entries.on(env.node)),
                    DArrayBackend(bytes.on(env.node)),
                );
                drive(ctx, &env, &kv, &spec, ops_per_thread, &e2);
            });
            let out = KvsOut {
                total_ops,
                elapsed: elapsed.load(Ordering::Relaxed),
                protocol: ProtocolTraffic::collect(&cluster),
            };
            cluster.shutdown(ctx);
            out
        }),
        KvSys::Gam => Sim::new(SimConfig::default()).run(move |ctx| {
            let g = GamCluster::with_config(ctx, gam_config(nodes));
            let entries = g.alloc::<u64>(cfg.entry_array_len());
            let bytes = g.alloc::<u64>(cfg.byte_array_words());
            let kvs = Kvs::new(cfg);
            let elapsed = Arc::new(AtomicU64::new(0));
            let e2 = elapsed.clone();
            g.run(ctx, threads, move |ctx, env| {
                let kv = kvs.view(
                    env.node,
                    GamBackend(entries.on(env.node)),
                    GamBackend(bytes.on(env.node)),
                );
                drive(ctx, &env, &kv, &spec, ops_per_thread, &e2);
            });
            let out = KvsOut {
                total_ops,
                elapsed: elapsed.load(Ordering::Relaxed),
                protocol: ProtocolTraffic::default(),
            };
            g.shutdown(ctx);
            out
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn darray_kvs_beats_gam_kvs_on_pure_gets() {
        let d = kvs_ycsb(KvSys::DArray, 2, 1, 1.0, 256, 400);
        let g = kvs_ycsb(KvSys::Gam, 2, 1, 1.0, 256, 400);
        assert!(
            d.kops() > g.kops() * 3.0,
            "darray {} vs gam {}",
            d.kops(),
            g.kops()
        );
    }

    #[test]
    fn darray_kvs_beats_gam_kvs_with_puts_but_less() {
        let d = kvs_ycsb(KvSys::DArray, 2, 1, 0.5, 256, 300);
        let g = kvs_ycsb(KvSys::Gam, 2, 1, 0.5, 256, 300);
        let ratio = d.kops() / g.kops();
        assert!(ratio > 1.2, "ratio {ratio}");
    }
}
