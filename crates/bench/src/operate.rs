//! Figure 14: the Operate interface versus `WLock+Read+Write` under a
//! Zipfian (0.99) `write_add` workload. "The lock-based scheme's exclusive
//! ownership causes severe contention in multi-node systems."

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::report::ProtocolTraffic;
use darray::{ArrayOptions, Cluster, Sim, SimConfig, VTime};
use workloads::{Rng, Zipfian};

/// Result of one Figure-14 configuration.
#[derive(Debug, Clone, Copy)]
pub struct Fig14Out {
    pub total_ops: u64,
    pub elapsed: VTime,
    /// Coherence traffic behind the run; the Operate path shows up as
    /// `operand_flushes`/`operated_reductions`, the lock emulation as
    /// recall/invalidate ping-pong.
    pub protocol: ProtocolTraffic,
}

impl Fig14Out {
    pub fn mops(&self) -> f64 {
        self.total_ops as f64 / (self.elapsed as f64 / 1e9) / 1e6
    }
    pub fn avg_latency_ns(&self, ops_per_node: u64) -> f64 {
        self.elapsed as f64 / ops_per_node as f64
    }
}

/// Zipfian `write_add` over a global array; `use_operate` selects the
/// Operate interface, otherwise WLock+Read+Write emulates the same
/// semantics.
pub fn zipf_update(nodes: usize, len: usize, ops_per_node: u64, use_operate: bool) -> Fig14Out {
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, crate::bench_cluster_config(nodes));
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(len, ArrayOptions::default());
        let elapsed = Arc::new(AtomicU64::new(0));
        let e2 = elapsed.clone();
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            let zipf = Zipfian::new(len as u64);
            let mut rng = Rng::new(env.node as u64 + 7);
            env.barrier(ctx);
            let t0 = ctx.now();
            for _ in 0..ops_per_node {
                let i = zipf.next_scrambled(&mut rng) as usize;
                if use_operate {
                    a.apply(ctx, i, add, 1);
                } else {
                    // The emulation the paper describes: "acquire the
                    // writer lock for the corresponding vertex, read the
                    // vertex's rank, add the increment value to the rank,
                    // and write it back before releasing the lock."
                    a.wlock(ctx, i);
                    let v = a.get(ctx, i);
                    a.set(ctx, i, v + 1);
                    a.unlock(ctx, i);
                }
            }
            e2.fetch_max(ctx.now() - t0, Ordering::Relaxed);
        });
        let out = Fig14Out {
            total_ops: ops_per_node * nodes as u64,
            elapsed: elapsed.load(Ordering::Relaxed),
            protocol: ProtocolTraffic::collect(&cluster),
        };
        cluster.shutdown(ctx);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operate_beats_lock_based_on_multiple_nodes() {
        let op = zipf_update(3, 8_192, 2_000, true);
        let lk = zipf_update(3, 8_192, 2_000, false);
        assert!(
            op.mops() > lk.mops() * 3.0,
            "operate {} vs lock {}",
            op.mops(),
            lk.mops()
        );
    }

    #[test]
    fn lock_latency_grows_with_nodes() {
        let one = zipf_update(1, 8_192, 1_000, false);
        let four = zipf_update(4, 8_192, 1_000, false);
        assert!(
            four.avg_latency_ns(1_000) > one.avg_latency_ns(1_000) * 2.0,
            "lock latency should grow: 1n={} 4n={}",
            one.avg_latency_ns(1_000),
            four.avg_latency_ns(1_000)
        );
    }

    #[test]
    fn operate_latency_stays_flat() {
        let one = zipf_update(1, 8_192, 2_000, true);
        let four = zipf_update(4, 8_192, 2_000, true);
        assert!(
            four.avg_latency_ns(2_000) < one.avg_latency_ns(2_000) * 10.0,
            "operate latency should stay near-flat: 1n={} 4n={}",
            one.avg_latency_ns(2_000),
            four.avg_latency_ns(2_000)
        );
    }
}
