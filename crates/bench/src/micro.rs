//! Micro benchmarks: sequential and uniform-random Read/Write/Operate over
//! a global array (Figures 1, 12, 13, 15 and 18).
//!
//! "We allocate a global array that spans multiple nodes, with each element
//! of 8 bytes in size. The array size increases linearly with the number of
//! nodes ... Each thread on a node sequentially accesses the entire global
//! array with an 8-byte granularity." (§6.2) — the harness scales the array
//! down (see DESIGN.md §2) and optionally caps the per-thread op count;
//! averages are unaffected because the access pattern is cyclic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::report::ProtocolTraffic;
use bcl::BclCluster;
use darray::{ArrayOptions, Cluster, PinMode, Sim, SimConfig, VTime};
use gam::{gam_config, GamCluster};
use workloads::Rng;

/// Which system runs the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    Builtin,
    Bcl,
    Gam,
    DArray,
    DArrayPin,
}

impl System {
    pub fn label(self) -> &'static str {
        match self {
            System::Builtin => "builtin",
            System::Bcl => "BCL",
            System::Gam => "GAM",
            System::DArray => "DArray",
            System::DArrayPin => "DArray-Pin",
        }
    }
}

/// Which API is exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Read,
    Write,
    Operate,
}

impl Op {
    pub fn label(self) -> &'static str {
        match self {
            Op::Read => "Read",
            Op::Write => "Write",
            Op::Operate => "Operate",
        }
    }
}

/// Result of one micro-benchmark configuration.
#[derive(Debug, Clone, Copy)]
pub struct MicroOut {
    pub total_ops: u64,
    /// Max over threads of their measured window (virtual ns).
    pub elapsed: VTime,
    /// Coherence traffic behind the run (all-zero for non-DArray systems,
    /// which have no protocol machines to count).
    pub protocol: ProtocolTraffic,
}

impl MicroOut {
    /// Aggregate throughput in Mops/s.
    pub fn mops(&self) -> f64 {
        if self.elapsed == 0 {
            return 0.0;
        }
        self.total_ops as f64 / (self.elapsed as f64 / 1e9) / 1e6
    }

    /// Average per-op latency in ns (valid when threads run disjoint ops).
    pub fn avg_latency_ns(&self, ops_per_thread: u64) -> f64 {
        self.elapsed as f64 / ops_per_thread as f64
    }
}

/// Index streams: cyclic sequential over the whole array, or uniform
/// random.
#[derive(Debug, Clone, Copy)]
pub enum Pattern {
    Sequential,
    Random,
}

/// Run `ops_per_thread` accesses per thread on every node (DArray runs
/// single-runtime-threaded; see [`micro_rt`] for the thread-count sweep).
pub fn micro(
    system: System,
    op: Op,
    pattern: Pattern,
    nodes: usize,
    threads: usize,
    elems_per_node: usize,
    ops_per_thread: u64,
) -> MicroOut {
    micro_rt(
        system,
        op,
        pattern,
        nodes,
        threads,
        elems_per_node,
        ops_per_thread,
        1,
    )
}

/// [`micro`] with an explicit DArray runtime-thread count (fig12/fig13
/// sweep it). The comparison engines have no runtime-thread knob and
/// ignore `runtime_threads`.
#[allow(clippy::too_many_arguments)]
pub fn micro_rt(
    system: System,
    op: Op,
    pattern: Pattern,
    nodes: usize,
    threads: usize,
    elems_per_node: usize,
    ops_per_thread: u64,
    runtime_threads: usize,
) -> MicroOut {
    let len = elems_per_node * nodes;
    match system {
        System::Builtin => builtin_micro(op, len, ops_per_thread),
        System::Bcl => bcl_micro(op, pattern, nodes, threads, len, ops_per_thread),
        System::Gam => gam_micro(op, pattern, nodes, threads, len, ops_per_thread),
        System::DArray => darray_micro(
            op,
            pattern,
            nodes,
            threads,
            len,
            ops_per_thread,
            false,
            runtime_threads,
        ),
        System::DArrayPin => darray_micro(
            op,
            pattern,
            nodes,
            threads,
            len,
            ops_per_thread,
            true,
            runtime_threads,
        ),
    }
}

/// A native in-memory array: the Figure 1 baseline. One node, one thread,
/// every access charged the native cost.
fn builtin_micro(_op: Op, len: usize, ops: u64) -> MicroOut {
    let cost = rdma_fabric::CostModel::default();
    Sim::new(SimConfig::default()).run(move |ctx| {
        let data = vec![0u64; len];
        let mut sink = 0u64;
        for i in 0..ops {
            ctx.charge(cost.native_access_ns);
            sink = sink.wrapping_add(data[(i as usize) % len]);
        }
        std::hint::black_box(sink);
        MicroOut {
            total_ops: ops,
            elapsed: ctx.now(),
            protocol: ProtocolTraffic::default(),
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn darray_micro(
    op: Op,
    pattern: Pattern,
    nodes: usize,
    threads: usize,
    len: usize,
    ops_per_thread: u64,
    pin: bool,
    runtime_threads: usize,
) -> MicroOut {
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, crate::bench_cluster_config_rt(nodes, runtime_threads));
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(len, ArrayOptions::default());
        let elapsed = Arc::new(AtomicU64::new(0));
        let e2 = elapsed.clone();
        cluster.run(ctx, threads, move |ctx, env| {
            let a = arr.on(env.node);
            let chunk = a.chunk_size();
            let mut rng = Rng::new((env.node * 64 + env.thread) as u64 + 1);
            // Each node starts its full-array scan at its own partition
            // (the standard way to avoid a thundering herd on chunk 0; the
            // scan still covers local and remote data).
            let start = (env.node * (len / env.nodes)) % len;
            env.barrier(ctx);
            let t0 = ctx.now();
            match (pattern, pin) {
                (Pattern::Sequential, false) => {
                    let mut i = start;
                    for _ in 0..ops_per_thread {
                        match op {
                            Op::Read => {
                                std::hint::black_box(a.get(ctx, i));
                            }
                            Op::Write => a.set(ctx, i, i as u64),
                            Op::Operate => a.apply(ctx, i, add, 1),
                        }
                        i += 1;
                        if i == len {
                            i = 0;
                        }
                    }
                }
                (Pattern::Sequential, true) => {
                    // Pin each chunk window while streaming through it.
                    let mut done = 0u64;
                    let mut at = start;
                    while done < ops_per_thread {
                        let mode = match op {
                            Op::Read => PinMode::Read,
                            Op::Write => PinMode::Write,
                            Op::Operate => PinMode::Operate(add),
                        };
                        let p = a.pin(ctx, at, mode);
                        let hi = (at - at % chunk + chunk).min(len);
                        while at < hi && done < ops_per_thread {
                            match op {
                                Op::Read => {
                                    std::hint::black_box(p.get(ctx, at));
                                }
                                Op::Write => p.set(ctx, at, at as u64),
                                Op::Operate => p.apply(ctx, at, add, 1),
                            }
                            at += 1;
                            done += 1;
                        }
                        p.unpin();
                        if at == len {
                            at = 0;
                        }
                    }
                }
                (Pattern::Random, _) => {
                    for _ in 0..ops_per_thread {
                        let i = rng.next_below(len as u64) as usize;
                        match op {
                            Op::Read => {
                                std::hint::black_box(a.get(ctx, i));
                            }
                            Op::Write => a.set(ctx, i, i as u64),
                            Op::Operate => a.apply(ctx, i, add, 1),
                        }
                    }
                }
            }
            e2.fetch_max(ctx.now() - t0, Ordering::Relaxed);
        });
        let out = MicroOut {
            total_ops: ops_per_thread * (nodes * threads) as u64,
            elapsed: elapsed.load(Ordering::Relaxed),
            protocol: ProtocolTraffic::collect(&cluster),
        };
        cluster.shutdown(ctx);
        out
    })
}

fn gam_micro(
    op: Op,
    pattern: Pattern,
    nodes: usize,
    threads: usize,
    len: usize,
    ops_per_thread: u64,
) -> MicroOut {
    Sim::new(SimConfig::default()).run(move |ctx| {
        let g = GamCluster::with_config(ctx, gam_config(nodes));
        let arr = g.alloc::<u64>(len);
        let elapsed = Arc::new(AtomicU64::new(0));
        let e2 = elapsed.clone();
        g.run(ctx, threads, move |ctx, env| {
            let a = arr.on(env.node);
            let mut rng = Rng::new((env.node * 64 + env.thread) as u64 + 1);
            let start = (env.node * (len / env.nodes)) % len;
            env.barrier(ctx);
            let t0 = ctx.now();
            for k in 0..ops_per_thread {
                let i = match pattern {
                    Pattern::Sequential => (start + k as usize) % len,
                    Pattern::Random => rng.next_below(len as u64) as usize,
                };
                match op {
                    Op::Read => {
                        std::hint::black_box(a.read(ctx, i));
                    }
                    Op::Write => a.write(ctx, i, i as u64),
                    // GAM's Atomic: read-modify-write under exclusive
                    // ownership (§6.2: "the Atomic interface in GAM, which
                    // results in suboptimal performance due to its
                    // exclusive ownership").
                    Op::Operate => a.atomic(ctx, i, |x| x + 1),
                }
            }
            e2.fetch_max(ctx.now() - t0, Ordering::Relaxed);
        });
        let out = MicroOut {
            total_ops: ops_per_thread * (nodes * threads) as u64,
            elapsed: elapsed.load(Ordering::Relaxed),
            protocol: ProtocolTraffic::default(),
        };
        g.shutdown(ctx);
        out
    })
}

fn bcl_micro(
    op: Op,
    pattern: Pattern,
    nodes: usize,
    threads: usize,
    len: usize,
    ops_per_thread: u64,
) -> MicroOut {
    assert!(op != Op::Operate, "BCL has no Operate interface");
    Sim::new(SimConfig::default()).run(move |ctx| {
        let c = BclCluster::new(nodes);
        let arr = c.alloc::<u64>(len);
        let elapsed = Arc::new(AtomicU64::new(0));
        let e2 = elapsed.clone();
        c.run(ctx, threads, move |ctx, env| {
            let a = arr.on(env.node);
            let mut rng = Rng::new((env.node * 64 + env.thread) as u64 + 1);
            // BCL has no cache, so a full-array sequential scan's average is
            // exactly the local/remote mixture (1/n local, (n-1)/n remote);
            // with a capped op count we sample that mixture directly instead
            // of walking the whole array.
            let part = len / env.nodes;
            let local_base = env.node * part;
            let remote_base = ((env.node + 1) % env.nodes) * part;
            env.barrier(ctx);
            let t0 = ctx.now();
            for k in 0..ops_per_thread {
                let i = match pattern {
                    Pattern::Sequential => {
                        let k = k as usize;
                        if env.nodes > 1 && !k.is_multiple_of(env.nodes) {
                            remote_base + k % part
                        } else {
                            local_base + k % part
                        }
                    }
                    Pattern::Random => rng.next_below(len as u64) as usize,
                };
                match op {
                    Op::Read => {
                        std::hint::black_box(a.read(ctx, i));
                    }
                    Op::Write => a.write(ctx, i, i as u64),
                    Op::Operate => unreachable!(),
                }
            }
            e2.fetch_max(ctx.now() - t0, Ordering::Relaxed);
        });
        MicroOut {
            total_ops: ops_per_thread * (nodes * threads) as u64,
            elapsed: elapsed.load(Ordering::Relaxed),
            protocol: ProtocolTraffic::default(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_latency_ordering_holds() {
        // Single machine: builtin < DArray-Pin < DArray < GAM; distributed:
        // everyone ≥ its local latency, BCL near the 2 µs round trip.
        let ops = 4_096;
        let builtin = micro(
            System::Builtin,
            Op::Read,
            Pattern::Sequential,
            1,
            1,
            4096,
            ops,
        );
        let pin = micro(
            System::DArrayPin,
            Op::Read,
            Pattern::Sequential,
            1,
            1,
            4096,
            ops,
        );
        let plain = micro(
            System::DArray,
            Op::Read,
            Pattern::Sequential,
            1,
            1,
            4096,
            ops,
        );
        let gam = micro(System::Gam, Op::Read, Pattern::Sequential, 1, 1, 4096, ops);
        let b = builtin.avg_latency_ns(ops);
        let p = pin.avg_latency_ns(ops);
        let d = plain.avg_latency_ns(ops);
        let g = gam.avg_latency_ns(ops);
        assert!(b < p && p < d && d < g, "b={b} p={p} d={d} g={g}");
    }

    #[test]
    fn distributed_bcl_latency_is_round_trip_bound() {
        let ops = 512;
        // 4096 elems/node so the staggered starts (node·2048) fall in other
        // nodes' partitions: most accesses in the window are remote.
        let out = micro(System::Bcl, Op::Read, Pattern::Sequential, 3, 1, 4096, ops);
        let lat = out.avg_latency_ns(ops);
        assert!(lat > 800.0, "BCL latency {lat}");
    }

    #[test]
    fn darray_seq_read_beats_gam_distributed() {
        let ops = 8_192;
        let d = micro(
            System::DArray,
            Op::Read,
            Pattern::Sequential,
            3,
            1,
            4096,
            ops,
        );
        let g = micro(System::Gam, Op::Read, Pattern::Sequential, 3, 1, 4096, ops);
        assert!(
            d.mops() > g.mops() * 2.0,
            "DArray {} vs GAM {}",
            d.mops(),
            g.mops()
        );
    }

    #[test]
    fn operate_scales_better_than_gam_atomic() {
        let ops = 2_048;
        let d = micro(
            System::DArray,
            Op::Operate,
            Pattern::Sequential,
            3,
            1,
            2048,
            ops,
        );
        let g = micro(
            System::Gam,
            Op::Operate,
            Pattern::Sequential,
            3,
            1,
            2048,
            ops,
        );
        assert!(
            d.mops() > g.mops(),
            "DArray {} vs GAM {}",
            d.mops(),
            g.mops()
        );
    }
}
