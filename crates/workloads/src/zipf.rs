//! YCSB-style Zipfian generator (Gray et al., "Quickly generating
//! billion-record synthetic databases"), the distribution behind the
//! paper's skewed workloads: "a Zipfian distribution of skewness 0.99"
//! (§6.3) and "YCSB benchmarks ... with a Zipfian distribution parameter
//! of 0.99, which is the default value" (§6.5).

use crate::rng::Rng;

/// Zipfian distribution over `[0, n)` with skew `theta`. Rank 0 is the
/// hottest item; use [`Zipfian::next_scrambled`] to spread hot items over
/// the key space (as YCSB's ScrambledZipfian does).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    eta: f64,
    threshold1: f64,
    threshold2: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl Zipfian {
    /// Zipfian over `n` items with the paper's default skew 0.99.
    pub fn new(n: u64) -> Self {
        Self::with_theta(n, 0.99)
    }

    /// Zipfian with an explicit skew parameter `theta` in (0, 1).
    pub fn with_theta(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        assert!((0.0..1.0).contains(&theta), "theta must be in (0,1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            eta,
            threshold1: 1.0 / zetan,
            threshold2: (1.0 + 0.5f64.powf(theta)) / zetan,
        }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample a rank in `[0, n)`; rank 0 is hottest.
    pub fn next(&self, rng: &mut Rng) -> u64 {
        let u = rng.next_f64();
        if u < self.threshold1 {
            return 0;
        }
        if self.n >= 2 && u < self.threshold2 {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Sample with the hot ranks scattered over `[0, n)` by a Fibonacci
    /// hash (YCSB's ScrambledZipfian). Needed when the *location* of hot
    /// items matters — e.g. so hot array elements do not all land in the
    /// first chunk of the first node.
    pub fn next_scrambled(&self, rng: &mut Rng) -> u64 {
        let rank = self.next(rng);
        // Offset before the multiply so rank 0 does not hash to 0.
        (rank
            .wrapping_add(0x1234_5678_9ABC_DEF0)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            >> 16)
            % self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let z = Zipfian::new(1000);
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            assert!(z.next(&mut r) < 1000);
            assert!(z.next_scrambled(&mut r) < 1000);
        }
    }

    #[test]
    fn rank_zero_dominates_at_high_skew() {
        let z = Zipfian::with_theta(10_000, 0.99);
        let mut r = Rng::new(2);
        let n = 100_000;
        let hot = (0..n).filter(|_| z.next(&mut r) == 0).count();
        // With theta=0.99 over 10k items, rank 0 gets roughly 1/zeta(n)
        // ≈ 10 % of the mass.
        assert!(
            (5 * n / 100..20 * n / 100).contains(&hot),
            "rank-0 frequency = {hot}/{n}"
        );
    }

    #[test]
    fn frequencies_are_monotone_in_rank() {
        let z = Zipfian::new(50);
        let mut r = Rng::new(3);
        let mut counts = [0u64; 50];
        for _ in 0..200_000 {
            counts[z.next(&mut r) as usize] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[1] > counts[10]);
        assert!(counts[2] > counts[30]);
    }

    #[test]
    fn low_skew_is_flatter_than_high_skew() {
        let mut r = Rng::new(4);
        let hi = Zipfian::with_theta(1000, 0.99);
        let lo = Zipfian::with_theta(1000, 0.1);
        let n = 50_000;
        let hot_hi = (0..n).filter(|_| hi.next(&mut r) == 0).count();
        let hot_lo = (0..n).filter(|_| lo.next(&mut r) == 0).count();
        assert!(hot_hi > hot_lo * 5, "hi={hot_hi} lo={hot_lo}");
    }

    #[test]
    fn scrambled_spreads_the_hot_key() {
        let z = Zipfian::new(10_000);
        let mut r = Rng::new(5);
        // The hottest scrambled key should not be 0.
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(z.next_scrambled(&mut r)).or_insert(0u64) += 1;
        }
        let hottest = counts
            .iter()
            .max_by_key(|(_, c)| **c)
            .map(|(k, _)| *k)
            .unwrap();
        assert_ne!(hottest, 0);
    }

    #[test]
    fn single_item_distribution() {
        let z = Zipfian::new(1);
        let mut r = Rng::new(6);
        for _ in 0..100 {
            assert_eq!(z.next(&mut r), 0);
        }
    }
}
