//! A YCSB-like operation stream for the distributed KVS evaluation
//! (Figure 17: total throughput with varying thread count and get ratio).

use crate::rng::Rng;
use crate::zipf::Zipfian;

/// Key request distribution (YCSB's `requestdistribution` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestDistribution {
    /// Scrambled Zipfian (YCSB default; the paper's configuration).
    Zipfian,
    /// Uniform over all records.
    Uniform,
    /// "Latest": Zipfian skew toward the most recently inserted records.
    Latest,
}

/// One key-value operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YcsbOp {
    /// Read the value of this key.
    Get(u64),
    /// Insert or update this key with a value of the spec's size.
    Put(u64),
}

/// Workload specification.
#[derive(Debug, Clone)]
pub struct YcsbSpec {
    /// Number of distinct keys (records).
    pub records: u64,
    /// Fraction of operations that are gets; the rest are puts
    /// ("the proportion of get requests in relation to the total number of
    /// get and put requests", Figure 17).
    pub get_ratio: f64,
    /// Zipfian skew (paper default 0.99).
    pub theta: f64,
    /// Value size in bytes.
    pub value_size: usize,
    /// Key request distribution.
    pub distribution: RequestDistribution,
}

impl Default for YcsbSpec {
    fn default() -> Self {
        Self {
            records: 10_000,
            get_ratio: 0.95,
            theta: 0.99,
            value_size: 100,
            distribution: RequestDistribution::Zipfian,
        }
    }
}

/// An infinite deterministic stream of operations.
pub struct YcsbStream {
    spec: YcsbSpec,
    zipf: Zipfian,
    rng: Rng,
}

impl YcsbStream {
    /// Create a stream; equal `(spec, seed)` pairs yield equal streams.
    pub fn new(spec: YcsbSpec, seed: u64) -> Self {
        let zipf = Zipfian::with_theta(spec.records, spec.theta);
        Self {
            spec,
            zipf,
            rng: Rng::new(seed),
        }
    }

    /// The workload spec.
    pub fn spec(&self) -> &YcsbSpec {
        &self.spec
    }

    /// Next operation.
    pub fn next_op(&mut self) -> YcsbOp {
        let n = self.spec.records;
        let key = match self.spec.distribution {
            RequestDistribution::Zipfian => self.zipf.next_scrambled(&mut self.rng),
            RequestDistribution::Uniform => self.rng.next_below(n),
            // Latest: rank 0 maps to the highest key id, rank 1 to the next,
            // and so on — hot traffic concentrates on recent inserts.
            RequestDistribution::Latest => {
                let rank = self.zipf.next(&mut self.rng);
                n - 1 - rank
            }
        };
        if self.rng.chance(self.spec.get_ratio) {
            YcsbOp::Get(key)
        } else {
            YcsbOp::Put(key)
        }
    }

    /// Deterministic value bytes for a key (for verification).
    pub fn value_for(key: u64, version: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut x = key ^ version.rotate_left(32) ^ 0xABCD_EF01_2345_6789;
        for _ in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.push((x >> 56) as u8);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let spec = YcsbSpec::default();
        let mut a = YcsbStream::new(spec.clone(), 11);
        let mut b = YcsbStream::new(spec, 11);
        for _ in 0..500 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn get_ratio_is_respected() {
        let spec = YcsbSpec {
            get_ratio: 0.5,
            ..Default::default()
        };
        let mut s = YcsbStream::new(spec, 1);
        let n = 20_000;
        let gets = (0..n)
            .filter(|_| matches!(s.next_op(), YcsbOp::Get(_)))
            .count();
        assert!(
            (45 * n / 100..55 * n / 100).contains(&gets),
            "gets = {gets}"
        );
    }

    #[test]
    fn pure_get_workload_has_no_puts() {
        let spec = YcsbSpec {
            get_ratio: 1.0,
            ..Default::default()
        };
        let mut s = YcsbStream::new(spec, 2);
        assert!((0..1_000).all(|_| matches!(s.next_op(), YcsbOp::Get(_))));
    }

    #[test]
    fn keys_are_in_range_and_skewed() {
        let spec = YcsbSpec {
            records: 1_000,
            ..Default::default()
        };
        let mut s = YcsbStream::new(spec, 3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..30_000 {
            let k = match s.next_op() {
                YcsbOp::Get(k) | YcsbOp::Put(k) => k,
            };
            assert!(k < 1_000);
            *counts.entry(k).or_insert(0u64) += 1;
        }
        let max = *counts.values().max().unwrap();
        let avg = 30_000 / counts.len() as u64;
        assert!(
            max > avg * 5,
            "distribution should be skewed: max={max} avg={avg}"
        );
    }

    #[test]
    fn uniform_distribution_is_flat() {
        let spec = YcsbSpec {
            records: 100,
            distribution: RequestDistribution::Uniform,
            ..Default::default()
        };
        let mut s = YcsbStream::new(spec, 4);
        let mut counts = vec![0u64; 100];
        for _ in 0..50_000 {
            match s.next_op() {
                YcsbOp::Get(k) | YcsbOp::Put(k) => counts[k as usize] += 1,
            }
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max < &(min * 2), "uniform should be flat: {min}..{max}");
    }

    #[test]
    fn latest_distribution_prefers_high_ids() {
        let spec = YcsbSpec {
            records: 1_000,
            distribution: RequestDistribution::Latest,
            ..Default::default()
        };
        let mut s = YcsbStream::new(spec, 5);
        let mut high = 0;
        let n = 20_000;
        for _ in 0..n {
            let k = match s.next_op() {
                YcsbOp::Get(k) | YcsbOp::Put(k) => k,
            };
            if k >= 900 {
                high += 1;
            }
        }
        assert!(high > n / 2, "latest should hit the top decile: {high}/{n}");
    }

    #[test]
    fn value_for_is_deterministic_and_sized() {
        let a = YcsbStream::value_for(7, 1, 100);
        let b = YcsbStream::value_for(7, 1, 100);
        let c = YcsbStream::value_for(7, 2, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 100);
    }
}
