//! # workloads — deterministic workload generators for the evaluation
//!
//! * [`rng`] — a from-scratch xoshiro256\*\* PRNG (bit-for-bit
//!   reproducible across platforms and releases, which the deterministic
//!   simulation depends on);
//! * [`zipf`] — the YCSB-style Zipfian generator (default skew 0.99, as in
//!   §6.3 and §6.5), plus a scrambled variant that spreads the hot keys
//!   over the key space;
//! * [`ycsb`] — a YCSB-like key-value operation stream with a configurable
//!   get ratio (Figure 17 sweeps 100 % / 95 % / 50 %).

pub mod rng;
pub mod ycsb;
pub mod zipf;

pub use rng::Rng;
pub use ycsb::{RequestDistribution, YcsbOp, YcsbSpec, YcsbStream};
pub use zipf::Zipfian;
