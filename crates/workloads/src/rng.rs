//! xoshiro256** — a small, fast, high-quality PRNG (Blackman & Vigna),
//! implemented from scratch so workload streams are bit-for-bit
//! reproducible regardless of external crate versions.

/// Deterministic PRNG. Seeding goes through SplitMix64 as recommended by
/// the xoshiro authors, so any `u64` seed (including 0) works.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed from a single word.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next uniform `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, bound)` (Lemire's multiply-shift; slight modulo bias
    /// is irrelevant for workload generation).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = Rng::new(0);
        let mut seen_nonzero = false;
        for _ in 0..10 {
            seen_nonzero |= r.next_u64() != 0;
        }
        assert!(seen_nonzero);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Rng::new(7);
        for bound in [1u64, 2, 10, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval_and_roughly_uniform() {
        let mut r = Rng::new(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((0.45..0.55).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = Rng::new(9);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits = {hits}");
    }
}
