//! Graph engines ported to the GAM baseline (§6.4: "We utilized the array
//! abstractions provided by DArray and GAM to port Polymer ... to
//! distributed ones").
//!
//! GAM has no Operate interface, so neighbor updates use its Atomic verb —
//! an exclusive-ownership read-modify-write. Under a scatter phase this
//! ping-pongs chunk ownership between all updating nodes, which (together
//! with the lock-based access path on *every* element touch) is why the
//! paper measures GAM two to three orders of magnitude behind DArray on
//! graph workloads.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use darray::Ctx;
use gam::{GamArray, GamCluster};
use parking_lot::Mutex;

use crate::cc::PropagateResult;
use crate::csr::EdgeList;
use crate::local::LocalGraph;
use crate::pagerank::PrResult;

/// PageRank over GAM.
pub fn pagerank_gam(ctx: &mut Ctx, g: &GamCluster, el: &EdgeList, iters: usize) -> PrResult {
    let n = el.vertices;
    let nodes = {
        // GamCluster doesn't expose its node count; derive it from an array.
        let probe = g.alloc::<u64>(1);
        probe.on(0).nodes()
    };
    let (locals, offsets) = LocalGraph::partition_balanced(el, nodes);
    let locals = Arc::new(locals);
    let a = g.alloc_partitioned::<f64>(n, offsets.clone(), |_| 1.0 / n as f64);
    let b = g.alloc_partitioned::<f64>(n, offsets, |_| 0.0);
    let elapsed = Arc::new(AtomicU64::new(0));
    let out = Arc::new(Mutex::new(Vec::new()));
    let (e2, o2) = (elapsed.clone(), out.clone());
    g.run(ctx, 1, move |ctx, env| {
        let lg = &locals[env.node];
        let arrs: [GamArray<f64>; 2] = [a.on(env.node), b.on(env.node)];
        env.barrier(ctx);
        let t0 = ctx.now();
        for it in 0..iters {
            let src = &arrs[it % 2];
            let dst = &arrs[(it + 1) % 2];
            for v in lg.owned.clone() {
                dst.write(ctx, v, 0.0);
            }
            env.barrier(ctx);
            for u in lg.owned.clone() {
                let d = lg.degree(u);
                if d == 0 {
                    continue;
                }
                let c = src.read(ctx, u) / d as f64;
                for &v in lg.neighbors(u) {
                    dst.atomic(ctx, v as usize, move |x| x + c);
                }
            }
            env.barrier(ctx);
            let base = 0.15 / n as f64;
            for v in lg.owned.clone() {
                let s = dst.read(ctx, v);
                dst.write(ctx, v, base + 0.85 * s);
            }
            env.barrier(ctx);
        }
        e2.fetch_max(ctx.now() - t0, Ordering::Relaxed);
        env.barrier(ctx);
        if env.node == 0 {
            let fin = &arrs[iters % 2];
            let mut v = Vec::with_capacity(n);
            for i in 0..n {
                v.push(fin.read(ctx, i));
            }
            *o2.lock() = v;
        }
    });
    PrResult {
        elapsed: elapsed.load(Ordering::Relaxed),
        ranks: {
            let mut guard = out.lock();
            std::mem::take(&mut *guard)
        },
    }
}

/// Connected Components over GAM (min-label propagation with Atomic).
pub fn cc_gam(ctx: &mut Ctx, g: &GamCluster, el: &EdgeList) -> PropagateResult {
    let sym = el.symmetrized();
    let n = sym.vertices;
    let nodes = {
        let probe = g.alloc::<u64>(1);
        probe.on(0).nodes()
    };
    let (locals, offsets) = LocalGraph::partition_balanced(&sym, nodes);
    let locals = Arc::new(locals);
    let a = g.alloc_partitioned::<u64>(n, offsets.clone(), |v| v as u64);
    let b = g.alloc_partitioned::<u64>(n, offsets, |v| v as u64);
    let flags = g.alloc::<u64>(nodes);
    let elapsed = Arc::new(AtomicU64::new(0));
    let rounds_out = Arc::new(AtomicUsize::new(0));
    let out = Arc::new(Mutex::new(Vec::new()));
    let (e2, r2, o2) = (elapsed.clone(), rounds_out.clone(), out.clone());
    g.run(ctx, 1, move |ctx, env| {
        let lg = &locals[env.node];
        let arrs: [GamArray<u64>; 2] = [a.on(env.node), b.on(env.node)];
        let fl = flags.on(env.node);
        env.barrier(ctx);
        let t0 = ctx.now();
        let mut round = 0usize;
        loop {
            let src = &arrs[round % 2];
            let dst = &arrs[(round + 1) % 2];
            for v in lg.owned.clone() {
                let x = src.read(ctx, v);
                dst.write(ctx, v, x);
            }
            env.barrier(ctx);
            for u in lg.owned.clone() {
                let lu = src.read(ctx, u);
                for &v in lg.neighbors(u) {
                    dst.atomic(ctx, v as usize, move |x: u64| x.min(lu));
                }
            }
            env.barrier(ctx);
            let mut changed = false;
            for v in lg.owned.clone() {
                changed |= src.read(ctx, v) != dst.read(ctx, v);
            }
            fl.write(ctx, env.node, changed as u64);
            env.barrier(ctx);
            let mut any = false;
            for i in 0..env.nodes {
                any |= fl.read(ctx, i) != 0;
            }
            env.barrier(ctx);
            round += 1;
            if !any {
                break;
            }
            assert!(round <= n + 2, "GAM CC failed to converge");
        }
        e2.fetch_max(ctx.now() - t0, Ordering::Relaxed);
        env.barrier(ctx);
        if env.node == 0 {
            r2.store(round, Ordering::Relaxed);
            let fin = &arrs[round % 2];
            let mut v = Vec::with_capacity(n);
            for i in 0..n {
                v.push(fin.read(ctx, i));
            }
            *o2.lock() = v;
        }
    });
    PropagateResult {
        elapsed: elapsed.load(Ordering::Relaxed),
        values: {
            let mut guard = out.lock();
            std::mem::take(&mut *guard)
        },
        rounds: rounds_out.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{cc_ref, pagerank_ref};
    use crate::rmat::rmat;
    use darray::{Sim, SimConfig};
    use gam::gam_config_with_net;
    use rdma_fabric::NetConfig;

    #[test]
    fn gam_pagerank_matches_reference() {
        let el = rmat(9, 4, 42);
        let want = pagerank_ref(&el, 2);
        let got = Sim::new(SimConfig::default()).run(move |ctx| {
            let g = GamCluster::with_config(ctx, gam_config_with_net(2, NetConfig::instant()));
            let r = pagerank_gam(ctx, &g, &el, 2);
            g.shutdown(ctx);
            r
        });
        for (x, y) in got.ranks.iter().zip(&want) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn gam_cc_matches_reference() {
        let el = rmat(8, 2, 11);
        let want = cc_ref(&el);
        let got = Sim::new(SimConfig::default()).run(move |ctx| {
            let g = GamCluster::with_config(ctx, gam_config_with_net(2, NetConfig::instant()));
            let r = cc_gam(ctx, &g, &el);
            g.shutdown(ctx);
            r
        });
        assert_eq!(got.values, want);
    }
}
