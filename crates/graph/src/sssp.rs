//! Single-source shortest paths over DArray (an extension beyond the
//! paper's two applications): Bellman-Ford-style relaxation where each
//! round `apply`s `min(dist[u] + w)` along owned weighted edges. The
//! Operated state combines relaxations from all nodes locally.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use darray::{ArrayOptions, Cluster, Ctx, PinMode};
use parking_lot::Mutex;

use crate::cc::PropagateResult;
use crate::csr::EdgeList;
use crate::local::LocalGraph;
use workloads::Rng;

/// Per-edge weights aligned with an [`EdgeList`]'s edge order.
#[derive(Debug, Clone)]
pub struct EdgeWeights(pub Vec<u32>);

/// Deterministic uniform weights in `1..=max_w`.
pub fn random_weights(el: &EdgeList, max_w: u32, seed: u64) -> EdgeWeights {
    let mut rng = Rng::new(seed);
    EdgeWeights(
        (0..el.edges.len())
            .map(|_| 1 + rng.next_below(max_w as u64) as u32)
            .collect(),
    )
}

/// Sequential reference (Bellman-Ford).
pub fn sssp_ref(el: &EdgeList, w: &EdgeWeights, src: usize) -> Vec<u64> {
    let n = el.vertices;
    let mut dist = vec![u64::MAX; n];
    dist[src] = 0;
    loop {
        let mut changed = false;
        for (k, &(u, v)) in el.edges.iter().enumerate() {
            let du = dist[u as usize];
            if du == u64::MAX {
                continue;
            }
            let nd = du + w.0[k] as u64;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                changed = true;
            }
        }
        if !changed {
            return dist;
        }
    }
}

/// Per-node weighted subgraph (parallel arrays to [`LocalGraph`]'s CSR
/// would complicate it; we keep a flat owned edge list instead — SSSP is
/// edge-oriented anyway).
struct LocalWeighted {
    owned: std::ops::Range<usize>,
    edges: Vec<(u32, u32, u32)>, // (src, dst, weight)
}

/// Distributed SSSP; returns distances (unreachable = `u64::MAX`).
pub fn sssp_darray(
    ctx: &mut Ctx,
    cluster: &Cluster,
    el: &EdgeList,
    weights: &EdgeWeights,
    src: usize,
    pin: bool,
) -> PropagateResult {
    assert!(src < el.vertices);
    assert_eq!(weights.0.len(), el.edges.len());
    let n = el.vertices;
    let nodes = cluster.config().nodes;
    let (locals, offsets) = LocalGraph::partition_balanced(el, nodes);
    let ranges: Vec<std::ops::Range<usize>> = locals.iter().map(|l| l.owned.clone()).collect();
    let mut per_node: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); nodes];
    for (k, &(u, v)) in el.edges.iter().enumerate() {
        let owner = ranges
            .partition_point(|r| r.end <= u as usize)
            .min(nodes - 1);
        per_node[owner].push((u, v, weights.0[k]));
    }
    let locals: Arc<Vec<LocalWeighted>> = Arc::new(
        ranges
            .iter()
            .zip(per_node)
            .map(|(owned, edges)| LocalWeighted {
                owned: owned.clone(),
                edges,
            })
            .collect(),
    );
    let opts = ArrayOptions {
        chunk_size: None,
        partition_offset: Some(offsets),
    };
    let min = cluster.ops().register_min_u64();
    let init = move |v: usize| if v == src { 0 } else { u64::MAX };
    let a = cluster.alloc_with::<u64>(n, opts.clone(), init);
    let b = cluster.alloc_with::<u64>(n, opts, init);
    let flags = cluster.alloc::<u64>(nodes, ArrayOptions::default());
    let elapsed = Arc::new(AtomicU64::new(0));
    let rounds_out = Arc::new(AtomicUsize::new(0));
    let out = Arc::new(Mutex::new(Vec::new()));
    let (e2, r2, o2) = (elapsed.clone(), rounds_out.clone(), out.clone());
    cluster.run(ctx, 1, move |ctx, env| {
        let g = &locals[env.node];
        let arrs = [a.on(env.node), b.on(env.node)];
        let fl = flags.on(env.node);
        let chunk = arrs[0].chunk_size();
        env.barrier(ctx);
        let t0 = ctx.now();
        let mut round = 0usize;
        loop {
            let src_a = &arrs[round % 2];
            let dst_a = &arrs[(round + 1) % 2];
            // Seed dst with src over the owned range.
            let mut at = g.owned.start;
            while at < g.owned.end {
                let hi = (at - at % chunk + chunk).min(g.owned.end);
                if pin {
                    let ps = src_a.pin(ctx, at, PinMode::Read);
                    let pd = dst_a.pin(ctx, at, PinMode::Write);
                    for v in at..hi {
                        let x = ps.get(ctx, v);
                        pd.set(ctx, v, x);
                    }
                } else {
                    for v in at..hi {
                        let x = src_a.get(ctx, v);
                        dst_a.set(ctx, v, x);
                    }
                }
                at = hi;
            }
            env.barrier(ctx);
            // Relax owned edges.
            for &(u, v, w) in &g.edges {
                let du = src_a.get(ctx, u as usize);
                if du == u64::MAX {
                    continue;
                }
                dst_a.apply(ctx, v as usize, min, du + w as u64);
            }
            env.barrier(ctx);
            // Convergence check.
            let mut changed = false;
            for v in g.owned.clone() {
                changed |= src_a.get(ctx, v) != dst_a.get(ctx, v);
            }
            fl.set(ctx, env.node, changed as u64);
            env.barrier(ctx);
            let mut any = false;
            for i in 0..env.nodes {
                any |= fl.get(ctx, i) != 0;
            }
            env.barrier(ctx);
            round += 1;
            if !any {
                break;
            }
            assert!(round <= n + 2, "SSSP failed to converge");
        }
        e2.fetch_max(ctx.now() - t0, Ordering::Relaxed);
        env.barrier(ctx);
        if env.node == 0 {
            r2.store(round, Ordering::Relaxed);
            let fin = &arrs[round % 2];
            let mut v = Vec::with_capacity(n);
            for i in 0..n {
                v.push(fin.get(ctx, i));
            }
            *o2.lock() = v;
        }
    });
    PropagateResult {
        elapsed: elapsed.load(Ordering::Relaxed),
        values: {
            let mut g = out.lock();
            std::mem::take(&mut *g)
        },
        rounds: rounds_out.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmat::rmat;
    use darray::{ClusterConfig, Sim, SimConfig};

    #[test]
    fn sssp_matches_bellman_ford() {
        let el = rmat(9, 4, 17);
        let w = random_weights(&el, 10, 5);
        let want = sssp_ref(&el, &w, 0);
        let got = Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, ClusterConfig::test_config(3));
            let r = sssp_darray(ctx, &cluster, &el, &w, 0, false);
            cluster.shutdown(ctx);
            r
        });
        assert_eq!(got.values, want);
    }

    #[test]
    fn sssp_pin_variant_matches() {
        let el = rmat(8, 4, 18);
        let w = random_weights(&el, 5, 6);
        let want = sssp_ref(&el, &w, 2);
        let got = Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, ClusterConfig::test_config(2));
            let r = sssp_darray(ctx, &cluster, &el, &w, 2, true);
            cluster.shutdown(ctx);
            r
        });
        assert_eq!(got.values, want);
    }

    #[test]
    fn unit_weights_reduce_to_bfs() {
        let el = rmat(8, 4, 19);
        let w = EdgeWeights(vec![1; el.edges.len()]);
        let bfs = crate::reference::bfs_ref(&el, 0);
        let got = Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, ClusterConfig::test_config(2));
            let r = sssp_darray(ctx, &cluster, &el, &w, 0, false);
            cluster.shutdown(ctx);
            r
        });
        assert_eq!(got.values, bfs);
    }
}
