//! Connected Components by min-label propagation over DArray, using the
//! `write_min` operator (§4.3) — the second graph application of §6.4.
//!
//! The propagation skeleton is shared with BFS: double-buffered label
//! arrays, a scatter phase that `apply`s `min` contributions along edges,
//! and a global convergence check through a small flag array.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use darray::{ArrayOptions, Cluster, Ctx, DArray, NodeEnv, OpId, PinMode, VTime};
use parking_lot::Mutex;

use crate::csr::EdgeList;
use crate::local::LocalGraph;

/// Result of a propagation run (CC or BFS).
pub struct PropagateResult {
    /// Virtual time of the iteration loop (max over nodes).
    pub elapsed: VTime,
    /// Final per-vertex values (labels or distances), gathered at node 0.
    pub values: Vec<u64>,
    /// Rounds until convergence.
    pub rounds: usize,
}

/// What one vertex contributes to its neighbors, given its current value.
/// `None` means "nothing" (e.g. unreached BFS vertices).
pub(crate) type ContribFn = fn(u64) -> Option<u64>;

/// Generic min-propagation engine; `init(v)` seeds the value array.
pub(crate) fn min_propagate_darray(
    ctx: &mut Ctx,
    cluster: &Cluster,
    el: &EdgeList,
    init: impl Fn(usize) -> u64 + Copy + Send + Sync + 'static,
    contrib: ContribFn,
    pin: bool,
) -> PropagateResult {
    let n = el.vertices;
    let nodes = cluster.config().nodes;
    let (locals, offsets) = LocalGraph::partition_balanced(el, nodes);
    let locals = Arc::new(locals);
    let opts = ArrayOptions {
        chunk_size: None,
        partition_offset: Some(offsets),
    };
    let min = cluster.ops().register_min_u64();
    let a = cluster.alloc_with::<u64>(n, opts.clone(), init);
    let b = cluster.alloc_with::<u64>(n, opts, init);
    let flags = cluster.alloc::<u64>(nodes, ArrayOptions::default());
    let elapsed = Arc::new(AtomicU64::new(0));
    let rounds_out = Arc::new(AtomicUsize::new(0));
    let out = Arc::new(Mutex::new(Vec::new()));
    let (e2, r2, o2) = (elapsed.clone(), rounds_out.clone(), out.clone());
    cluster.run(ctx, 1, move |ctx, env| {
        let g = &locals[env.node];
        let arrs = [a.on(env.node), b.on(env.node)];
        let fl = flags.on(env.node);
        env.barrier(ctx);
        let t0 = ctx.now();
        let mut round = 0usize;
        loop {
            let src = &arrs[round % 2];
            let dst = &arrs[(round + 1) % 2];
            // Seed dst with src (owner-local copy).
            copy_owned(ctx, g, src, dst, pin);
            env.barrier(ctx);
            // Scatter min contributions along owned out-edges.
            scatter_min(ctx, g, src, dst, min, contrib, pin);
            env.barrier(ctx);
            // Local convergence check (reads recall outstanding combines).
            let changed = check_changed(ctx, g, src, dst, pin);
            fl.set(ctx, env.node, changed as u64);
            env.barrier(ctx);
            let mut any = false;
            for i in 0..env.nodes {
                any |= fl.get(ctx, i) != 0;
            }
            env.barrier(ctx);
            round += 1;
            if !any {
                break;
            }
            assert!(round <= n + 2, "propagation failed to converge");
        }
        e2.fetch_max(ctx.now() - t0, Ordering::Relaxed);
        env.barrier(ctx);
        if env.node == 0 {
            r2.store(round, Ordering::Relaxed);
            let fin = &arrs[round % 2];
            let mut v = Vec::with_capacity(n);
            for i in 0..n {
                v.push(fin.get(ctx, i));
            }
            *o2.lock() = v;
        }
    });
    PropagateResult {
        elapsed: elapsed.load(Ordering::Relaxed),
        values: {
            let mut g = out.lock();
            std::mem::take(&mut *g)
        },
        rounds: rounds_out.load(Ordering::Relaxed),
    }
}

fn windows(
    owned: std::ops::Range<usize>,
    chunk: usize,
) -> impl Iterator<Item = std::ops::Range<usize>> {
    let mut at = owned.start;
    std::iter::from_fn(move || {
        if at >= owned.end {
            return None;
        }
        let hi = (at + chunk).min(owned.end);
        let r = at..hi;
        at = hi;
        Some(r)
    })
}

fn copy_owned(ctx: &mut Ctx, g: &LocalGraph, src: &DArray<u64>, dst: &DArray<u64>, pin: bool) {
    let chunk = src.chunk_size();
    if pin {
        for w in windows(g.owned.clone(), chunk) {
            let ps = src.pin(ctx, w.start, PinMode::Read);
            let pd = dst.pin(ctx, w.start, PinMode::Write);
            for v in w {
                let x = ps.get(ctx, v);
                pd.set(ctx, v, x);
            }
        }
    } else {
        for v in g.owned.clone() {
            let x = src.get(ctx, v);
            dst.set(ctx, v, x);
        }
    }
}

fn scatter_min(
    ctx: &mut Ctx,
    g: &LocalGraph,
    src: &DArray<u64>,
    dst: &DArray<u64>,
    min: OpId,
    contrib: ContribFn,
    pin: bool,
) {
    let chunk = src.chunk_size();
    if pin {
        for w in windows(g.owned.clone(), chunk) {
            let p = src.pin(ctx, w.start, PinMode::Read);
            for u in w {
                if let Some(c) = contrib(p.get(ctx, u)) {
                    for &v in g.neighbors(u) {
                        dst.apply(ctx, v as usize, min, c);
                    }
                }
            }
            p.unpin();
        }
    } else {
        for u in g.owned.clone() {
            if let Some(c) = contrib(src.get(ctx, u)) {
                for &v in g.neighbors(u) {
                    dst.apply(ctx, v as usize, min, c);
                }
            }
        }
    }
}

fn check_changed(
    ctx: &mut Ctx,
    g: &LocalGraph,
    src: &DArray<u64>,
    dst: &DArray<u64>,
    pin: bool,
) -> bool {
    let chunk = src.chunk_size();
    let mut changed = false;
    if pin {
        for w in windows(g.owned.clone(), chunk) {
            let ps = src.pin(ctx, w.start, PinMode::Read);
            let pd = dst.pin(ctx, w.start, PinMode::Read);
            for v in w {
                changed |= ps.get(ctx, v) != pd.get(ctx, v);
            }
        }
    } else {
        for v in g.owned.clone() {
            changed |= src.get(ctx, v) != dst.get(ctx, v);
        }
    }
    changed
}

/// Distributed Connected Components: every vertex converges to the minimum
/// vertex id in its (undirected) component.
pub fn cc_darray(ctx: &mut Ctx, cluster: &Cluster, el: &EdgeList, pin: bool) -> PropagateResult {
    let sym = el.symmetrized();
    min_propagate_darray(ctx, cluster, &sym, |v| v as u64, Some, pin)
}

/// The NodeEnv type is re-exported so bench code can name it.
pub type Env = NodeEnv;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::cc_ref;
    use crate::rmat::rmat;
    use darray::{ClusterConfig, Sim, SimConfig};

    fn run_cc(nodes: usize, pin: bool) -> (PropagateResult, Vec<u64>) {
        let el = rmat(9, 2, 11);
        let want = cc_ref(&el);
        let got = Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, ClusterConfig::test_config(nodes));
            let r = cc_darray(ctx, &cluster, &el, pin);
            cluster.shutdown(ctx);
            r
        });
        (got, want)
    }

    #[test]
    fn cc_matches_reference_multi_node() {
        let (got, want) = run_cc(3, false);
        assert_eq!(got.values, want);
        assert!(got.rounds >= 1);
    }

    #[test]
    fn cc_pin_variant_matches() {
        let (got, want) = run_cc(2, true);
        assert_eq!(got.values, want);
    }

    #[test]
    fn cc_single_node_matches() {
        let (got, want) = run_cc(1, false);
        assert_eq!(got.values, want);
    }
}
