//! # darray-graph — distributed graph analytics (§5.1)
//!
//! "To port a single-machine graph analytics engine to a distributed one,
//! we could simply replace the built-in arrays with our DArray ... and
//! reuse the computation engine and task scheduling components."
//!
//! This crate provides:
//!
//! * [`mod@rmat`] — the Graph500 R-MAT generator (the paper evaluates on
//!   rMat24: 2²⁴ vertices, 2²⁶ edges; the harness defaults to smaller
//!   scales, same structure);
//! * [`csr`] — compressed sparse row graphs;
//! * [`local`] — per-node subgraphs (each node owns a chunk-aligned vertex
//!   range and the out-edges of its owned vertices);
//! * [`pagerank`] / [`cc`] / [`bfs`] — PageRank, Connected Components and
//!   BFS over DArray, in plain and Pin-optimized variants (Figure 8's
//!   pattern: `apply(dst, add, contribution)` with local combining);
//! * [`gam_engine`] — the same algorithms ported to the GAM baseline
//!   (Atomic-verb neighbor updates under exclusive ownership);
//! * [`gemini`] — a Gemini-style bulk-synchronous message-passing baseline
//!   engine (dense-mode partition-aggregated delta exchange with a global
//!   barrier per superstep);
//! * [`sssp`] — weighted single-source shortest paths (extension);
//! * [`mod@reference`] — single-threaded reference implementations used by the
//!   test suite.

pub mod bfs;
pub mod cc;
pub mod csr;
pub mod gam_engine;
pub mod gemini;
pub mod local;
pub mod pagerank;
pub mod reference;
pub mod rmat;
pub mod sssp;

pub use csr::{Csr, EdgeList};
pub use local::LocalGraph;
pub use rmat::rmat;
