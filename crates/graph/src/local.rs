//! Per-node subgraphs: every node owns a chunk-aligned vertex range
//! (matching the DArray partition) and stores the out-edges of its owned
//! vertices locally — the "reuse the computation engine" part of porting a
//! single-machine engine (§5.1).

use darray::{Layout, DEFAULT_CHUNK_SIZE};

use crate::csr::{Csr, EdgeList};

/// The subgraph one node computes on.
pub struct LocalGraph {
    /// Owned vertex range (chunk-aligned, same partition as the vertex
    /// arrays).
    pub owned: std::ops::Range<usize>,
    /// Total vertices in the global graph.
    pub vertices: usize,
    /// CSR restricted to owned sources; `csr.neighbors(u - owned.start)`
    /// are the out-neighbors of global vertex `u`.
    csr: Csr,
}

impl LocalGraph {
    /// Partition `el` over `nodes` nodes; returns one `LocalGraph` per
    /// node. The partition matches `Layout::even(vertices, nodes, 512)`,
    /// i.e. the default DArray partition of the vertex arrays.
    pub fn partition(el: &EdgeList, nodes: usize) -> Vec<LocalGraph> {
        let layout = Layout::even(el.vertices, nodes, DEFAULT_CHUNK_SIZE);
        let mut per_node_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nodes];
        for &(u, v) in &el.edges {
            let owner = layout.home_of(u as usize);
            per_node_edges[owner].push((u, v));
        }
        (0..nodes)
            .map(|n| {
                let owned = layout.node_elems(n);
                let local_el = EdgeList {
                    vertices: owned.len(),
                    edges: per_node_edges[n]
                        .iter()
                        .map(|&(u, v)| (u - owned.start as u32, v))
                        .collect(),
                };
                LocalGraph {
                    owned,
                    vertices: el.vertices,
                    csr: Csr::from_edges(&local_el),
                }
            })
            .collect()
    }

    /// Edge-balanced partition: chunk-aligned contiguous vertex ranges with
    /// roughly equal out-edge counts per node. R-MAT graphs concentrate
    /// high-degree vertices at low ids, so the even split of
    /// [`LocalGraph::partition`] would leave node 0 with most of the work;
    /// real engines (Gemini's chunk-based partitioning, and DArray through
    /// its `partition_offset` constructor argument) balance by edges.
    /// Returns the per-node subgraphs plus the element offsets to pass as
    /// `ArrayOptions::partition_offset` so the vertex arrays use the same
    /// homes.
    pub fn partition_balanced(el: &EdgeList, nodes: usize) -> (Vec<LocalGraph>, Vec<usize>) {
        let chunk = DEFAULT_CHUNK_SIZE;
        let num_chunks = el.vertices.div_ceil(chunk).max(1);
        let mut chunk_edges = vec![0u64; num_chunks];
        for &(u, _) in &el.edges {
            chunk_edges[u as usize / chunk] += 1;
        }
        // Weight chunks by edges plus a small vertex term so empty regions
        // still spread out.
        let weights: Vec<u64> = chunk_edges.iter().map(|&e| e + 8).collect();
        let total: u64 = weights.iter().sum();
        let mut offsets = Vec::with_capacity(nodes);
        let mut acc = 0u64;
        let mut c = 0usize;
        for i in 0..nodes {
            offsets.push((c * chunk).min(el.vertices));
            let target = total * (i as u64 + 1) / nodes as u64;
            while c < num_chunks && acc < target {
                // Leave at least one chunk per remaining node.
                if num_chunks - c < nodes - i {
                    break;
                }
                acc += weights[c];
                c += 1;
            }
        }
        let layout = Layout::custom(el.vertices, nodes, chunk, &offsets);
        let mut per_node_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nodes];
        for &(u, v) in &el.edges {
            per_node_edges[layout.home_of(u as usize)].push((u, v));
        }
        let locals = (0..nodes)
            .map(|n| {
                let owned = layout.node_elems(n);
                let local_el = EdgeList {
                    vertices: owned.len(),
                    edges: per_node_edges[n]
                        .iter()
                        .map(|&(u, v)| (u - owned.start as u32, v))
                        .collect(),
                };
                LocalGraph {
                    owned,
                    vertices: el.vertices,
                    csr: Csr::from_edges(&local_el),
                }
            })
            .collect();
        (locals, offsets)
    }

    /// Out-degree of owned global vertex `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.csr.degree(u - self.owned.start)
    }

    /// Out-neighbors (global ids) of owned global vertex `u`.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        self.csr.neighbors(u - self.owned.start)
    }

    /// Number of locally stored edges.
    pub fn local_edges(&self) -> usize {
        self.csr.edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmat::rmat;

    #[test]
    fn partition_covers_all_vertices_and_edges() {
        let el = rmat(11, 4, 2);
        let parts = LocalGraph::partition(&el, 3);
        let total_vertices: usize = parts.iter().map(|p| p.owned.len()).sum();
        assert_eq!(total_vertices, el.vertices);
        let total_edges: usize = parts.iter().map(|p| p.local_edges()).sum();
        assert_eq!(total_edges, el.edges.len());
    }

    #[test]
    fn neighbors_match_global_graph() {
        let el = rmat(9, 4, 5);
        let global = Csr::from_edges(&el);
        let parts = LocalGraph::partition(&el, 4);
        for p in &parts {
            for u in p.owned.clone() {
                let mut a: Vec<u32> = p.neighbors(u).to_vec();
                let mut b: Vec<u32> = global.neighbors(u).to_vec();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "vertex {u}");
            }
        }
    }

    #[test]
    fn balanced_partition_equalizes_edges() {
        let el = rmat(13, 8, 4);
        let (even, _) = (LocalGraph::partition(&el, 4), 0);
        let (bal, offsets) = LocalGraph::partition_balanced(&el, 4);
        let max_even = even.iter().map(|p| p.local_edges()).max().unwrap();
        let max_bal = bal.iter().map(|p| p.local_edges()).max().unwrap();
        assert!(max_bal < max_even, "balanced {max_bal} vs even {max_even}");
        // Offsets are chunk-aligned, non-decreasing, start at 0.
        assert_eq!(offsets[0], 0);
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(offsets.iter().all(|o| o % 512 == 0 || *o == el.vertices));
        // Edges and vertices fully covered.
        let tv: usize = bal.iter().map(|p| p.owned.len()).sum();
        let te: usize = bal.iter().map(|p| p.local_edges()).sum();
        assert_eq!(tv, el.vertices);
        assert_eq!(te, el.edges.len());
        // Max node is within 2x of the mean (the even split is far worse).
        assert!(max_bal <= 2 * el.edges.len() / 4 + 512);
    }

    #[test]
    fn ownership_is_chunk_aligned() {
        let el = rmat(12, 2, 1);
        let parts = LocalGraph::partition(&el, 5);
        for p in &parts {
            assert_eq!(p.owned.start % 512, 0);
        }
    }
}
