//! A Gemini-style distributed graph engine (Zhu et al., OSDI 2016) — the
//! specialized message-passing baseline of §6.4.
//!
//! Gemini partitions vertices across nodes and, instead of shared memory,
//! exchanges *bulk aggregated updates* every superstep: each node
//! accumulates its contributions to every peer's vertex range in local
//! mirror buffers, ships one dense message per peer, reduces incoming
//! buffers, then synchronizes on a global barrier. Single-node runs touch
//! plain local arrays with no abstraction overhead at all — which is why
//! Gemini beats DArray-Pin on one node (Figure 16) — but every superstep
//! moves O(|V|) bytes per node pair and stalls on the barrier, which is
//! the structural reason for its weaker scaling (paper: 0.28 / 0.09
//! scalability on PR / CC versus DArray-Pin's 0.55 / 0.74).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use dsim::{Ctx, JoinHandle, SimBarrier};
use parking_lot::Mutex;
use rdma_fabric::{CostModel, Fabric, NetConfig, Nic, NodeId};

use crate::cc::PropagateResult;
use crate::csr::EdgeList;
use crate::local::LocalGraph;
use crate::pagerank::PrResult;

/// Messages between Gemini workers.
enum GMsg {
    /// Dense partial-update buffer for the receiver's vertex range.
    Delta { round: u32, data: Vec<u64> },
    /// Convergence flag for iterative algorithms.
    Flag { round: u32, changed: bool },
}

impl GMsg {
    fn bytes(&self) -> u64 {
        match self {
            GMsg::Delta { data, .. } => 8 + data.len() as u64 * 8,
            GMsg::Flag { .. } => 8,
        }
    }
}

struct Worker {
    node: NodeId,
    nodes: usize,
    nic: Arc<Nic<GMsg>>,
    stash: VecDeque<(NodeId, GMsg)>,
    cost: CostModel,
}

impl Worker {
    fn send(&self, ctx: &mut Ctx, dst: NodeId, msg: GMsg) {
        let bytes = msg.bytes();
        self.nic.send(ctx, dst, msg, bytes);
    }

    /// Collect one round's deltas from every peer (out-of-phase messages
    /// are stashed).
    fn collect_deltas(&mut self, ctx: &mut Ctx, round: u32) -> Vec<Vec<u64>> {
        let mut got = Vec::new();
        let mut i = 0;
        while i < self.stash.len() {
            if matches!(&self.stash[i].1, GMsg::Delta { round: r, .. } if *r == round) {
                if let Some((_, GMsg::Delta { data, .. })) = self.stash.remove(i) {
                    got.push(data);
                }
            } else {
                i += 1;
            }
        }
        let rx = self.nic.rx();
        while got.len() < self.nodes - 1 {
            let (src, msg) = rx.recv(ctx);
            ctx.charge(self.cost.rpc_handle_ns);
            match msg {
                GMsg::Delta { round: r, data } if r == round => got.push(data),
                other => self.stash.push_back((src, other)),
            }
        }
        got
    }

    /// Collect one round's flags; returns true if anyone changed.
    fn collect_flags(&mut self, ctx: &mut Ctx, round: u32) -> bool {
        let mut any = false;
        let mut seen = 0;
        let mut i = 0;
        while i < self.stash.len() {
            if matches!(&self.stash[i].1, GMsg::Flag { round: r, .. } if *r == round) {
                if let Some((_, GMsg::Flag { changed, .. })) = self.stash.remove(i) {
                    any |= changed;
                    seen += 1;
                }
            } else {
                i += 1;
            }
        }
        let rx = self.nic.rx();
        while seen < self.nodes - 1 {
            let (src, msg) = rx.recv(ctx);
            ctx.charge(self.cost.rpc_handle_ns);
            match msg {
                GMsg::Flag { round: r, changed } if r == round => {
                    any |= changed;
                    seen += 1;
                }
                other => self.stash.push_back((src, other)),
            }
        }
        any
    }
}

fn spawn_workers<F>(ctx: &mut Ctx, nodes: usize, net: NetConfig, f: F)
where
    F: Fn(&mut Ctx, Worker, SimBarrier) + Send + Sync + 'static,
{
    let fabric: Fabric<GMsg> = Fabric::new(nodes, net.clone());
    let barrier = SimBarrier::with_cost(nodes, 2 * net.prop_latency_ns);
    let f = Arc::new(f);
    let mut handles: Vec<JoinHandle> = Vec::new();
    for node in 0..nodes {
        let w = Worker {
            node,
            nodes,
            nic: fabric.nic(node),
            stash: VecDeque::new(),
            cost: CostModel::default(),
        };
        let b = barrier.clone();
        let f2 = f.clone();
        handles.push(ctx.spawn(&format!("gemini-{node}"), move |c| f2(c, w, b)));
    }
    for h in handles {
        h.join(ctx);
    }
}

/// Gemini PageRank: `iters` supersteps of dense delta exchange.
pub fn pagerank_gemini(
    ctx: &mut Ctx,
    el: &EdgeList,
    nodes: usize,
    iters: usize,
    net: NetConfig,
) -> PrResult {
    let n = el.vertices;
    let (locals, _offsets) = LocalGraph::partition_balanced(el, nodes);
    let locals = Arc::new(locals);
    let ranges: Arc<Vec<std::ops::Range<usize>>> =
        Arc::new(locals.iter().map(|l| l.owned.clone()).collect());
    let elapsed = Arc::new(AtomicU64::new(0));
    let out = Arc::new(Mutex::new(vec![0.0f64; n]));
    let (e2, o2) = (elapsed.clone(), out.clone());
    spawn_workers(ctx, nodes, net, move |ctx, mut w, barrier| {
        let me = w.node;
        let g = &locals[me];
        let owned = g.owned.clone();
        let cost = CostModel::default();
        // Per-edge: rank read, owner lookup, and an atomic add into the
        // mirror buffer (Gemini's scatter is multi-threaded in reality).
        let edge_ns = cost.native_access_ns * 2 + cost.atomic_rmw_ns;
        let mut rank = vec![1.0 / n as f64; owned.len()];
        barrier.wait(ctx);
        let t0 = ctx.now();
        for it in 0..iters as u32 {
            // Accumulate contributions into per-peer mirror buffers.
            let mut bufs: Vec<Vec<f64>> = ranges.iter().map(|r| vec![0.0; r.len()]).collect();
            for u in owned.clone() {
                let d = g.degree(u);
                ctx.charge(cost.native_access_ns + d as u64 * edge_ns);
                if d == 0 {
                    continue;
                }
                let c = rank[u - owned.start] / d as f64;
                for &v in g.neighbors(u) {
                    let v = v as usize;
                    let owner = ranges.partition_point(|r| r.end <= v).min(w.nodes - 1);
                    bufs[owner][v - ranges[owner].start] += c;
                }
            }
            // Ship every peer its dense buffer.
            #[allow(clippy::needless_range_loop)]
            for peer in 0..w.nodes {
                if peer == me {
                    continue;
                }
                let data: Vec<u64> = bufs[peer].iter().map(|x| x.to_bits()).collect();
                w.send(ctx, peer, GMsg::Delta { round: it, data });
            }
            let mut next = std::mem::take(&mut bufs[me]);
            // Reduce incoming buffers.
            for data in w.collect_deltas(ctx, it) {
                ctx.charge(cost.memcpy(data.len()) + data.len() as u64 * cost.op_apply_ns);
                for (i, bits) in data.into_iter().enumerate() {
                    next[i] += f64::from_bits(bits);
                }
            }
            // Damp.
            let base = 0.15 / n as f64;
            ctx.charge(owned.len() as u64 * cost.native_access_ns);
            for x in &mut next {
                *x = base + 0.85 * *x;
            }
            rank = next;
            barrier.wait(ctx);
        }
        e2.fetch_max(ctx.now() - t0, Ordering::Relaxed);
        // Gather (host-side; outside the timed window).
        o2.lock()[owned.clone()].copy_from_slice(&rank);
    });
    PrResult {
        elapsed: elapsed.load(Ordering::Relaxed),
        ranks: {
            let mut g = out.lock();
            std::mem::take(&mut *g)
        },
    }
}

/// Gemini Connected Components: min-label propagation with bulk delta
/// exchange until no label changes anywhere.
pub fn cc_gemini(ctx: &mut Ctx, el: &EdgeList, nodes: usize, net: NetConfig) -> PropagateResult {
    let sym = el.symmetrized();
    let n = sym.vertices;
    let (locals, _offsets) = LocalGraph::partition_balanced(&sym, nodes);
    let locals = Arc::new(locals);
    let ranges: Arc<Vec<std::ops::Range<usize>>> =
        Arc::new(locals.iter().map(|l| l.owned.clone()).collect());
    let elapsed = Arc::new(AtomicU64::new(0));
    let rounds_out = Arc::new(AtomicUsize::new(0));
    let out = Arc::new(Mutex::new(vec![0u64; n]));
    let (e2, r2, o2) = (elapsed.clone(), rounds_out.clone(), out.clone());
    spawn_workers(ctx, nodes, net, move |ctx, mut w, barrier| {
        let me = w.node;
        let g = &locals[me];
        let owned = g.owned.clone();
        let cost = CostModel::default();
        // Per-edge: rank read, owner lookup, and an atomic add into the
        // mirror buffer (Gemini's scatter is multi-threaded in reality).
        let edge_ns = cost.native_access_ns * 2 + cost.atomic_rmw_ns;
        let mut label: Vec<u64> = owned.clone().map(|v| v as u64).collect();
        barrier.wait(ctx);
        let t0 = ctx.now();
        let mut round = 0u32;
        loop {
            let mut bufs: Vec<Vec<u64>> = ranges.iter().map(|r| vec![u64::MAX; r.len()]).collect();
            for u in owned.clone() {
                let d = g.degree(u);
                ctx.charge(cost.native_access_ns + d as u64 * edge_ns);
                let lu = label[u - owned.start];
                for &v in g.neighbors(u) {
                    let v = v as usize;
                    let owner = ranges.partition_point(|r| r.end <= v).min(w.nodes - 1);
                    let slot = &mut bufs[owner][v - ranges[owner].start];
                    *slot = (*slot).min(lu);
                }
            }
            #[allow(clippy::needless_range_loop)]
            for peer in 0..w.nodes {
                if peer == me {
                    continue;
                }
                let data = std::mem::take(&mut bufs[peer]);
                w.send(ctx, peer, GMsg::Delta { round, data });
            }
            let own = std::mem::take(&mut bufs[me]);
            let mut changed = false;
            for (i, m) in own.into_iter().enumerate() {
                if m < label[i] {
                    label[i] = m;
                    changed = true;
                }
            }
            for data in w.collect_deltas(ctx, round) {
                ctx.charge(cost.memcpy(data.len()) + data.len() as u64 * cost.op_apply_ns);
                for (i, m) in data.into_iter().enumerate() {
                    if m < label[i] {
                        label[i] = m;
                        changed = true;
                    }
                }
            }
            // Exchange convergence flags.
            for peer in 0..w.nodes {
                if peer != me {
                    w.send(ctx, peer, GMsg::Flag { round, changed });
                }
            }
            let any = w.collect_flags(ctx, round) | changed;
            barrier.wait(ctx);
            round += 1;
            if !any {
                break;
            }
            assert!((round as usize) <= n + 2, "CC failed to converge");
        }
        e2.fetch_max(ctx.now() - t0, Ordering::Relaxed);
        if me == 0 {
            r2.store(round as usize, Ordering::Relaxed);
        }
        o2.lock()[owned.clone()].copy_from_slice(&label);
    });
    PropagateResult {
        elapsed: elapsed.load(Ordering::Relaxed),
        values: {
            let mut g = out.lock();
            std::mem::take(&mut *g)
        },
        rounds: rounds_out.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{cc_ref, pagerank_ref};
    use crate::rmat::rmat;
    use dsim::{Sim, SimConfig};

    #[test]
    fn gemini_pagerank_matches_reference() {
        let el = rmat(10, 4, 42);
        let want = pagerank_ref(&el, 3);
        let got = Sim::new(SimConfig::default())
            .run(move |ctx| pagerank_gemini(ctx, &el, 3, 3, NetConfig::instant()));
        assert_eq!(got.ranks.len(), want.len());
        for (a, b) in got.ranks.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn gemini_cc_matches_reference() {
        let el = rmat(9, 2, 11);
        let want = cc_ref(&el);
        let got = Sim::new(SimConfig::default())
            .run(move |ctx| cc_gemini(ctx, &el, 3, NetConfig::instant()));
        assert_eq!(got.values, want);
    }

    #[test]
    fn gemini_single_node_runs_without_messages() {
        let el = rmat(8, 4, 5);
        let want = pagerank_ref(&el, 2);
        let got = Sim::new(SimConfig::default())
            .run(move |ctx| pagerank_gemini(ctx, &el, 1, 2, NetConfig::default()));
        for (a, b) in got.ranks.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
