//! BFS distances by min-propagation over DArray (an extension beyond the
//! paper's two applications, exercising the same Operate machinery with a
//! partial contribution function).

use darray::{Cluster, Ctx};

use crate::cc::{min_propagate_darray, PropagateResult};
use crate::csr::EdgeList;

/// Distributed BFS from `src` over the directed graph; unreachable
/// vertices end at `u64::MAX`.
pub fn bfs_darray(
    ctx: &mut Ctx,
    cluster: &Cluster,
    el: &EdgeList,
    src: usize,
    pin: bool,
) -> PropagateResult {
    assert!(src < el.vertices);
    min_propagate_darray(
        ctx,
        cluster,
        el,
        move |v| if v == src { 0 } else { u64::MAX },
        |d| if d == u64::MAX { None } else { Some(d + 1) },
        pin,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::bfs_ref;
    use crate::rmat::rmat;
    use darray::{ClusterConfig, Sim, SimConfig};

    #[test]
    fn bfs_matches_reference() {
        let el = rmat(9, 4, 21);
        let want = bfs_ref(&el, 0);
        let got = Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, ClusterConfig::test_config(3));
            let r = bfs_darray(ctx, &cluster, &el, 0, false);
            cluster.shutdown(ctx);
            r
        });
        assert_eq!(got.values, want);
    }

    #[test]
    fn bfs_pin_matches_reference() {
        let el = rmat(8, 4, 22);
        let want = bfs_ref(&el, 3);
        let got = Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, ClusterConfig::test_config(2));
            let r = bfs_darray(ctx, &cluster, &el, 3, true);
            cluster.shutdown(ctx);
            r
        });
        assert_eq!(got.values, want);
    }

    #[test]
    fn isolated_source_reaches_nothing() {
        let el = EdgeList {
            vertices: 600,
            edges: vec![(1, 2)],
        };
        let got = Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, ClusterConfig::test_config(2));
            let r = bfs_darray(ctx, &cluster, &el, 0, false);
            cluster.shutdown(ctx);
            r
        });
        assert_eq!(got.values[0], 0);
        assert!(got.values[1..].iter().all(|&d| d == u64::MAX));
    }
}
