//! Edge lists and compressed-sparse-row graphs.

/// A plain directed edge list.
#[derive(Debug, Clone)]
pub struct EdgeList {
    /// Number of vertices (ids are `0..vertices`).
    pub vertices: usize,
    /// Directed edges `(src, dst)`.
    pub edges: Vec<(u32, u32)>,
}

impl EdgeList {
    /// Add the reverse of every edge (used for Connected Components, which
    /// needs undirected reachability).
    pub fn symmetrized(&self) -> EdgeList {
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        for &(u, v) in &self.edges {
            edges.push((u, v));
            edges.push((v, u));
        }
        EdgeList {
            vertices: self.vertices,
            edges,
        }
    }
}

/// Compressed sparse row adjacency (out-edges).
#[derive(Debug, Clone)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<u32>,
}

impl Csr {
    /// Build from an edge list.
    pub fn from_edges(el: &EdgeList) -> Self {
        let n = el.vertices;
        let mut deg = vec![0u64; n];
        for &(u, _) in &el.edges {
            deg[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; el.edges.len()];
        for &(u, v) in &el.edges {
            let c = &mut cursor[u as usize];
            targets[*c as usize] = v;
            *c += 1;
        }
        Self { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (directed) edges.
    #[inline]
    pub fn edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Out-neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EdgeList {
        EdgeList {
            vertices: 4,
            edges: vec![(0, 1), (0, 2), (2, 3), (3, 0), (0, 3)],
        }
    }

    #[test]
    fn csr_preserves_adjacency() {
        let g = Csr::from_edges(&tiny());
        assert_eq!(g.vertices(), 4);
        assert_eq!(g.edges(), 5);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 0);
        let mut n0: Vec<u32> = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2, 3]);
        assert_eq!(g.neighbors(2), &[3]);
    }

    #[test]
    fn symmetrized_doubles_edges() {
        let s = tiny().symmetrized();
        assert_eq!(s.edges.len(), 10);
        let g = Csr::from_edges(&s);
        assert_eq!(g.degree(1), 1); // gains the reverse of (0,1)
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Csr::from_edges(&EdgeList {
            vertices: 3,
            edges: vec![],
        });
        assert_eq!(g.vertices(), 3);
        assert_eq!(g.edges(), 0);
        assert_eq!(g.degree(1), 0);
        assert!(g.neighbors(2).is_empty());
    }
}
