//! Single-threaded reference implementations for correctness tests.

use crate::csr::{Csr, EdgeList};

/// PageRank with damping 0.85, uniform initialization `1/n`, and the same
/// update rule as the distributed engines (dangling mass is dropped, as in
/// the paper's Figure 8 sketch).
#[allow(clippy::needless_range_loop)]
pub fn pagerank_ref(el: &EdgeList, iters: usize) -> Vec<f64> {
    let n = el.vertices;
    let g = Csr::from_edges(el);
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iters {
        next.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n {
            let d = g.degree(u);
            if d == 0 {
                continue;
            }
            let c = rank[u] / d as f64;
            for &v in g.neighbors(u) {
                next[v as usize] += c;
            }
        }
        for v in 0..n {
            next[v] = 0.15 / n as f64 + 0.85 * next[v];
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Connected components by label propagation on the symmetrized graph;
/// each vertex ends with the minimum vertex id of its component.
pub fn cc_ref(el: &EdgeList) -> Vec<u64> {
    let n = el.vertices;
    let g = Csr::from_edges(&el.symmetrized());
    let mut label: Vec<u64> = (0..n as u64).collect();
    loop {
        let mut changed = false;
        for u in 0..n {
            for &v in g.neighbors(u) {
                let lu = label[u];
                let lv = label[v as usize];
                if lu < lv {
                    label[v as usize] = lu;
                    changed = true;
                } else if lv < lu {
                    label[u] = lv;
                    changed = true;
                }
            }
        }
        if !changed {
            return label;
        }
    }
}

/// BFS distances from `src` (directed edges); unreachable = `u64::MAX`.
pub fn bfs_ref(el: &EdgeList, src: usize) -> Vec<u64> {
    let g = Csr::from_edges(el);
    let mut dist = vec![u64::MAX; el.vertices];
    dist[src] = 0;
    let mut frontier = vec![src];
    let mut d = 0;
    while !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.neighbors(u) {
                if dist[v as usize] == u64::MAX {
                    dist[v as usize] = d;
                    next.push(v as usize);
                }
            }
        }
        frontier = next;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> EdgeList {
        // 0 -> 1 -> 2 -> 3, plus isolated 4.
        EdgeList {
            vertices: 5,
            edges: vec![(0, 1), (1, 2), (2, 3)],
        }
    }

    #[test]
    fn pagerank_mass_is_plausible() {
        let r = pagerank_ref(&line(), 20);
        assert_eq!(r.len(), 5);
        assert!(r.iter().all(|&x| x > 0.0));
        // Vertex 1 receives from 0; vertex 4 receives nothing but the base.
        assert!(r[1] > r[4]);
    }

    #[test]
    fn cc_labels_components() {
        let l = cc_ref(&line());
        assert_eq!(l[0], 0);
        assert_eq!(l[3], 0);
        assert_eq!(l[4], 4);
    }

    #[test]
    fn bfs_distances() {
        let d = bfs_ref(&line(), 0);
        assert_eq!(d, vec![0, 1, 2, 3, u64::MAX]);
    }

    #[test]
    fn cc_on_two_triangles() {
        let el = EdgeList {
            vertices: 6,
            edges: vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
        };
        let l = cc_ref(&el);
        assert_eq!(&l[..3], &[0, 0, 0]);
        assert_eq!(&l[3..], &[3, 3, 3]);
    }
}
