//! Distributed PageRank over DArray (Figure 8): each node walks its owned
//! vertices and `apply`s rank contributions to the neighbors' slots in the
//! next-rank array; the Operate interface combines remote contributions
//! locally and reduces them at each chunk's home node.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use darray::{ArrayOptions, Cluster, Ctx, DArray, OpId, PinMode, VTime};
use parking_lot::Mutex;

use crate::csr::EdgeList;
use crate::local::LocalGraph;

/// Result of a distributed PageRank run.
pub struct PrResult {
    /// Virtual time of the iteration loop (max over nodes), excluding graph
    /// loading and the final gather.
    pub elapsed: VTime,
    /// Final ranks (gathered at node 0).
    pub ranks: Vec<f64>,
}

/// Walk `owned` in chunk-sized windows (`owned.start` is chunk-aligned).
fn chunk_windows(
    owned: std::ops::Range<usize>,
    chunk: usize,
) -> impl Iterator<Item = std::ops::Range<usize>> {
    let mut at = owned.start;
    std::iter::from_fn(move || {
        if at >= owned.end {
            return None;
        }
        let hi = (at + chunk).min(owned.end);
        let r = at..hi;
        at = hi;
        Some(r)
    })
}

/// One scatter pass: contributions of owned vertices into `dst`.
fn scatter(
    ctx: &mut Ctx,
    g: &LocalGraph,
    src: &DArray<f64>,
    dst: &DArray<f64>,
    add: OpId,
    pin: bool,
) {
    let chunk = src.chunk_size();
    if pin {
        for w in chunk_windows(g.owned.clone(), chunk) {
            let p = src.pin(ctx, w.start, PinMode::Read);
            for u in w {
                let d = g.degree(u);
                if d == 0 {
                    continue;
                }
                let c = p.get(ctx, u) / d as f64;
                for &v in g.neighbors(u) {
                    dst.apply(ctx, v as usize, add, c);
                }
            }
            p.unpin();
        }
    } else {
        for u in g.owned.clone() {
            let d = g.degree(u);
            if d == 0 {
                continue;
            }
            let c = src.get(ctx, u) / d as f64;
            for &v in g.neighbors(u) {
                dst.apply(ctx, v as usize, add, c);
            }
        }
    }
}

/// Zero the owned range of `dst`.
fn zero_owned(ctx: &mut Ctx, g: &LocalGraph, dst: &DArray<f64>, pin: bool) {
    let chunk = dst.chunk_size();
    if pin {
        for w in chunk_windows(g.owned.clone(), chunk) {
            let p = dst.pin(ctx, w.start, PinMode::Write);
            for v in w {
                p.set(ctx, v, 0.0);
            }
            p.unpin();
        }
    } else {
        for v in g.owned.clone() {
            dst.set(ctx, v, 0.0);
        }
    }
}

/// Apply the damping rule to the owned range of `dst` (reading an owned
/// element recalls any outstanding Operated state and reduces it).
fn damp_owned(ctx: &mut Ctx, g: &LocalGraph, dst: &DArray<f64>, n: usize, pin: bool) {
    let base = 0.15 / n as f64;
    let chunk = dst.chunk_size();
    if pin {
        for w in chunk_windows(g.owned.clone(), chunk) {
            let p = dst.pin(ctx, w.start, PinMode::Write);
            for v in w {
                let s = p.get(ctx, v);
                p.set(ctx, v, base + 0.85 * s);
            }
            p.unpin();
        }
    } else {
        for v in g.owned.clone() {
            let s = dst.get(ctx, v);
            dst.set(ctx, v, base + 0.85 * s);
        }
    }
}

/// Run `iters` PageRank iterations on an existing cluster; `pin` selects
/// the DArray-Pin variant (§6.4).
pub fn pagerank_darray(
    ctx: &mut Ctx,
    cluster: &Cluster,
    el: &EdgeList,
    iters: usize,
    pin: bool,
) -> PrResult {
    let n = el.vertices;
    let nodes = cluster.config().nodes;
    let (locals, offsets) = LocalGraph::partition_balanced(el, nodes);
    let locals = Arc::new(locals);
    let opts = ArrayOptions {
        chunk_size: None,
        partition_offset: Some(offsets),
    };
    let add = cluster.ops().register_add_f64();
    let a = cluster.alloc_with::<f64>(n, opts.clone(), |_| 1.0 / n as f64);
    let b = cluster.alloc::<f64>(n, opts);
    let elapsed = Arc::new(AtomicU64::new(0));
    let out = Arc::new(Mutex::new(Vec::new()));
    let (e2, o2) = (elapsed.clone(), out.clone());
    cluster.run(ctx, 1, move |ctx, env| {
        let g = &locals[env.node];
        let arrs = [a.on(env.node), b.on(env.node)];
        env.barrier(ctx);
        let t0 = ctx.now();
        for it in 0..iters {
            let src = &arrs[it % 2];
            let dst = &arrs[(it + 1) % 2];
            zero_owned(ctx, g, dst, pin);
            env.barrier(ctx);
            scatter(ctx, g, src, dst, add, pin);
            env.barrier(ctx);
            damp_owned(ctx, g, dst, n, pin);
            env.barrier(ctx);
        }
        e2.fetch_max(ctx.now() - t0, Ordering::Relaxed);
        env.barrier(ctx);
        if env.node == 0 {
            let fin = &arrs[iters % 2];
            let mut v = Vec::with_capacity(n);
            for i in 0..n {
                v.push(fin.get(ctx, i));
            }
            *o2.lock() = v;
        }
    });
    PrResult {
        elapsed: elapsed.load(Ordering::Relaxed),
        ranks: {
            let mut g = out.lock();
            std::mem::take(&mut *g)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::pagerank_ref;
    use crate::rmat::rmat;
    use darray::{ClusterConfig, Sim, SimConfig};

    fn run(nodes: usize, pin: bool, iters: usize) -> PrResult {
        let el = rmat(10, 4, 42);
        Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, ClusterConfig::test_config(nodes));
            let r = pagerank_darray(ctx, &cluster, &el, iters, pin);
            cluster.shutdown(ctx);
            r
        })
    }

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn matches_reference_on_three_nodes() {
        let el = rmat(10, 4, 42);
        let want = pagerank_ref(&el, 3);
        let got = run(3, false, 3);
        assert!(close(&got.ranks, &want), "distributed PR diverged");
        assert!(got.elapsed > 0);
    }

    #[test]
    fn pin_variant_matches_too() {
        let el = rmat(10, 4, 42);
        let want = pagerank_ref(&el, 3);
        let got = run(2, true, 3);
        assert!(close(&got.ranks, &want), "pinned PR diverged");
    }

    #[test]
    fn pin_is_faster_than_plain() {
        let plain = run(2, false, 2);
        let pinned = run(2, true, 2);
        assert!(
            pinned.elapsed < plain.elapsed,
            "pin {} should beat plain {}",
            pinned.elapsed,
            plain.elapsed
        );
    }

    #[test]
    fn single_node_works() {
        // `run` always uses rmat(10, 4, 42); compare against the same graph.
        let el = rmat(10, 4, 42);
        let want = pagerank_ref(&el, 2);
        let got = run(1, false, 2);
        assert!(close(&got.ranks, &want));
    }
}
