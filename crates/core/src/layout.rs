//! Global array layout: chunking and the element→home-node partition.
//!
//! "By default, the global array is evenly partitioned among these nodes.
//! However, users have the option to specify a custom partition scheme by
//! providing the optional argument, partition_offset." (§3.2)
//!
//! Ownership is chunk-granular (the directory tracks chunks), so custom
//! partition offsets are rounded up to chunk boundaries.

use rdma_fabric::NodeId;

/// Immutable layout of one distributed array.
#[derive(Debug, Clone)]
pub struct Layout {
    len: usize,
    chunk_size: usize,
    /// `chunk_start[i]` = first chunk owned by node `i`; one extra sentinel
    /// entry equal to `num_chunks`.
    chunk_start: Vec<usize>,
}

impl Layout {
    /// Even partition of `len` elements over `nodes` nodes with the given
    /// chunk size.
    pub fn even(len: usize, nodes: usize, chunk_size: usize) -> Self {
        assert!(nodes > 0 && chunk_size > 0);
        let num_chunks = len.div_ceil(chunk_size).max(1);
        let base = num_chunks / nodes;
        let rem = num_chunks % nodes;
        let mut chunk_start = Vec::with_capacity(nodes + 1);
        let mut acc = 0;
        for i in 0..nodes {
            chunk_start.push(acc);
            acc += base + usize::from(i < rem);
        }
        chunk_start.push(num_chunks);
        debug_assert_eq!(acc, num_chunks);
        Self {
            len,
            chunk_size,
            chunk_start,
        }
    }

    /// Even partition over the first `active` nodes of a cluster
    /// pre-provisioned with `nodes` slots: nodes `active..nodes` start as
    /// `Joining` spares that own zero chunks until migration re-homes data
    /// onto them (DESIGN.md §15).
    pub fn even_prefix(len: usize, nodes: usize, active: usize, chunk_size: usize) -> Self {
        assert!(active > 0 && active <= nodes);
        let mut l = Self::even(len, active, chunk_size);
        let num_chunks = l.num_chunks();
        for _ in active..nodes {
            l.chunk_start.insert(l.chunk_start.len() - 1, num_chunks);
        }
        debug_assert_eq!(l.nodes(), nodes);
        l
    }

    /// Custom partition: `offsets[i]` is the first element owned by node
    /// `i` (rounded up to a chunk boundary). `offsets[0]` must be 0 and the
    /// sequence non-decreasing.
    pub fn custom(len: usize, nodes: usize, chunk_size: usize, offsets: &[usize]) -> Self {
        assert_eq!(offsets.len(), nodes, "one offset per node");
        assert_eq!(offsets[0], 0, "node 0 must start at element 0");
        let num_chunks = len.div_ceil(chunk_size).max(1);
        let mut chunk_start = Vec::with_capacity(nodes + 1);
        let mut prev = 0;
        for (i, &off) in offsets.iter().enumerate() {
            assert!(off >= prev, "offsets must be non-decreasing");
            assert!(off <= len, "offset beyond array length");
            prev = off;
            let c = off.div_ceil(chunk_size).min(num_chunks);
            let c = if i == 0 { 0 } else { c.max(chunk_start[i - 1]) };
            chunk_start.push(c);
        }
        chunk_start.push(num_chunks);
        Self {
            len,
            chunk_size,
            chunk_start,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length array.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Elements per chunk.
    #[inline]
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Number of nodes in the partition.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.chunk_start.len() - 1
    }

    /// Total number of chunks.
    #[inline]
    pub fn num_chunks(&self) -> usize {
        *self.chunk_start.last().unwrap()
    }

    /// Chunk containing element `idx`.
    #[inline]
    pub fn chunk_of(&self, idx: usize) -> usize {
        debug_assert!(idx < self.len);
        idx / self.chunk_size
    }

    /// Element offset within its chunk.
    #[inline]
    pub fn offset_in_chunk(&self, idx: usize) -> usize {
        idx % self.chunk_size
    }

    /// Home node of chunk `c`.
    #[inline]
    pub fn home_of_chunk(&self, c: usize) -> NodeId {
        debug_assert!(c < self.num_chunks());
        // partition_point returns the first node whose start is > c; the
        // owner is the node before it.
        self.chunk_start.partition_point(|&s| s <= c) - 1
    }

    /// Home node of element `idx`.
    #[inline]
    pub fn home_of(&self, idx: usize) -> NodeId {
        self.home_of_chunk(self.chunk_of(idx))
    }

    /// Chunks owned by `node`.
    #[inline]
    pub fn node_chunks(&self, node: NodeId) -> std::ops::Range<usize> {
        self.chunk_start[node]..self.chunk_start[node + 1]
    }

    /// Elements owned by `node` (chunk-aligned except possibly the global
    /// tail).
    pub fn node_elems(&self, node: NodeId) -> std::ops::Range<usize> {
        let r = self.node_chunks(node);
        (r.start * self.chunk_size)..(r.end * self.chunk_size).min(self.len)
    }

    /// Words (8-byte slots) of subarray storage `node` must allocate; every
    /// owned chunk is fully materialized (tail padding included).
    #[inline]
    pub fn subarray_words(&self, node: NodeId) -> usize {
        self.node_chunks(node).len() * self.chunk_size
    }

    /// Word offset of chunk `c` within its home node's subarray region.
    #[inline]
    pub fn chunk_home_offset(&self, c: usize) -> usize {
        let home = self.home_of_chunk(c);
        (c - self.chunk_start[home]) * self.chunk_size
    }

    /// Number of *valid* elements in chunk `c` (the global tail chunk may be
    /// partial).
    #[inline]
    pub fn chunk_len(&self, c: usize) -> usize {
        (self.len - c * self.chunk_size).min(self.chunk_size)
    }

    /// First element of chunk `c`.
    #[inline]
    pub fn chunk_first_elem(&self, c: usize) -> usize {
        c * self.chunk_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition_covers_all_chunks_disjointly() {
        let l = Layout::even(10_000, 3, 512);
        assert_eq!(l.num_chunks(), 20);
        let mut total = 0;
        for n in 0..3 {
            total += l.node_chunks(n).len();
        }
        assert_eq!(total, 20);
        for c in 0..l.num_chunks() {
            let h = l.home_of_chunk(c);
            assert!(l.node_chunks(h).contains(&c));
        }
    }

    #[test]
    fn even_partition_is_balanced() {
        let l = Layout::even(512 * 12, 4, 512);
        for n in 0..4 {
            assert_eq!(l.node_chunks(n).len(), 3);
        }
    }

    #[test]
    fn home_of_element_matches_chunk_home() {
        let l = Layout::even(5_000, 4, 128);
        for idx in [0, 127, 128, 2_499, 4_999] {
            assert_eq!(l.home_of(idx), l.home_of_chunk(l.chunk_of(idx)));
        }
    }

    #[test]
    fn tail_chunk_is_partial() {
        let l = Layout::even(1_000, 2, 512);
        assert_eq!(l.num_chunks(), 2);
        assert_eq!(l.chunk_len(0), 512);
        assert_eq!(l.chunk_len(1), 488);
    }

    #[test]
    fn custom_partition_rounds_to_chunks() {
        // Node 1 asked to start at element 600 -> rounded up to chunk 2
        // (element 1024).
        let l = Layout::custom(4_096, 2, 512, &[0, 600]);
        assert_eq!(l.node_chunks(0), 0..2);
        assert_eq!(l.node_chunks(1), 2..8);
        assert_eq!(l.home_of(1023), 0);
        assert_eq!(l.home_of(1024), 1);
    }

    #[test]
    fn custom_partition_allows_empty_nodes() {
        let l = Layout::custom(1_024, 3, 512, &[0, 0, 512]);
        assert_eq!(l.node_chunks(0).len(), 0);
        assert_eq!(l.node_chunks(1), 0..1);
        assert_eq!(l.node_chunks(2), 1..2);
    }

    #[test]
    fn subarray_words_pad_tail_chunk() {
        let l = Layout::even(1_000, 2, 512);
        assert_eq!(l.subarray_words(0), 512);
        assert_eq!(l.subarray_words(1), 512); // padded to a full chunk
        assert_eq!(l.node_elems(1), 512..1_000);
    }

    #[test]
    fn chunk_home_offset_is_word_offset_in_subarray() {
        let l = Layout::even(512 * 6, 3, 512);
        for c in 0..6 {
            let off = l.chunk_home_offset(c);
            assert_eq!(off % 512, 0);
            assert!(off < l.subarray_words(l.home_of_chunk(c)));
        }
        assert_eq!(l.chunk_home_offset(0), 0);
        assert_eq!(l.chunk_home_offset(1), 512);
        assert_eq!(l.chunk_home_offset(2), 0); // first chunk of node 1
    }

    #[test]
    fn single_node_owns_everything() {
        let l = Layout::even(100, 1, 512);
        assert_eq!(l.num_chunks(), 1);
        assert_eq!(l.home_of(99), 0);
        assert_eq!(l.subarray_words(0), 512);
    }

    #[test]
    fn even_prefix_gives_spare_nodes_zero_chunks() {
        let l = Layout::even_prefix(512 * 6, 4, 2, 512);
        assert_eq!(l.nodes(), 4);
        assert_eq!(l.num_chunks(), 6);
        assert_eq!(l.node_chunks(0), 0..3);
        assert_eq!(l.node_chunks(1), 3..6);
        assert_eq!(l.node_chunks(2).len(), 0);
        assert_eq!(l.node_chunks(3).len(), 0);
        for c in 0..6 {
            assert!(l.home_of_chunk(c) < 2);
        }
    }

    #[test]
    fn more_nodes_than_chunks_leaves_some_nodes_empty() {
        let l = Layout::even(512, 4, 512);
        assert_eq!(l.num_chunks(), 1);
        assert_eq!(l.home_of_chunk(0), 0);
        assert_eq!(l.node_chunks(3).len(), 0);
    }
}
