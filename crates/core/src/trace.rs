//! Structured protocol tracing for debugging: set `DARRAY_TRACE_CHUNK=<n>`
//! to print every protocol transition and event touching that chunk to
//! stderr, optionally narrowed to one array with `DARRAY_TRACE_ARRAY=<id>`.
//!
//! Transitions come from the sans-I/O machines in [`crate::protocol`] as
//! [`Transition`] records (old state, new state, trigger); the executor
//! forwards them here and counts them in `NodeStats::transitions`, so
//! tracing and accounting share one source of truth instead of ad-hoc
//! format strings scattered through the runtime.

use std::sync::OnceLock;

use crate::protocol::Transition;

static TRACE_CHUNK: OnceLock<Option<u32>> = OnceLock::new();
static TRACE_ARRAY: OnceLock<Option<u32>> = OnceLock::new();

#[inline]
fn traced_chunk() -> Option<u32> {
    *TRACE_CHUNK.get_or_init(|| {
        std::env::var("DARRAY_TRACE_CHUNK")
            .ok()
            .and_then(|v| v.parse().ok())
    })
}

/// Optional additional filter: only trace this array id
/// (`DARRAY_TRACE_ARRAY`).
#[inline]
fn array_matches(id: u32) -> bool {
    TRACE_ARRAY
        .get_or_init(|| {
            std::env::var("DARRAY_TRACE_ARRAY")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .map(|a| a == id)
        .unwrap_or(true)
}

/// Is tracing active for this (array, chunk)?
#[inline]
pub(crate) fn enabled(array: u32, chunk: u32) -> bool {
    traced_chunk() == Some(chunk) && array_matches(array)
}

/// Print a machine-emitted state transition.
pub(crate) fn transition(array: u32, chunk: u32, node: usize, now: u64, t: &Transition) {
    if enabled(array, chunk) {
        eprintln!(
            "[chunk {chunk}] t={now} node{node} {} -> {} ({})",
            t.from, t.to, t.trigger
        );
    }
}

/// Print a free-form protocol event (requests, fills, continuations).
/// `what` is only formatted when the filters match.
#[inline]
pub(crate) fn event(array: u32, chunk: u32, node: usize, now: u64, what: std::fmt::Arguments<'_>) {
    if enabled(array, chunk) {
        eprintln!("[chunk {chunk}] t={now} node{node} {what}");
    }
}
