//! Ad-hoc protocol tracing for debugging: set `DARRAY_TRACE_CHUNK=<n>` to
//! print every protocol event touching that chunk to stderr.

use std::sync::OnceLock;

static TRACE_CHUNK: OnceLock<Option<u32>> = OnceLock::new();
static TRACE_ARRAY: OnceLock<Option<u32>> = OnceLock::new();

#[inline]
pub(crate) fn traced_chunk() -> Option<u32> {
    *TRACE_CHUNK.get_or_init(|| {
        std::env::var("DARRAY_TRACE_CHUNK")
            .ok()
            .and_then(|v| v.parse().ok())
    })
}

/// Optional additional filter: only trace this array id
/// (`DARRAY_TRACE_ARRAY`).
#[inline]
pub(crate) fn array_matches(id: u32) -> bool {
    TRACE_ARRAY
        .get_or_init(|| {
            std::env::var("DARRAY_TRACE_ARRAY")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .map(|a| a == id)
        .unwrap_or(true)
}

macro_rules! trace_chunk {
    ($chunk:expr, $($arg:tt)*) => {
        if let Some(tc) = crate::trace::traced_chunk() {
            if tc == $chunk as u32 {
                eprintln!("[chunk {}] {}", $chunk, format!($($arg)*));
            }
        }
    };
}

pub(crate) use trace_chunk;
