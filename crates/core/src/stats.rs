//! Per-node runtime statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing one node's DArray activity. All fields are
/// cheap relaxed atomics; snapshot with [`NodeStats::snapshot`].
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Fast-path accesses that succeeded immediately.
    pub fast_hits: AtomicU64,
    /// Slow-path requests submitted to the runtime.
    pub slow_misses: AtomicU64,
    /// Cache fills completed (read, write or operate grants).
    pub fills: AtomicU64,
    /// Cachelines evicted by the reclamation scan.
    pub evictions: AtomicU64,
    /// Dirty writebacks sent (voluntary or recalled).
    pub writebacks: AtomicU64,
    /// Operand flushes sent (voluntary or recalled).
    pub operand_flushes: AtomicU64,
    /// Invalidations performed on this node's copies.
    pub invalidations: AtomicU64,
    /// Protocol messages handled by runtime threads.
    pub rpcs_handled: AtomicU64,
    /// Local requests handled by runtime threads.
    pub local_handled: AtomicU64,
    /// Operator applications combined locally (Operated state).
    pub local_combines: AtomicU64,
    /// Lock acquisitions granted by this node's lock tables.
    pub locks_granted: AtomicU64,
    /// Prefetch fills issued.
    pub prefetches: AtomicU64,
    /// Recall/downgrade messages honored by this node (home pulled back a
    /// dirty or operated copy we held).
    pub recalls: AtomicU64,
    /// Operand flushes *reduced into* this node's home subarray (each is one
    /// remote node's combined Operated contribution).
    pub operated_reductions: AtomicU64,
    /// Protocol state transitions executed by this node's machines (home
    /// directory + local cache), as emitted by `protocol::Transition`.
    pub transitions: AtomicU64,
    /// Reliable-RPC timeout expirations (each triggers a retransmit or, at
    /// the retry limit, a peer-down declaration). Zero unless
    /// `ClusterConfig::fault` is set.
    pub rpc_timeouts: AtomicU64,
    /// Reliable-RPC retransmissions posted.
    pub retransmits: AtomicU64,
    /// Duplicate RPCs suppressed at the Rx/runtime boundary.
    pub dup_rpcs: AtomicU64,
    /// Peers this node declared down after exhausting retries.
    pub peers_down: AtomicU64,
    /// Locks held by (or granted to) dead peers that this node's lock
    /// tables reclaimed during peer-down recovery.
    pub orphaned_locks_reclaimed: AtomicU64,
    /// Operated epochs this node's directory machines closed by abort
    /// because a contributor died before flushing its operands.
    pub epochs_aborted: AtomicU64,
    /// Dead peers pruned from directory sharer sets and transient wait
    /// sets during peer-down recovery.
    pub sharers_pruned: AtomicU64,
    /// Peers this node moved to *Suspected* after exhausting retries
    /// (includes suspicions resolved instantly by a fresh incoming lease).
    pub suspicions: AtomicU64,
    /// Suspicions refuted — by a quorum vote naming the peer alive, or by
    /// the suspect's own traffic refreshing its lease — after which the
    /// peer was re-admitted and its parked traffic replayed.
    pub refutations: AtomicU64,
    /// Suspicions a quorum promoted to confirmed deaths. Always equal to
    /// `peers_down` (kept separate so the membership ledger — suspicions =
    /// refutations + confirmed + pending — balances on its own terms).
    pub confirmed_deaths: AtomicU64,
    /// Gauge (not a counter): this node's current membership-view epoch,
    /// i.e. the number of deaths it has confirmed so far.
    pub membership_epoch: AtomicU64,
    /// Dirty-chunk flushes persisted to the durable chunk store before the
    /// protocol acknowledged them (persist-before-ack, DESIGN.md §14).
    /// Zero unless a durability policy is configured.
    pub flush_persists: AtomicU64,
    /// Log records replayed when this node's durable chunk store was
    /// opened (includes superseded records of re-persisted chunks).
    pub log_replays: AtomicU64,
    /// Distinct chunk images recovered from the durable log at bring-up
    /// (latest epoch per chunk) and overlaid onto home subarrays.
    pub recovered_chunks: AtomicU64,
    /// Chunks this node handed to a new home: migrations that committed and
    /// departed (DESIGN.md §15). Zero outside elastic mode.
    pub migrations_out: AtomicU64,
    /// Chunk migrations that landed here: this node adopted the chunk as
    /// its new authoritative home.
    pub migrations_in: AtomicU64,
    /// Requests parked behind a migration fence and later replayed —
    /// forwarded to the new home or re-serviced once the fence lifted.
    pub parked_replays: AtomicU64,
}

/// Point-in-time copy of [`NodeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStatsSnapshot {
    pub fast_hits: u64,
    pub slow_misses: u64,
    pub fills: u64,
    pub evictions: u64,
    pub writebacks: u64,
    pub operand_flushes: u64,
    pub invalidations: u64,
    pub rpcs_handled: u64,
    pub local_handled: u64,
    pub local_combines: u64,
    pub locks_granted: u64,
    pub prefetches: u64,
    pub recalls: u64,
    pub operated_reductions: u64,
    pub transitions: u64,
    pub rpc_timeouts: u64,
    pub retransmits: u64,
    pub dup_rpcs: u64,
    pub peers_down: u64,
    pub orphaned_locks_reclaimed: u64,
    pub epochs_aborted: u64,
    pub sharers_pruned: u64,
    pub suspicions: u64,
    pub refutations: u64,
    pub confirmed_deaths: u64,
    pub membership_epoch: u64,
    pub flush_persists: u64,
    pub log_replays: u64,
    pub recovered_chunks: u64,
    pub migrations_out: u64,
    pub migrations_in: u64,
    pub parked_replays: u64,
    /// Bytes this node's transport handed to the wire (payload plus backend
    /// framing). Filled in by `Cluster::stats` from the transport backend;
    /// always zero in a bare [`NodeStats::snapshot`].
    pub bytes_tx: u64,
    /// Bytes this node's transport received from the wire.
    pub bytes_rx: u64,
    /// Frames (SENDs plus one-sided WRITEs) this node's transport posted.
    pub frames: u64,
    /// Completion events the transport observed for posted work.
    pub completions: u64,
    /// Egress flushes the transport committed (doorbell rings; always
    /// `frames == tx_flushes + frames_coalesced`). Overlaid by
    /// `Cluster::stats` like the other transport counters.
    pub tx_flushes: u64,
    /// Flushes that carried two or more frames (one doorbell amortized
    /// over a batch).
    pub doorbell_batches: u64,
    /// Frames that rode an already-open batch instead of ringing their
    /// own doorbell.
    pub frames_coalesced: u64,
    /// High-water mark of the per-link egress ring, in frames.
    pub ring_hwm: u64,
    /// Bytes currently held by this node's durable chunk log (header plus
    /// framed records, including the not-yet-compacted suffix). Filled in
    /// by `Cluster::stats` from the chunk store; always zero in a bare
    /// [`NodeStats::snapshot`] and under `durability.policy = none`.
    pub log_bytes: u64,
    /// Bytes of this node's newest durable checkpoint sidecar (0 before
    /// the first checkpoint).
    pub checkpoint_bytes: u64,
    /// Checkpoints taken by this node's chunk store (periodic trigger plus
    /// explicit `Cluster::checkpoint_all` calls).
    pub compactions: u64,
    /// Log records dropped by compaction — the prefix covered by a
    /// checkpoint generation and truncated from the log.
    pub truncated_records: u64,
}

impl NodeStats {
    #[inline]
    pub(crate) fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// Raise a gauge-style field to `v` (monotone; used for
    /// `membership_epoch`, which tracks a level rather than a count).
    #[inline]
    pub(crate) fn raise(field: &AtomicU64, v: u64) {
        field.fetch_max(v, Ordering::Relaxed);
    }

    /// Copy out all counters.
    pub fn snapshot(&self) -> NodeStatsSnapshot {
        NodeStatsSnapshot {
            fast_hits: self.fast_hits.load(Ordering::Relaxed),
            slow_misses: self.slow_misses.load(Ordering::Relaxed),
            fills: self.fills.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            operand_flushes: self.operand_flushes.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            rpcs_handled: self.rpcs_handled.load(Ordering::Relaxed),
            local_handled: self.local_handled.load(Ordering::Relaxed),
            local_combines: self.local_combines.load(Ordering::Relaxed),
            locks_granted: self.locks_granted.load(Ordering::Relaxed),
            prefetches: self.prefetches.load(Ordering::Relaxed),
            recalls: self.recalls.load(Ordering::Relaxed),
            operated_reductions: self.operated_reductions.load(Ordering::Relaxed),
            transitions: self.transitions.load(Ordering::Relaxed),
            rpc_timeouts: self.rpc_timeouts.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            dup_rpcs: self.dup_rpcs.load(Ordering::Relaxed),
            peers_down: self.peers_down.load(Ordering::Relaxed),
            orphaned_locks_reclaimed: self.orphaned_locks_reclaimed.load(Ordering::Relaxed),
            epochs_aborted: self.epochs_aborted.load(Ordering::Relaxed),
            sharers_pruned: self.sharers_pruned.load(Ordering::Relaxed),
            suspicions: self.suspicions.load(Ordering::Relaxed),
            refutations: self.refutations.load(Ordering::Relaxed),
            confirmed_deaths: self.confirmed_deaths.load(Ordering::Relaxed),
            membership_epoch: self.membership_epoch.load(Ordering::Relaxed),
            flush_persists: self.flush_persists.load(Ordering::Relaxed),
            log_replays: self.log_replays.load(Ordering::Relaxed),
            recovered_chunks: self.recovered_chunks.load(Ordering::Relaxed),
            migrations_out: self.migrations_out.load(Ordering::Relaxed),
            migrations_in: self.migrations_in.load(Ordering::Relaxed),
            parked_replays: self.parked_replays.load(Ordering::Relaxed),
            // Transport counters live in the backend, not in NodeStats;
            // `Cluster::stats` overlays them onto the snapshot.
            bytes_tx: 0,
            bytes_rx: 0,
            frames: 0,
            completions: 0,
            tx_flushes: 0,
            doorbell_batches: 0,
            frames_coalesced: 0,
            ring_hwm: 0,
            // Store counters live in the chunk store; `Cluster::stats`
            // overlays them too.
            log_bytes: 0,
            checkpoint_bytes: 0,
            compactions: 0,
            truncated_records: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_zero_and_bump() {
        let s = NodeStats::default();
        assert_eq!(s.snapshot(), NodeStatsSnapshot::default());
        NodeStats::bump(&s.fast_hits);
        NodeStats::bump(&s.fast_hits);
        NodeStats::bump(&s.evictions);
        let snap = s.snapshot();
        assert_eq!(snap.fast_hits, 2);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.fills, 0);
    }
}
