//! The **sans-I/O coherence-protocol core**: the extended 4-state directory
//! protocol (Unshared / Shared / Dirty / Operated, §4.3 and Figure 9)
//! expressed as two pure state machines, decoupled from every execution
//! concern.
//!
//! * [`home::HomeMachine`] — the home-side **directory machine** of one
//!   chunk: the global truth of who holds which rights, the transient
//!   phases of multi-message transitions, and the queue of requests
//!   waiting for the chunk to stabilize.
//! * [`cache::CacheMachine`] — the requester-side **cache machine** of one
//!   chunk on one non-home node: given a snapshot of the node's local
//!   rights (a [`cache::CacheView`]), it decides how to react to local
//!   requests, fills, invalidations and recalls.
//!
//! Both machines consume typed events and return a list of [`home::HomeAction`]s
//! or [`cache::CacheAction`]s. They perform **no I/O whatsoever**: no
//! simulator context, no channels, no threads, no locks, no memory regions.
//! Time enters only as an integer argument; randomness never enters. The
//! runtime layer (`crate::runtime`) is a thin *executor* that translates
//! mailbox messages into events and actions into fabric calls, and the test
//! suite (`tests/protocol_model.rs`) drives the machines through exhaustive
//! event interleavings with plain function calls — no cluster required.
//!
//! The module is deliberately dependency-free with respect to the execution
//! substrate: it imports nothing from `dsim`, `crate::comm`, `crate::msg`
//! or `crate::shared`. Local waiters are an opaque generic payload `W`
//! (instantiated with a wait-cell by the runtime and with plain integers by
//! tests), which is what keeps the machines testable with plain function
//! calls.
#![deny(missing_docs)]

pub mod cache;
pub mod home;
pub mod locks;

pub use cache::{AfterDrain, CacheAction, CacheEvent, CacheMachine, CacheView};
pub use home::{HomeAction, HomeEvent, HomeMachine, MigInPhase, MigOutPhase, Transient};
pub use locks::{LockKind, LockSource, LockTable};

/// A node identifier. Structurally identical to `rdma_fabric::NodeId`
/// (both are `usize`); re-declared here so the protocol core does not
/// depend on the fabric crate.
pub type NodeId = usize;

/// Sentinel cacheline index: no cacheline attached.
pub const LINE_NONE: u32 = u32::MAX;
/// Sentinel cacheline index: the chunk's data lives in the home subarray.
pub const LINE_HOME: u32 = u32::MAX - 1;

/// "No operator" tag, stored in a dentry whose state is not `Operated`.
pub const NOTAG: u32 = u32::MAX;

/// What a requester wants from a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A readable (Shared) copy.
    Read,
    /// Exclusive (Dirty) ownership.
    Write,
    /// Membership in the Operated set under this operator id.
    Operate(u32),
}

/// Where a directory request came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Requester<W> {
    /// An application thread on the home node; `W` is the opaque completion
    /// token the executor will wake.
    Local(W),
    /// A remote node; fills are RDMA-written to `dst_off` in its cache
    /// region.
    Remote {
        /// The requesting node.
        node: NodeId,
        /// Destination word offset in the requester's cache region.
        dst_off: u64,
    },
}

/// One directory request: who wants the chunk, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request<W> {
    /// Origin of the request.
    pub source: Requester<W>,
    /// Rights requested.
    pub kind: Kind,
}

/// A structured protocol-transition record, emitted by both machines for
/// every state change. The executor counts these in `NodeStats` and prints
/// them when `DARRAY_TRACE_CHUNK` tracing is active; the model tests use
/// them to measure state × event coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State name before the transition.
    pub from: &'static str,
    /// State name after the transition.
    pub to: &'static str,
    /// What caused it (event or rule name).
    pub trigger: &'static str,
}

/// Protocol counters the machines ask the executor to bump. Kept abstract
/// so the machines stay free of atomics and shared state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// A fill or Operated grant completed on this node.
    Fills,
    /// A Shared copy was invalidated on this node.
    Invalidations,
    /// Dirty data was written back to its home.
    Writebacks,
    /// Combined operands were flushed to the home.
    OperandFlushes,
    /// A recall (dirty recall, downgrade, or Operated recall) was honored.
    Recalls,
    /// A remote flush was reduced into the home subarray.
    OperatedReductions,
    /// A cacheline was evicted by the reclamation scan.
    Evictions,
    /// A dead peer was pruned from a sharer set or transient wait set.
    SharersPruned,
    /// An Operated epoch was closed by abort: a contributor died before
    /// flushing, so its operands are lost (fail-stop).
    EpochsAborted,
    /// A dirty-chunk flush was persisted to the durable chunk store before
    /// the protocol acknowledged it (persist-before-ack, DESIGN.md §14).
    /// Zero unless a durability policy is configured.
    FlushPersists,
    /// A chunk this node homed was handed to a new home: the migration
    /// committed and the chunk departed (DESIGN.md §15).
    MigrationsOut,
    /// A chunk migration landed here: this node adopted the chunk as its
    /// new authoritative home.
    MigrationsIn,
    /// A request that arrived during a migration fence was parked and later
    /// replayed — forwarded to the new home by the old one, or re-serviced
    /// from the parked queue once the fence lifted.
    ParkedReplays,
}
