//! The requester-side **cache machine** of one chunk on one non-home node
//! (Figure 9, requester rows).
//!
//! Unlike the stateful [`HomeMachine`](super::home::HomeMachine), the cache
//! machine is a *pure function*: the chunk's local state lives in the
//! node's dentry (atomics shared with the application fast path), so the
//! executor snapshots it into a [`CacheView`] and passes it with every
//! event. [`CacheMachine::on_event`] inspects the view and returns the
//! [`CacheAction`]s to perform — it never mutates shared state itself.

use crate::state::LocalState;

use super::{Counter, Kind, NodeId, Transition, NOTAG};

/// Snapshot of a chunk's dentry, taken by the executor right before
/// consulting the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheView {
    /// Local access rights (the dentry's atomic state byte).
    pub state: LocalState,
    /// Operator tag if `state` is (Filling)Operated, [`NOTAG`] otherwise.
    pub op_tag: u32,
    /// Attached cacheline index (may be a sentinel).
    pub line: u32,
    /// True if a Figure-5 drain is pending on this chunk (delay flag set or
    /// a deferred continuation queued).
    pub draining: bool,
}

/// What to do once a Figure-5 drain completes. Mirrors the runtime's
/// drain continuations one-to-one; the machine decides the follow-up via
/// [`CacheEvent::Drained`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AfterDrain {
    /// Invalidate a Shared copy and acknowledge to `reply_to`.
    Invalidate {
        /// The cacheline to release.
        line: u32,
        /// The home node awaiting the ack.
        reply_to: NodeId,
    },
    /// Write Dirty data back and invalidate (recall or eviction).
    WritebackInvalidate {
        /// The cacheline holding the dirty data.
        line: u32,
    },
    /// Write Dirty data back but keep a Shared copy.
    Downgrade {
        /// The cacheline holding the dirty data.
        line: u32,
    },
    /// Flush combined operands and invalidate (recall or eviction).
    FlushInvalidate {
        /// The cacheline holding the combined operands.
        line: u32,
        /// The operator they were combined under.
        op: u32,
    },
    /// Drop a Shared copy silently (eviction).
    EvictShared {
        /// The cacheline to release.
        line: u32,
    },
    /// After dropping a Shared copy, request an upgrade.
    Upgrade {
        /// The cacheline to reuse for the fill.
        line: u32,
        /// Rights to request.
        kind: Kind,
    },
    /// After flushing an Operated copy, request different rights.
    FlushThenUpgrade {
        /// The cacheline to flush and reuse.
        line: u32,
        /// The operator the flushed operands belong to.
        old_op: u32,
        /// Rights to request next.
        kind: Kind,
    },
}

/// Everything the requester-side cache machine can react to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// A local application thread missed on this chunk. The executor holds
    /// its wait-cell; [`CacheAction::QueueWaiter`] /
    /// [`CacheAction::WakeRequester`] tell it what to do with it.
    Request {
        /// Rights wanted.
        kind: Kind,
        /// True if the chunk's home node is declared down.
        home_down: bool,
        /// True if a deferred drain continuation is queued for this chunk.
        drain_pending: bool,
    },
    /// The executor allocated cacheline `line` for the pending Invalid-miss
    /// of `kind` (response to [`CacheAction::AllocLine`]).
    LineAllocated {
        /// The freshly allocated cacheline.
        line: u32,
        /// The miss kind it serves.
        kind: Kind,
    },
    /// A fill notification arrived (data already RDMA-written to our line).
    FillDone {
        /// Rights granted: `Shared` or `Exclusive`.
        granted: LocalState,
    },
    /// An Operated grant arrived (no data travels for grants).
    GrantDone {
        /// The operator granted.
        op: u32,
    },
    /// The home asks us to drop our Shared copy.
    Invalidate {
        /// Home node to acknowledge to.
        from: NodeId,
    },
    /// The home recalls our Dirty ownership (write it back, invalidate).
    RecallDirty,
    /// The home downgrades our Dirty ownership (write back, keep Shared).
    DowngradeDirty,
    /// The home recalls our Operated membership under `op`.
    RecallOperated {
        /// The operator epoch being closed.
        op: u32,
    },
    /// The eviction scan picked this chunk's line for reclamation.
    Evict,
    /// A drain started by [`CacheAction::BeginDrain`] completed.
    Drained {
        /// The follow-up recorded at drain start.
        after: AfterDrain,
        /// True if the chunk's home node is declared down *now*.
        home_down: bool,
    },
    /// The chunk's home node was declared down (requester-side reset).
    HomeDown,
    /// The chunk's home node restarted and rejoined at a bumped membership
    /// epoch (DESIGN.md §14). Its directory came back *cold* — rebuilt from
    /// its durable log, with no memory of our copies — so every local
    /// right on this chunk is unsound and must be dropped: a Shared copy
    /// could silently diverge from a regranted Dirty owner, a Dirty copy
    /// would never be recalled. Unlike [`CacheEvent::HomeDown`], which
    /// resets only in-flight states (stable rights stay usable against a
    /// dead home), this resets stable rights too.
    HomeRestarted,
    /// The chunk's authoritative home migrated to another node
    /// (DESIGN.md §15). The new home's directory starts cold — the recall
    /// fence revoked every outstanding right before the transfer, so by the
    /// time this notice arrives no sound local right can exist; any rights
    /// still recorded here are stale grants from the departed home and must
    /// be dropped exactly as after a home restart.
    HomeMoved,
}

/// Everything the requester-side cache machine can ask its executor to do.
/// Actions must be executed in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAction {
    /// Park the current requester's wait-cell on the dentry.
    QueueWaiter,
    /// Wake the current requester: its rights are (already) satisfied, or
    /// it must re-check and observe an error.
    WakeRequester,
    /// Wake every waiter parked on the dentry.
    WakeAllWaiters,
    /// Begin a Figure-5 drain towards `target` (installing `tag`); deliver
    /// [`CacheEvent::Drained`] with `after` once references are gone.
    BeginDrain {
        /// State installed at drain start.
        target: LocalState,
        /// Operator tag installed at drain start.
        tag: u32,
        /// Continuation to run at completion.
        after: AfterDrain,
    },
    /// Allocate a cacheline (evicting if needed) and feed
    /// [`CacheEvent::LineAllocated`] back.
    AllocLine {
        /// The miss kind the line will serve.
        kind: Kind,
    },
    /// Attach cacheline `line` to the dentry.
    SetLine {
        /// The cacheline index.
        line: u32,
    },
    /// Detach and free cacheline `line` (sentinels are skipped).
    ReleaseLine {
        /// The cacheline index.
        line: u32,
    },
    /// Enter a transient Filling state (keeps the current op tag).
    SetTransient {
        /// The Filling state to enter.
        state: LocalState,
    },
    /// Install new rights and tag on the dentry (Figure-6 promotion).
    Promote {
        /// New local state.
        state: LocalState,
        /// New operator tag.
        tag: u32,
    },
    /// Fill cacheline `line` with operator `op`'s identity element.
    InitOperandBuffer {
        /// The cacheline to initialize.
        line: u32,
        /// The operator whose identity to use.
        op: u32,
    },
    /// Send `EvictNotice` to the home.
    SendEvictNotice,
    /// Send `InvalidateAck` to `to`.
    SendInvalidateAck {
        /// The home node awaiting the ack.
        to: NodeId,
    },
    /// RDMA-write the line back to the home subarray and send
    /// `WritebackNotice`.
    SendWriteback {
        /// The cacheline holding the data.
        line: u32,
        /// True to keep a Shared copy (downgrade), false to invalidate.
        downgrade: bool,
        /// True to detach and free the line afterwards.
        release: bool,
    },
    /// Send the line's combined operands to the home as `OperandFlush`.
    SendFlush {
        /// The cacheline holding the operands.
        line: u32,
        /// The operator they belong to.
        op: u32,
        /// True to detach and free the line afterwards.
        release: bool,
    },
    /// Send the upgrade request matching `kind` (fill lands in `line`).
    SendUpgrade {
        /// Destination cacheline for the fill.
        line: u32,
        /// Rights to request.
        kind: Kind,
    },
    /// A read miss completed its request; the executor may issue
    /// sequential-pattern prefetches (policy stays in the executor).
    PrefetchHint,
    /// A state transition happened (structured trace).
    Trace(Transition),
    /// Bump a protocol counter.
    Count(Counter),
}

/// The requester-side cache machine: a pure event → actions function over
/// a dentry snapshot.
pub struct CacheMachine;

impl CacheMachine {
    /// Decide how to react to `ev` given the dentry snapshot `view`.
    /// Returns actions in execution order; an empty vector means the event
    /// is stale and deliberately ignored (crossing-message cases).
    pub fn on_event(view: &CacheView, ev: CacheEvent) -> Vec<CacheAction> {
        match ev {
            CacheEvent::Request {
                kind,
                home_down,
                drain_pending,
            } => Self::request(view, kind, home_down, drain_pending),
            CacheEvent::LineAllocated { line, kind } => Self::line_allocated(line, kind),
            CacheEvent::FillDone { granted } => Self::fill_done(view, granted),
            CacheEvent::GrantDone { op } => Self::grant_done(view, op),
            CacheEvent::Invalidate { from } => {
                if view.state == LocalState::Shared && !view.draining {
                    vec![CacheAction::BeginDrain {
                        target: LocalState::Invalid,
                        tag: NOTAG,
                        after: AfterDrain::Invalidate {
                            line: view.line,
                            reply_to: from,
                        },
                    }]
                } else {
                    // Our copy is already gone or on its way out — an
                    // EvictNotice (or upgrade drop) from us is already in
                    // flight on the same FIFO link and will satisfy the
                    // home's ack set. Sending an extra ack here would be a
                    // *stale* ack that could corrupt a later invalidation
                    // epoch.
                    vec![]
                }
            }
            CacheEvent::RecallDirty => {
                if view.state == LocalState::Exclusive && !view.draining {
                    vec![
                        CacheAction::Count(Counter::Recalls),
                        CacheAction::BeginDrain {
                            target: LocalState::Invalid,
                            tag: NOTAG,
                            after: AfterDrain::WritebackInvalidate { line: view.line },
                        },
                    ]
                } else {
                    // A voluntary writeback is already in flight (FIFO
                    // guarantees the home sees it).
                    vec![]
                }
            }
            CacheEvent::DowngradeDirty => {
                if view.state == LocalState::Exclusive && !view.draining {
                    vec![
                        CacheAction::Count(Counter::Recalls),
                        CacheAction::BeginDrain {
                            target: LocalState::Shared,
                            tag: NOTAG,
                            after: AfterDrain::Downgrade { line: view.line },
                        },
                    ]
                } else {
                    vec![]
                }
            }
            CacheEvent::RecallOperated { op } => {
                if view.state == LocalState::Operated && !view.draining && view.op_tag == op {
                    vec![
                        CacheAction::Count(Counter::Recalls),
                        CacheAction::BeginDrain {
                            target: LocalState::Invalid,
                            tag: NOTAG,
                            after: AfterDrain::FlushInvalidate {
                                line: view.line,
                                op,
                            },
                        },
                    ]
                } else {
                    // Nothing to flush — a voluntary flush of this operator
                    // is already in flight on the same FIFO link (eviction
                    // or operator change always flushes before leaving the
                    // Operated state) and will satisfy the home's flush
                    // set. Replying with an extra empty flush would be a
                    // *stale* message that could remove us from a LATER
                    // Operated epoch's sharer set (observed in property
                    // testing as a lost operand).
                    vec![]
                }
            }
            CacheEvent::Evict => Self::evict(view),
            CacheEvent::Drained { after, home_down } => Self::drained(after, home_down),
            CacheEvent::HomeDown => {
                if !view.state.in_flight() || view.draining {
                    // Stable states keep working locally; a delayed
                    // (draining) chunk is cleaned up by its continuation's
                    // own home-down check.
                    vec![]
                } else {
                    vec![
                        CacheAction::ReleaseLine { line: view.line },
                        CacheAction::Promote {
                            state: LocalState::Invalid,
                            tag: NOTAG,
                        },
                        CacheAction::Trace(Transition {
                            from: view.state.name(),
                            to: LocalState::Invalid.name(),
                            trigger: "home-down",
                        }),
                        CacheAction::WakeAllWaiters,
                    ]
                }
            }
            CacheEvent::HomeRestarted => {
                if view.state == LocalState::Invalid || view.draining {
                    // Nothing held; a draining chunk was already torn down
                    // by the home-down path (a restart is always preceded
                    // by a death declaration) and its continuation's own
                    // home-down check finishes the cleanup.
                    vec![]
                } else {
                    vec![
                        CacheAction::ReleaseLine { line: view.line },
                        CacheAction::Promote {
                            state: LocalState::Invalid,
                            tag: NOTAG,
                        },
                        CacheAction::Trace(Transition {
                            from: view.state.name(),
                            to: LocalState::Invalid.name(),
                            trigger: "home-restarted",
                        }),
                        CacheAction::WakeAllWaiters,
                    ]
                }
            }
            CacheEvent::HomeMoved => {
                if view.state == LocalState::Invalid || view.draining {
                    // Nothing held (the recall fence already revoked any
                    // stable copy); a draining chunk finishes its teardown
                    // through its own continuation.
                    vec![]
                } else {
                    vec![
                        CacheAction::ReleaseLine { line: view.line },
                        CacheAction::Promote {
                            state: LocalState::Invalid,
                            tag: NOTAG,
                        },
                        CacheAction::Trace(Transition {
                            from: view.state.name(),
                            to: LocalState::Invalid.name(),
                            trigger: "home-moved",
                        }),
                        CacheAction::WakeAllWaiters,
                    ]
                }
            }
        }
    }

    /// A local miss: Figure 9's requester column, keyed on current rights.
    fn request(
        view: &CacheView,
        kind: Kind,
        home_down: bool,
        drain_pending: bool,
    ) -> Vec<CacheAction> {
        // A deferred transition on this chunk is pending: queue behind it.
        if drain_pending {
            return vec![CacheAction::QueueWaiter];
        }
        // The chunk's home is dead: never start a fill that cannot
        // complete. If a fill is already in flight, the HomeDown reset
        // (queued behind this request) will wake the waiter; otherwise wake
        // it now so the application thread re-checks and observes
        // `NodeUnavailable`.
        if home_down {
            return if view.state.in_flight() {
                vec![CacheAction::QueueWaiter]
            } else {
                vec![CacheAction::WakeRequester]
            };
        }
        match view.state {
            s if s.in_flight() => vec![CacheAction::QueueWaiter],
            LocalState::Exclusive => vec![CacheAction::WakeRequester],
            LocalState::Shared => match kind {
                Kind::Read => vec![CacheAction::WakeRequester],
                Kind::Write => vec![
                    CacheAction::QueueWaiter,
                    CacheAction::BeginDrain {
                        target: LocalState::FillingExclusive,
                        tag: NOTAG,
                        after: AfterDrain::Upgrade {
                            line: view.line,
                            kind: Kind::Write,
                        },
                    },
                ],
                Kind::Operate(op) => vec![
                    CacheAction::QueueWaiter,
                    CacheAction::BeginDrain {
                        target: LocalState::FillingOperated,
                        tag: op,
                        after: AfterDrain::Upgrade {
                            line: view.line,
                            kind: Kind::Operate(op),
                        },
                    },
                ],
            },
            LocalState::Operated => {
                if kind == Kind::Operate(view.op_tag) {
                    return vec![CacheAction::WakeRequester];
                }
                let (target, new_tag) = match kind {
                    Kind::Read => (LocalState::FillingShared, NOTAG),
                    Kind::Write => (LocalState::FillingExclusive, NOTAG),
                    Kind::Operate(op) => (LocalState::FillingOperated, op),
                };
                vec![
                    CacheAction::QueueWaiter,
                    CacheAction::BeginDrain {
                        target,
                        tag: new_tag,
                        after: AfterDrain::FlushThenUpgrade {
                            line: view.line,
                            old_op: view.op_tag,
                            kind,
                        },
                    },
                ]
            }
            LocalState::Invalid => vec![CacheAction::QueueWaiter, CacheAction::AllocLine { kind }],
            LocalState::FillingShared
            | LocalState::FillingExclusive
            | LocalState::FillingOperated => unreachable!("covered by in_flight arm"),
        }
    }

    /// The executor allocated a line for an Invalid-miss: enter the
    /// matching Filling state and send the request.
    fn line_allocated(line: u32, kind: Kind) -> Vec<CacheAction> {
        let mut out = vec![CacheAction::SetLine { line }];
        match kind {
            Kind::Read => {
                out.push(CacheAction::SetTransient {
                    state: LocalState::FillingShared,
                });
                out.push(CacheAction::SendUpgrade {
                    line,
                    kind: Kind::Read,
                });
                // Prefetch only on read misses: write/operate fills are
                // never speculatively useful.
                out.push(CacheAction::PrefetchHint);
            }
            Kind::Write => {
                out.push(CacheAction::SetTransient {
                    state: LocalState::FillingExclusive,
                });
                out.push(CacheAction::SendUpgrade {
                    line,
                    kind: Kind::Write,
                });
            }
            Kind::Operate(op) => {
                out.push(CacheAction::Promote {
                    state: LocalState::FillingOperated,
                    tag: op,
                });
                out.push(CacheAction::SendUpgrade {
                    line,
                    kind: Kind::Operate(op),
                });
            }
        }
        out
    }

    /// A fill completed: the data was RDMA-written into our cacheline
    /// before this notification (RC FIFO ordering).
    fn fill_done(view: &CacheView, granted: LocalState) -> Vec<CacheAction> {
        let expected = match granted {
            LocalState::Shared => LocalState::FillingShared,
            LocalState::Exclusive => LocalState::FillingExclusive,
            _ => unreachable!("fills grant Shared or Exclusive"),
        };
        if view.state != expected {
            // Stale: the line was torn down (e.g. HomeDown) while the fill
            // was in flight.
            return vec![];
        }
        vec![
            CacheAction::Promote {
                state: granted,
                tag: NOTAG,
            },
            CacheAction::Count(Counter::Fills),
            CacheAction::Trace(Transition {
                from: view.state.name(),
                to: granted.name(),
                trigger: "fill",
            }),
            CacheAction::WakeAllWaiters,
        ]
    }

    /// An Operated grant arrived: initialize the operand buffer to the
    /// operator's identity (no data travels for grants).
    fn grant_done(view: &CacheView, op: u32) -> Vec<CacheAction> {
        if view.state != LocalState::FillingOperated {
            // Stale: the line was torn down while the grant was in flight.
            return vec![];
        }
        vec![
            CacheAction::InitOperandBuffer {
                line: view.line,
                op,
            },
            CacheAction::Promote {
                state: LocalState::Operated,
                tag: op,
            },
            CacheAction::Count(Counter::Fills),
            CacheAction::Trace(Transition {
                from: view.state.name(),
                to: LocalState::Operated.name(),
                trigger: "grant",
            }),
            CacheAction::WakeAllWaiters,
        ]
    }

    /// The eviction scan picked this line (executor already checked the
    /// delay flag and refcount): drain towards Invalid with the follow-up
    /// the current state requires.
    fn evict(view: &CacheView) -> Vec<CacheAction> {
        let after = match view.state {
            LocalState::Shared => AfterDrain::EvictShared { line: view.line },
            LocalState::Exclusive => AfterDrain::WritebackInvalidate { line: view.line },
            LocalState::Operated => AfterDrain::FlushInvalidate {
                line: view.line,
                op: view.op_tag,
            },
            _ => return vec![], // in-flight or Invalid: not evictable
        };
        vec![
            CacheAction::Count(Counter::Evictions),
            CacheAction::BeginDrain {
                target: LocalState::Invalid,
                tag: NOTAG,
                after,
            },
        ]
    }

    /// A drain completed: perform the recorded follow-up.
    ///
    /// Every arm checks `home_down`: if the chunk's home died while the
    /// drain was pending, no action may reference it — acks, notices,
    /// writebacks and flushes would all be sent to a corpse (and a pending
    /// upgrade would strand the chunk in a Filling state forever). Local
    /// cleanup still runs, and waiters are woken so application threads
    /// re-check and observe `NodeUnavailable`. Dirty data and combined
    /// operands are dropped — fail-stop: data homed on a crashed node is
    /// lost.
    fn drained(after: AfterDrain, home_down: bool) -> Vec<CacheAction> {
        match after {
            AfterDrain::Invalidate { line, reply_to } => {
                if home_down {
                    vec![
                        CacheAction::ReleaseLine { line },
                        CacheAction::Count(Counter::Invalidations),
                        CacheAction::WakeAllWaiters,
                    ]
                } else {
                    vec![
                        CacheAction::ReleaseLine { line },
                        CacheAction::SendInvalidateAck { to: reply_to },
                        CacheAction::Count(Counter::Invalidations),
                        CacheAction::WakeAllWaiters,
                    ]
                }
            }
            AfterDrain::WritebackInvalidate { line } => {
                if home_down {
                    vec![
                        CacheAction::ReleaseLine { line },
                        CacheAction::WakeAllWaiters,
                    ]
                } else {
                    vec![
                        CacheAction::SendWriteback {
                            line,
                            downgrade: false,
                            release: true,
                        },
                        CacheAction::Count(Counter::Writebacks),
                        CacheAction::WakeAllWaiters,
                    ]
                }
            }
            AfterDrain::Downgrade { line } => {
                if home_down {
                    // Keep the Shared copy the drain installed (graceful
                    // degradation: it stays readable locally); just skip the
                    // wire writeback.
                    let _ = line;
                    vec![CacheAction::WakeAllWaiters]
                } else {
                    vec![
                        CacheAction::SendWriteback {
                            line,
                            downgrade: true,
                            release: false,
                        },
                        CacheAction::Count(Counter::Writebacks),
                        CacheAction::WakeAllWaiters,
                    ]
                }
            }
            AfterDrain::FlushInvalidate { line, op } => {
                if home_down {
                    let _ = op;
                    vec![
                        CacheAction::ReleaseLine { line },
                        CacheAction::WakeAllWaiters,
                    ]
                } else {
                    vec![
                        CacheAction::SendFlush {
                            line,
                            op,
                            release: true,
                        },
                        CacheAction::Count(Counter::OperandFlushes),
                        CacheAction::WakeAllWaiters,
                    ]
                }
            }
            AfterDrain::EvictShared { line } => {
                if home_down {
                    vec![
                        CacheAction::ReleaseLine { line },
                        CacheAction::WakeAllWaiters,
                    ]
                } else {
                    vec![
                        CacheAction::ReleaseLine { line },
                        CacheAction::SendEvictNotice,
                        CacheAction::WakeAllWaiters,
                    ]
                }
            }
            AfterDrain::Upgrade { line, kind } => {
                // If the home died while the drain was pending, an upgrade
                // request would never be answered: reset to Invalid instead
                // of stranding the chunk in a Filling state.
                if home_down {
                    vec![
                        CacheAction::ReleaseLine { line },
                        CacheAction::Promote {
                            state: LocalState::Invalid,
                            tag: NOTAG,
                        },
                        CacheAction::WakeAllWaiters,
                    ]
                } else {
                    vec![
                        CacheAction::SendEvictNotice,
                        CacheAction::SendUpgrade { line, kind },
                    ]
                }
            }
            AfterDrain::FlushThenUpgrade { line, old_op, kind } => {
                if home_down {
                    // The combined operands have nowhere to go (fail-stop:
                    // data homed on a crashed node is lost).
                    vec![
                        CacheAction::ReleaseLine { line },
                        CacheAction::Promote {
                            state: LocalState::Invalid,
                            tag: NOTAG,
                        },
                        CacheAction::WakeAllWaiters,
                    ]
                } else {
                    vec![
                        CacheAction::SendFlush {
                            line,
                            op: old_op,
                            release: false,
                        },
                        CacheAction::Count(Counter::OperandFlushes),
                        CacheAction::SendUpgrade { line, kind },
                    ]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(state: LocalState, op_tag: u32, line: u32) -> CacheView {
        CacheView {
            state,
            op_tag,
            line,
            draining: false,
        }
    }

    #[test]
    fn invalid_miss_allocates_then_fills() {
        let v = view(LocalState::Invalid, NOTAG, super::super::LINE_NONE);
        let acts = CacheMachine::on_event(
            &v,
            CacheEvent::Request {
                kind: Kind::Read,
                home_down: false,
                drain_pending: false,
            },
        );
        assert_eq!(
            acts,
            vec![
                CacheAction::QueueWaiter,
                CacheAction::AllocLine { kind: Kind::Read }
            ]
        );
        let acts = CacheMachine::on_event(
            &v,
            CacheEvent::LineAllocated {
                line: 4,
                kind: Kind::Read,
            },
        );
        assert!(acts.contains(&CacheAction::SetLine { line: 4 }));
        assert!(acts.contains(&CacheAction::SendUpgrade {
            line: 4,
            kind: Kind::Read
        }));
        assert!(acts.contains(&CacheAction::PrefetchHint));
    }

    #[test]
    fn shared_write_upgrades_via_drain() {
        let v = view(LocalState::Shared, NOTAG, 7);
        let acts = CacheMachine::on_event(
            &v,
            CacheEvent::Request {
                kind: Kind::Write,
                home_down: false,
                drain_pending: false,
            },
        );
        assert_eq!(acts[0], CacheAction::QueueWaiter);
        assert!(matches!(
            acts[1],
            CacheAction::BeginDrain {
                target: LocalState::FillingExclusive,
                after: AfterDrain::Upgrade {
                    line: 7,
                    kind: Kind::Write
                },
                ..
            }
        ));
        // The drain completes: evict-notice + upgrade travel together.
        let acts = CacheMachine::on_event(
            &v,
            CacheEvent::Drained {
                after: AfterDrain::Upgrade {
                    line: 7,
                    kind: Kind::Write,
                },
                home_down: false,
            },
        );
        assert_eq!(
            acts,
            vec![
                CacheAction::SendEvictNotice,
                CacheAction::SendUpgrade {
                    line: 7,
                    kind: Kind::Write
                }
            ]
        );
    }

    #[test]
    fn operated_tag_match_hits_locally() {
        let v = view(LocalState::Operated, 3, 2);
        let acts = CacheMachine::on_event(
            &v,
            CacheEvent::Request {
                kind: Kind::Operate(3),
                home_down: false,
                drain_pending: false,
            },
        );
        assert_eq!(acts, vec![CacheAction::WakeRequester]);
        // A different operator flushes first, then upgrades.
        let acts = CacheMachine::on_event(
            &v,
            CacheEvent::Request {
                kind: Kind::Operate(9),
                home_down: false,
                drain_pending: false,
            },
        );
        assert!(matches!(
            acts[1],
            CacheAction::BeginDrain {
                target: LocalState::FillingOperated,
                tag: 9,
                after: AfterDrain::FlushThenUpgrade {
                    line: 2,
                    old_op: 3,
                    kind: Kind::Operate(9)
                },
            }
        ));
    }

    #[test]
    fn stale_recall_is_ignored() {
        // Invalid copy: the recall crossed our voluntary writeback.
        let v = view(LocalState::Invalid, NOTAG, super::super::LINE_NONE);
        assert!(CacheMachine::on_event(&v, CacheEvent::RecallDirty).is_empty());
        // Draining copy: the flush is already on its way.
        let mut v = view(LocalState::Operated, 3, 2);
        v.draining = true;
        assert!(CacheMachine::on_event(&v, CacheEvent::RecallOperated { op: 3 }).is_empty());
        // Wrong epoch: never answer a stale operator recall.
        v.draining = false;
        assert!(CacheMachine::on_event(&v, CacheEvent::RecallOperated { op: 8 }).is_empty());
    }

    #[test]
    fn recall_dirty_writes_back_and_invalidates() {
        let v = view(LocalState::Exclusive, NOTAG, 5);
        let acts = CacheMachine::on_event(&v, CacheEvent::RecallDirty);
        assert_eq!(acts[0], CacheAction::Count(Counter::Recalls));
        assert!(matches!(
            acts[1],
            CacheAction::BeginDrain {
                target: LocalState::Invalid,
                after: AfterDrain::WritebackInvalidate { line: 5 },
                ..
            }
        ));
        let acts = CacheMachine::on_event(
            &v,
            CacheEvent::Drained {
                after: AfterDrain::WritebackInvalidate { line: 5 },
                home_down: false,
            },
        );
        assert_eq!(
            acts[0],
            CacheAction::SendWriteback {
                line: 5,
                downgrade: false,
                release: true
            }
        );
    }

    #[test]
    fn fill_done_promotes_and_wakes() {
        let v = view(LocalState::FillingShared, NOTAG, 1);
        let acts = CacheMachine::on_event(
            &v,
            CacheEvent::FillDone {
                granted: LocalState::Shared,
            },
        );
        assert!(acts.contains(&CacheAction::Promote {
            state: LocalState::Shared,
            tag: NOTAG
        }));
        assert!(acts.contains(&CacheAction::Count(Counter::Fills)));
        assert_eq!(acts.last(), Some(&CacheAction::WakeAllWaiters));
    }

    #[test]
    fn home_down_resets_in_flight_fills_only() {
        let v = view(LocalState::FillingExclusive, NOTAG, 3);
        let acts = CacheMachine::on_event(&v, CacheEvent::HomeDown);
        assert!(acts.contains(&CacheAction::ReleaseLine { line: 3 }));
        assert!(acts.contains(&CacheAction::Promote {
            state: LocalState::Invalid,
            tag: NOTAG
        }));
        // Stable copies keep working locally (graceful degradation).
        let v = view(LocalState::Exclusive, NOTAG, 3);
        assert!(CacheMachine::on_event(&v, CacheEvent::HomeDown).is_empty());
    }

    #[test]
    fn home_restart_resets_stable_rights_too() {
        // Unlike HomeDown, a restarted (cold-directory) home invalidates
        // even stable local rights — they are unsound against a directory
        // that no longer remembers granting them.
        for state in [
            LocalState::Shared,
            LocalState::Exclusive,
            LocalState::FillingShared,
        ] {
            let v = view(state, NOTAG, 3);
            let acts = CacheMachine::on_event(&v, CacheEvent::HomeRestarted);
            assert!(
                acts.contains(&CacheAction::ReleaseLine { line: 3 }),
                "{state:?} must release its line on home restart"
            );
            assert!(acts.contains(&CacheAction::Promote {
                state: LocalState::Invalid,
                tag: NOTAG
            }));
            assert_eq!(acts.last(), Some(&CacheAction::WakeAllWaiters));
        }
        // Nothing held: nothing to do.
        let v = view(LocalState::Invalid, NOTAG, super::super::LINE_NONE);
        assert!(CacheMachine::on_event(&v, CacheEvent::HomeRestarted).is_empty());
    }

    #[test]
    fn home_moved_resets_stale_rights_like_a_restart() {
        for state in [
            LocalState::Shared,
            LocalState::Exclusive,
            LocalState::FillingShared,
        ] {
            let v = view(state, NOTAG, 4);
            let acts = CacheMachine::on_event(&v, CacheEvent::HomeMoved);
            assert!(
                acts.contains(&CacheAction::ReleaseLine { line: 4 }),
                "{state:?} must release its line when the home moves"
            );
            assert!(acts.contains(&CacheAction::Promote {
                state: LocalState::Invalid,
                tag: NOTAG
            }));
            assert_eq!(acts.last(), Some(&CacheAction::WakeAllWaiters));
        }
        // The common case after the recall fence: nothing held, no-op.
        let v = view(LocalState::Invalid, NOTAG, super::super::LINE_NONE);
        assert!(CacheMachine::on_event(&v, CacheEvent::HomeMoved).is_empty());
        // Mid-drain: the continuation owns the teardown.
        let mut v = view(LocalState::Shared, NOTAG, 4);
        v.draining = true;
        assert!(CacheMachine::on_event(&v, CacheEvent::HomeMoved).is_empty());
    }

    #[test]
    fn upgrade_after_home_death_resets_instead_of_stranding() {
        let v = view(LocalState::FillingExclusive, NOTAG, 7);
        let acts = CacheMachine::on_event(
            &v,
            CacheEvent::Drained {
                after: AfterDrain::Upgrade {
                    line: 7,
                    kind: Kind::Write,
                },
                home_down: true,
            },
        );
        assert_eq!(acts[0], CacheAction::ReleaseLine { line: 7 });
        assert!(acts.contains(&CacheAction::Promote {
            state: LocalState::Invalid,
            tag: NOTAG
        }));
        assert!(!acts
            .iter()
            .any(|a| matches!(a, CacheAction::SendUpgrade { .. })));
    }

    #[test]
    fn no_drain_continuation_messages_a_dead_home() {
        // Every AfterDrain variant must stay silent when the home is dead:
        // cleanup is local-only and waiters are woken to observe the error.
        let cases = [
            AfterDrain::Invalidate {
                line: 1,
                reply_to: 0,
            },
            AfterDrain::WritebackInvalidate { line: 1 },
            AfterDrain::Downgrade { line: 1 },
            AfterDrain::FlushInvalidate { line: 1, op: 3 },
            AfterDrain::EvictShared { line: 1 },
            AfterDrain::Upgrade {
                line: 1,
                kind: Kind::Write,
            },
            AfterDrain::FlushThenUpgrade {
                line: 1,
                old_op: 3,
                kind: Kind::Operate(9),
            },
        ];
        for after in cases {
            let v = view(LocalState::Invalid, NOTAG, 1);
            let acts = CacheMachine::on_event(
                &v,
                CacheEvent::Drained {
                    after,
                    home_down: true,
                },
            );
            assert!(
                !acts.iter().any(|a| matches!(
                    a,
                    CacheAction::SendInvalidateAck { .. }
                        | CacheAction::SendWriteback { .. }
                        | CacheAction::SendFlush { .. }
                        | CacheAction::SendEvictNotice
                        | CacheAction::SendUpgrade { .. }
                )),
                "{after:?} with home_down produced a send: {acts:?}"
            );
            assert!(
                acts.contains(&CacheAction::WakeAllWaiters),
                "{after:?} with home_down must wake waiters: {acts:?}"
            );
        }
    }

    #[test]
    fn eviction_follows_state_specific_protocol() {
        let shared = view(LocalState::Shared, NOTAG, 1);
        let acts = CacheMachine::on_event(&shared, CacheEvent::Evict);
        assert!(matches!(
            acts[1],
            CacheAction::BeginDrain {
                after: AfterDrain::EvictShared { line: 1 },
                ..
            }
        ));
        let operated = view(LocalState::Operated, 4, 2);
        let acts = CacheMachine::on_event(&operated, CacheEvent::Evict);
        assert!(matches!(
            acts[1],
            CacheAction::BeginDrain {
                after: AfterDrain::FlushInvalidate { line: 2, op: 4 },
                ..
            }
        ));
        let filling = view(LocalState::FillingShared, NOTAG, 3);
        assert!(CacheMachine::on_event(&filling, CacheEvent::Evict).is_empty());
    }
}
