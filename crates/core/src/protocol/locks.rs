//! Sans-I/O distributed element-lock table (Figure 3's `RLock` / `WLock` /
//! `UnLock`).
//!
//! Each element's lock is managed by the home node of the element's chunk;
//! acquisitions and releases are routed there (one round trip for remote
//! callers), with FIFO queuing of conflicting requests. Like the directory
//! machines in this module, the table performs no I/O: it records who holds
//! and who waits, and returns the grants the executor must deliver.
//!
//! Crash-consistency: every holder and waiter is tagged with its origin, so
//! when a peer is declared dead ([`LockTable::forget_peer`]) the table can
//! reclaim the locks it held, purge the requests it queued, and hand the
//! caller the follow-on grants that unblock surviving waiters. Without this
//! a single crashed writer would block every future acquirer of that
//! element forever.

use std::collections::{BTreeMap, VecDeque};

use super::NodeId;

/// Reader/writer lock flavor (Figure 3: `RLock` / `WLock`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockKind {
    /// Shared reader lock.
    Read,
    /// Exclusive writer lock.
    Write,
}

/// Where a lock request came from. `W` is the opaque completion token the
/// executor wakes for home-local requesters (a wait-cell in the runtime,
/// a plain integer in tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockSource<W> {
    /// An application thread on the home node.
    Local(W),
    /// A remote requester node, granted by a `LockGrant` message.
    Remote(NodeId),
}

impl<W> LockSource<W> {
    /// The remote node behind this source, if any.
    fn node(&self) -> Option<NodeId> {
        match self {
            LockSource::Local(_) => None,
            LockSource::Remote(n) => Some(*n),
        }
    }
}

/// State of one element's distributed lock. Holders are tagged with their
/// origin (`None` = a home-local thread, `Some(n)` = remote node `n`) so
/// orphaned locks can be reclaimed when their holder dies.
#[derive(Debug, Clone)]
struct ElemLock<W> {
    /// Current reader holders.
    readers: Vec<Option<NodeId>>,
    /// Current writer holder, if any.
    writer: Option<Option<NodeId>>,
    queue: VecDeque<(LockSource<W>, LockKind)>,
}

impl<W> Default for ElemLock<W> {
    fn default() -> Self {
        Self {
            readers: Vec::new(),
            writer: None,
            queue: VecDeque::new(),
        }
    }
}

impl<W> ElemLock<W> {
    fn grantable(&self, kind: LockKind) -> bool {
        match kind {
            // FIFO fairness: a new reader must also wait behind any queued
            // (writer) request.
            LockKind::Read => self.writer.is_none() && self.queue.is_empty(),
            LockKind::Write => {
                self.writer.is_none() && self.readers.is_empty() && self.queue.is_empty()
            }
        }
    }

    fn grant(&mut self, kind: LockKind, holder: Option<NodeId>) {
        match kind {
            LockKind::Read => self.readers.push(holder),
            LockKind::Write => {
                debug_assert!(self.writer.is_none());
                self.writer = Some(holder);
            }
        }
    }

    /// Pop the FIFO prefix that is now grantable (one writer, or a batch of
    /// readers) and mark each popped entry as holding.
    fn pump(&mut self) -> Vec<(LockSource<W>, LockKind)> {
        let mut granted = Vec::new();
        while let Some(&(_, k)) = self.queue.front() {
            let can = match k {
                LockKind::Read => self.writer.is_none(),
                LockKind::Write => self.writer.is_none() && self.readers.is_empty(),
            };
            if !can {
                break;
            }
            let (src, k) = self.queue.pop_front().unwrap();
            self.grant(k, src.node());
            granted.push((src, k));
            if k == LockKind::Write {
                break;
            }
        }
        granted
    }

    fn is_idle(&self) -> bool {
        self.readers.is_empty() && self.writer.is_none() && self.queue.is_empty()
    }
}

/// What [`LockTable::forget_peer`] did for one dead node: counters for the
/// stats layer plus the follow-on grants the executor must deliver.
#[derive(Debug)]
pub struct PeerPurge<W> {
    /// Held locks (reader slots + writer slots) reclaimed from the dead
    /// node.
    pub reclaimed: usize,
    /// Queued (not yet granted) requests from the dead node that were
    /// dropped.
    pub dropped_waiters: usize,
    /// Requests that became grantable once the dead node's locks were
    /// reclaimed; already marked granted in the table — the caller delivers
    /// them.
    pub granted: Vec<(u64, LockSource<W>, LockKind)>,
}

/// The home node's table of element locks. Only elements with lock activity
/// occupy table space. Keyed by a `BTreeMap` so recovery sweeps
/// ([`Self::forget_peer`]) wake survivors in a deterministic order — a
/// requirement for bit-identical replay of runs that include a crash.
/// `Clone` (for `W: Clone`) lets the model checker branch a world state.
#[derive(Debug, Clone)]
pub struct LockTable<W> {
    locks: BTreeMap<u64, ElemLock<W>>,
}

impl<W> Default for LockTable<W> {
    fn default() -> Self {
        Self {
            locks: BTreeMap::new(),
        }
    }
}

impl<W> LockTable<W> {
    /// Try to acquire; on success the grant must be delivered to `source` by
    /// the caller (returned as `Some(source)`), otherwise the request is
    /// queued.
    pub fn acquire(
        &mut self,
        id: u64,
        kind: LockKind,
        source: LockSource<W>,
    ) -> Option<LockSource<W>> {
        let e = self.locks.entry(id).or_default();
        if e.grantable(kind) {
            e.grant(kind, source.node());
            Some(source)
        } else {
            e.queue.push_back((source, kind));
            None
        }
    }

    /// Release a lock held by `from` (`None` = a home-local thread); returns
    /// the queued requests that become grantable (already granted in the
    /// table — the caller delivers them).
    ///
    /// A release that does not match a current holder is ignored: after
    /// [`Self::forget_peer`] reclaims a dead node's lock and re-grants it, a
    /// straggler release from the dead node must not release the *new*
    /// holder's lock.
    pub fn release(
        &mut self,
        id: u64,
        kind: LockKind,
        from: Option<NodeId>,
    ) -> Vec<(LockSource<W>, LockKind)> {
        let Some(e) = self.locks.get_mut(&id) else {
            debug_assert!(from.is_some(), "local release of unheld lock {id}");
            return Vec::new();
        };
        match kind {
            LockKind::Read => {
                let Some(pos) = e.readers.iter().position(|h| *h == from) else {
                    debug_assert!(from.is_some(), "local release of unheld rlock {id}");
                    return Vec::new();
                };
                e.readers.remove(pos);
            }
            LockKind::Write => {
                if e.writer != Some(from) {
                    debug_assert!(from.is_some(), "local release of unheld wlock {id}");
                    return Vec::new();
                }
                e.writer = None;
            }
        }
        let granted = e.pump();
        if e.is_idle() {
            self.locks.remove(&id);
        }
        granted
    }

    /// Reclaim every lock held by `dead`, drop its queued requests, and
    /// re-grant to surviving waiters. Idempotent: a second sweep for the
    /// same node finds nothing. Elements are visited in ascending id order
    /// (deterministic wake order).
    pub fn forget_peer(&mut self, dead: NodeId) -> PeerPurge<W> {
        let mut purge = PeerPurge {
            reclaimed: 0,
            dropped_waiters: 0,
            granted: Vec::new(),
        };
        let mut idle = Vec::new();
        for (&id, e) in self.locks.iter_mut() {
            let qlen = e.queue.len();
            e.queue.retain(|(s, _)| s.node() != Some(dead));
            purge.dropped_waiters += qlen - e.queue.len();
            let readers = e.readers.len();
            e.readers.retain(|h| *h != Some(dead));
            purge.reclaimed += readers - e.readers.len();
            if e.writer == Some(Some(dead)) {
                e.writer = None;
                purge.reclaimed += 1;
            }
            purge
                .granted
                .extend(e.pump().into_iter().map(|(s, k)| (id, s, k)));
            if e.is_idle() {
                idle.push(id);
            }
        }
        for id in idle {
            self.locks.remove(&id);
        }
        purge
    }

    /// Number of elements with active lock state (diagnostics).
    pub fn active(&self) -> usize {
        self.locks.len()
    }

    /// Are all holders of all elements live according to `alive`? Used by
    /// the model checker to assert that recovery never leaves an orphaned
    /// holder behind.
    pub fn holders_all_satisfy(&self, alive: impl Fn(NodeId) -> bool) -> bool {
        self.locks.values().all(|e| {
            e.readers
                .iter()
                .chain(e.writer.iter())
                .all(|h| h.is_none_or(&alive))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local(w: u32) -> LockSource<u32> {
        LockSource::Local(w)
    }

    #[test]
    fn uncontended_read_and_write_grant_immediately() {
        let mut t = LockTable::default();
        assert!(t.acquire(1, LockKind::Read, local(0)).is_some());
        assert!(t.acquire(2, LockKind::Write, local(1)).is_some());
        assert_eq!(t.active(), 2);
        t.release(1, LockKind::Read, None);
        t.release(2, LockKind::Write, None);
        assert_eq!(t.active(), 0);
    }

    #[test]
    fn readers_share_writers_exclude() {
        let mut t = LockTable::default();
        assert!(t.acquire(7, LockKind::Read, local(0)).is_some());
        assert!(t.acquire(7, LockKind::Read, local(1)).is_some());
        assert!(t.acquire(7, LockKind::Write, local(2)).is_none()); // queued
                                                                    // A reader arriving behind the queued writer waits (fairness).
        assert!(t.acquire(7, LockKind::Read, local(3)).is_none());
        t.release(7, LockKind::Read, None);
        let g = t.release(7, LockKind::Read, None);
        // Writer granted first.
        assert_eq!(g.len(), 1);
        assert!(matches!(g[0].1, LockKind::Write));
        let g = t.release(7, LockKind::Write, None);
        // Then the queued reader.
        assert_eq!(g.len(), 1);
        assert!(matches!(g[0].1, LockKind::Read));
        t.release(7, LockKind::Read, None);
        assert_eq!(t.active(), 0);
    }

    #[test]
    fn reader_batch_granted_together() {
        let mut t = LockTable::default();
        assert!(t.acquire(3, LockKind::Write, local(0)).is_some());
        assert!(t.acquire(3, LockKind::Read, local(1)).is_none());
        assert!(t.acquire(3, LockKind::Read, local(2)).is_none());
        assert!(t.acquire(3, LockKind::Write, local(3)).is_none());
        let g = t.release(3, LockKind::Write, None);
        // Both readers wake; the writer behind them does not.
        assert_eq!(g.len(), 2);
        assert!(g.iter().all(|(_, k)| *k == LockKind::Read));
        t.release(3, LockKind::Read, None);
        let g = t.release(3, LockKind::Read, None);
        assert_eq!(g.len(), 1);
        assert!(matches!(g[0].1, LockKind::Write));
        t.release(3, LockKind::Write, None);
    }

    #[test]
    fn writer_chain_is_fifo() {
        let mut t: LockTable<u32> = LockTable::default();
        assert!(t
            .acquire(9, LockKind::Write, LockSource::Remote(1))
            .is_some());
        assert!(t
            .acquire(9, LockKind::Write, LockSource::Remote(2))
            .is_none());
        assert!(t
            .acquire(9, LockKind::Write, LockSource::Remote(3))
            .is_none());
        let g = t.release(9, LockKind::Write, Some(1));
        assert_eq!(g.len(), 1);
        assert!(matches!(g[0].0, LockSource::Remote(2)));
        let g = t.release(9, LockKind::Write, Some(2));
        assert!(matches!(g[0].0, LockSource::Remote(3)));
        t.release(9, LockKind::Write, Some(3));
        assert_eq!(t.active(), 0);
    }

    #[test]
    fn dead_writer_is_reclaimed_and_waiters_granted() {
        let mut t: LockTable<u32> = LockTable::default();
        assert!(t
            .acquire(5, LockKind::Write, LockSource::Remote(1))
            .is_some());
        assert!(t.acquire(5, LockKind::Read, local(7)).is_none());
        assert!(t
            .acquire(5, LockKind::Read, LockSource::Remote(2))
            .is_none());
        let p = t.forget_peer(1);
        assert_eq!(p.reclaimed, 1);
        assert_eq!(p.dropped_waiters, 0);
        // Both surviving readers wake together.
        assert_eq!(p.granted.len(), 2);
        assert!(t.holders_all_satisfy(|n| n != 1));
        t.release(5, LockKind::Read, None);
        t.release(5, LockKind::Read, Some(2));
        assert_eq!(t.active(), 0);
    }

    #[test]
    fn dead_readers_and_queued_requests_are_purged() {
        let mut t: LockTable<u32> = LockTable::default();
        assert!(t
            .acquire(4, LockKind::Read, LockSource::Remote(1))
            .is_some());
        assert!(t
            .acquire(4, LockKind::Read, LockSource::Remote(2))
            .is_some());
        assert!(t
            .acquire(4, LockKind::Write, LockSource::Remote(1))
            .is_none());
        assert!(t
            .acquire(4, LockKind::Write, LockSource::Remote(3))
            .is_none());
        let p = t.forget_peer(1);
        // Reader slot reclaimed, queued write dropped; node 3's write still
        // blocked by node 2's live reader.
        assert_eq!(p.reclaimed, 1);
        assert_eq!(p.dropped_waiters, 1);
        assert!(p.granted.is_empty());
        let g = t.release(4, LockKind::Read, Some(2));
        assert_eq!(g.len(), 1);
        assert!(matches!(g[0].0, LockSource::Remote(3)));
        t.release(4, LockKind::Write, Some(3));
        assert_eq!(t.active(), 0);
    }

    #[test]
    fn forget_peer_is_idempotent() {
        let mut t: LockTable<u32> = LockTable::default();
        assert!(t
            .acquire(8, LockKind::Write, LockSource::Remote(2))
            .is_some());
        assert!(t.acquire(8, LockKind::Write, local(1)).is_none());
        let p = t.forget_peer(2);
        assert_eq!(p.reclaimed, 1);
        assert_eq!(p.granted.len(), 1);
        let p2 = t.forget_peer(2);
        assert_eq!(p2.reclaimed, 0);
        assert_eq!(p2.dropped_waiters, 0);
        assert!(p2.granted.is_empty());
    }

    #[test]
    fn stale_release_from_reclaimed_holder_is_ignored() {
        let mut t: LockTable<u32> = LockTable::default();
        assert!(t
            .acquire(6, LockKind::Write, LockSource::Remote(1))
            .is_some());
        assert!(t
            .acquire(6, LockKind::Write, LockSource::Remote(2))
            .is_none());
        let p = t.forget_peer(1);
        // Node 2 now holds the lock.
        assert_eq!(p.granted.len(), 1);
        // A straggler release from dead node 1 must not free node 2's lock.
        let g = t.release(6, LockKind::Write, Some(1));
        assert!(g.is_empty());
        assert_eq!(t.active(), 1);
        t.release(6, LockKind::Write, Some(2));
        assert_eq!(t.active(), 0);
    }

    #[test]
    fn cascaded_grant_to_another_dead_node_is_reclaimed_by_its_sweep() {
        let mut t: LockTable<u32> = LockTable::default();
        assert!(t
            .acquire(2, LockKind::Write, LockSource::Remote(1))
            .is_some());
        assert!(t
            .acquire(2, LockKind::Write, LockSource::Remote(2))
            .is_none());
        assert!(t.acquire(2, LockKind::Write, local(9)).is_none());
        // Node 1 dies: the table grants to node 2 (the executor's send will
        // go nowhere if 2 is also dead)...
        let p = t.forget_peer(1);
        assert_eq!(p.granted.len(), 1);
        // ...and node 2's own sweep passes the lock on to the local waiter.
        let p2 = t.forget_peer(2);
        assert_eq!(p2.reclaimed, 1);
        assert_eq!(p2.granted.len(), 1);
        assert!(matches!(p2.granted[0].1, LockSource::Local(9)));
        t.release(2, LockKind::Write, None);
        assert_eq!(t.active(), 0);
    }
}
