//! The home-side **directory machine** of one chunk (Figure 9, home rows).
//!
//! [`HomeMachine`] owns the chunk's global protocol state — the four stable
//! [`DirState`]s, the [`Transient`] phase of a multi-message transition, the
//! grace-window timestamp of the most recent grant, and the queue of
//! requests waiting for the chunk to stabilize. It consumes [`HomeEvent`]s
//! and returns [`HomeAction`]s; it never touches the network, the home
//! dentry, memory regions, or the clock (time is an argument).

use std::collections::VecDeque;

use crate::op::OpId;
use crate::state::{DirState, LocalState};

use super::{Counter, Kind, NodeId, Request, Requester, Transition, NOTAG};

/// Transient phase of a home-side transition that is waiting for remote
/// replies or a local reference drain. While a transient is pending, new
/// requests queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transient {
    /// The chunk is stable; requests are serviced immediately.
    None,
    /// Waiting for `InvalidateAck`s (or crossing `EvictNotice`s) from these
    /// nodes.
    AwaitInvAcks {
        /// Nodes that have not acknowledged yet.
        waiting: Vec<NodeId>,
    },
    /// Waiting for a Dirty writeback from `from`.
    AwaitWriteback {
        /// The Dirty owner being recalled or downgraded.
        from: NodeId,
    },
    /// Waiting for operand flushes (of operator `op`) from these nodes.
    AwaitFlushes {
        /// The operator whose epoch is being closed.
        op: u32,
        /// Id of the Operated epoch being closed (see
        /// [`HomeMachine::epoch`]). Distinguishes successive epochs of the
        /// same operator in traces and recovery diagnostics.
        epoch: u64,
        /// Nodes that have not flushed yet.
        waiting: Vec<NodeId>,
    },
    /// Waiting for the home dentry's references to drain.
    HomeDrain,
    /// Waiting out the minimum-hold grace window of a fresh grant; a
    /// [`HomeEvent::RetryExpired`] clears it.
    GraceWait,
    /// Waiting for the durable chunk store to confirm the persist requested
    /// by [`HomeAction::PersistChunk`] (persist-before-ack, DESIGN.md §14).
    /// Only entered when the machine is durable; a
    /// [`HomeEvent::PersistDone`] carrying `seq` (or a later one) clears it.
    AwaitPersist {
        /// The persist sequence number being awaited.
        seq: u64,
    },
    /// This home is handing the chunk to a new home `to` (DESIGN.md §15).
    /// The chunk is *fenced*: arriving requests park in the pending queue
    /// and are forwarded (or replayed) once the migration resolves. The
    /// phases run recall-everything → drain-home-refs → transfer → await
    /// the target's ack; the source stays authoritative until it receives
    /// the ack and commits.
    MigratingOut {
        /// The new home the chunk is moving to.
        to: NodeId,
        /// The migration fence epoch (a burned persist sequence number,
        /// monotone per chunk). Stamped on every migration message so
        /// stragglers of an aborted or older migration are rejected.
        mig_epoch: u64,
        /// Current outbound phase.
        phase: MigOutPhase,
    },
    /// This node is adopting the chunk from its old home `from`
    /// (DESIGN.md §15). The image already landed via a one-sided WRITE;
    /// the node persists it (when durable), acknowledges, and waits for
    /// the source's commit before serving anyone. Requests that arrive
    /// early park in the pending queue and replay at adoption.
    MigratingIn {
        /// The old home the chunk is moving from.
        from: NodeId,
        /// The migration fence epoch stamped by the source.
        mig_epoch: u64,
        /// Current inbound phase.
        phase: MigInPhase,
    },
}

/// Phase of an outbound chunk migration ([`Transient::MigratingOut`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigOutPhase {
    /// Revoking every remote right (invalidations, dirty recall, or
    /// operated recall, depending on the directory state) so the home
    /// image becomes the single authoritative copy.
    Recall {
        /// Nodes whose rights have not been revoked yet.
        waiting: Vec<NodeId>,
    },
    /// Draining the home dentry's local references; local threads lose
    /// access before the image leaves.
    Drain,
    /// Image and directory authority transferred
    /// ([`HomeAction::TransferChunk`]); waiting for the target's
    /// [`HomeEvent::MigrateAck`]. The source is still authoritative — if
    /// the target dies here, the source re-assumes the chunk.
    AwaitAck,
}

/// Phase of an inbound chunk migration ([`Transient::MigratingIn`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigInPhase {
    /// Persisting the received image to the durable log before
    /// acknowledging (persist-before-ack extends to migration: the ack
    /// promises the image survives a crash of the new home). Skipped on
    /// non-durable machines.
    Persist,
    /// Ack sent; waiting for the source's [`HomeEvent::MigrateCommit`].
    /// If the source dies here its death is quorum-confirmed, so the
    /// target self-promotes — at most one authoritative home survives.
    AwaitCommit,
}

impl Transient {
    /// Is the chunk stable (no transient pending)?
    pub fn is_none(&self) -> bool {
        matches!(self, Transient::None)
    }

    /// Short name for traces and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Transient::None => "None",
            Transient::AwaitInvAcks { .. } => "AwaitInvAcks",
            Transient::AwaitWriteback { .. } => "AwaitWriteback",
            Transient::AwaitFlushes { .. } => "AwaitFlushes",
            Transient::HomeDrain => "HomeDrain",
            Transient::GraceWait => "GraceWait",
            Transient::AwaitPersist { .. } => "AwaitPersist",
            Transient::MigratingOut { phase, .. } => match phase {
                MigOutPhase::Recall { .. } => "MigratingOut:Recall",
                MigOutPhase::Drain => "MigratingOut:Drain",
                MigOutPhase::AwaitAck => "MigratingOut:AwaitAck",
            },
            Transient::MigratingIn { phase, .. } => match phase {
                MigInPhase::Persist => "MigratingIn:Persist",
                MigInPhase::AwaitCommit => "MigratingIn:AwaitCommit",
            },
        }
    }
}

/// Everything the home-side directory machine can react to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HomeEvent<W> {
    /// A new Read/Write/Operate request arrived (local or remote).
    Request(Request<W>),
    /// A remote node acknowledged an `InvalidateReq`.
    InvAck {
        /// The acknowledging node.
        from: NodeId,
    },
    /// A remote node silently dropped its Shared copy.
    EvictNotice {
        /// The evicting node.
        from: NodeId,
    },
    /// A remote node wrote its Dirty data back (RDMA write already landed).
    Writeback {
        /// The (former) Dirty owner.
        from: NodeId,
        /// True if the sender kept a Shared copy.
        downgrade: bool,
    },
    /// A remote node flushed its combined operands.
    Flush {
        /// The flushing node.
        from: NodeId,
        /// The operator the operands belong to.
        op: u32,
        /// True if the flush carries operand data to reduce.
        has_data: bool,
    },
    /// The home dentry's reference drain (started by
    /// [`HomeAction::StartHomeDrain`]) completed.
    Drained,
    /// The grace-window retry scheduled by [`HomeAction::ScheduleRetry`]
    /// fired.
    RetryExpired,
    /// The node's membership view confirmed `dead` unreachable (quorum-
    /// backed — see DESIGN.md §12); erase it from all bookkeeping and
    /// resume anything that waited on it.
    PeerDown {
        /// The dead node.
        dead: NodeId,
        /// The membership-view epoch stamped on the death declaration.
        /// The machine fences monotonically: an event whose stamp does not
        /// exceed the highest epoch already applied is stale (a replayed or
        /// reordered declaration) and is ignored.
        view_epoch: u64,
    },
    /// The durable chunk store confirmed the persist requested by
    /// [`HomeAction::PersistChunk`] with sequence number `seq` (or a later
    /// one covering it — persists are cumulative: a log record at `seq`
    /// implies every earlier image reached the log too). Completes a
    /// [`Transient::AwaitPersist`]; stale confirmations are ignored.
    PersistDone {
        /// Highest persist sequence number now durable.
        seq: u64,
    },
    /// A previously-dead node restarted and rejoined at a bumped
    /// membership-view epoch (DESIGN.md §14). The node comes back *cold* —
    /// its caches are empty, its durable log holds only its own home
    /// chunks — so the directory needs no state surgery; the machine only
    /// stops treating the identity as dead so fresh requests from it are
    /// serviced again. Fenced by the same monotone `view_epoch` as
    /// [`HomeEvent::PeerDown`].
    PeerRestarted {
        /// The restarted node.
        node: NodeId,
        /// The membership-view epoch stamped on the restart admission;
        /// must exceed the highest epoch already applied.
        view_epoch: u64,
    },
    /// An administrative re-homing request (DESIGN.md §15): hand this chunk
    /// to node `to`. If a transient is pending the migration is queued and
    /// starts as soon as the chunk stabilizes; queued requests stay parked
    /// behind the fence until the migration resolves.
    BeginMigration {
        /// The new home.
        to: NodeId,
    },
    /// (Target side.) The source's chunk image landed in our home slot via
    /// a one-sided WRITE and this notification followed it (RC FIFO). Begin
    /// adopting the chunk under the source's fence epoch.
    MigrateData {
        /// The old home the chunk is leaving.
        from: NodeId,
        /// The source's migration fence epoch.
        mig_epoch: u64,
    },
    /// (Source side.) The target persisted (when durable) and accepted the
    /// transferred image. The source commits: it stops being authoritative
    /// and redirects traffic to the new home.
    MigrateAck {
        /// The acknowledging target.
        from: NodeId,
        /// Echo of the fence epoch; a mismatch marks a straggler of an
        /// older (aborted) migration.
        mig_epoch: u64,
    },
    /// (Target side.) The source committed the hand-off; the target becomes
    /// the chunk's authoritative home and replays parked traffic.
    MigrateCommit {
        /// The committing source.
        from: NodeId,
        /// Echo of the fence epoch.
        mig_epoch: u64,
    },
}

/// Everything the home-side directory machine can ask its executor to do.
/// Actions must be executed in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HomeAction<W> {
    /// Charge the directory-update CPU cost (one per serviced request).
    ChargeDirUpdate,
    /// Wake a local requester: its rights are granted.
    Wake(W),
    /// RDMA-write the chunk's home data into the requester's cacheline at
    /// `dst_off` and send the matching fill notification.
    SendFill {
        /// Requesting node.
        to: NodeId,
        /// Destination word offset in the requester's cache region.
        dst_off: u64,
        /// True for `FillExclusive`, false for `FillShared`.
        exclusive: bool,
    },
    /// Send `GrantOperated` (no data travels for grants).
    SendGrant {
        /// Requesting node.
        to: NodeId,
        /// Operator id granted.
        op: u32,
    },
    /// Send `InvalidateReq`.
    SendInvalidate {
        /// A current sharer.
        to: NodeId,
    },
    /// Send `RecallDirty`.
    SendRecallDirty {
        /// The Dirty owner.
        to: NodeId,
    },
    /// Send `DowngradeDirty`.
    SendDowngrade {
        /// The Dirty owner.
        to: NodeId,
    },
    /// Send `RecallOperated`.
    SendRecallOperated {
        /// A current Operated sharer.
        to: NodeId,
        /// The operator epoch being recalled.
        op: u32,
    },
    /// Reduce the flush payload accompanying the current event into the
    /// home subarray under operator `op` (operand data must never be lost).
    ApplyFlushData {
        /// Operator to combine under.
        op: u32,
    },
    /// Install new local rights on the *home* dentry (a Figure-6 promotion;
    /// no drain needed).
    SetHomeLocal {
        /// New local state.
        state: LocalState,
        /// New operator tag ([`NOTAG`] unless Operated).
        tag: u32,
    },
    /// Begin a Figure-5 drain of the home dentry towards `target`; the
    /// executor feeds [`HomeEvent::Drained`] back once references are gone.
    StartHomeDrain {
        /// State installed at drain start.
        target: LocalState,
        /// Operator tag installed at drain start.
        tag: u32,
    },
    /// Re-deliver [`HomeEvent::RetryExpired`] at absolute time `at`.
    ScheduleRetry {
        /// Absolute (virtual) time to resume servicing.
        at: u64,
    },
    /// Persist the chunk's current home image to the durable chunk store
    /// (persist-before-ack, DESIGN.md §14). Emitted only by durable
    /// machines, always *after* the actions that update the home image
    /// (`ApplyFlushData` / the already-landed writeback RDMA). The executor
    /// feeds [`HomeEvent::PersistDone`] back once the record is on the log.
    PersistChunk {
        /// Monotone per-machine persist sequence number; echoed back in
        /// the completion event.
        seq: u64,
    },
    /// RDMA-write the chunk's home image into node `to`'s home slot for
    /// this chunk and send the `MigrateData` notification behind it (one
    /// one-sided WRITE + notification, exactly like a fill). Emitted once
    /// per migration attempt, after every right is revoked and the home
    /// dentry is drained.
    TransferChunk {
        /// The new home receiving the image.
        to: NodeId,
        /// The fence epoch stamped on the transfer.
        mig_epoch: u64,
    },
    /// (Target side.) Send `MigrateAck` to the old home.
    SendMigrateAck {
        /// The old home.
        to: NodeId,
        /// Echo of the fence epoch.
        mig_epoch: u64,
    },
    /// (Source side.) Send `MigrateCommit` to the new home.
    SendMigrateCommit {
        /// The new home.
        to: NodeId,
        /// Echo of the fence epoch.
        mig_epoch: u64,
    },
    /// (Source side.) The migration committed: flip this node's home map
    /// entry to `to` under `mig_epoch`, drop the home dentry to Invalid,
    /// broadcast the stale-home redirect (`HomeMoved`) to every peer, and
    /// count [`Counter::MigrationsOut`].
    DepartChunk {
        /// The new home.
        to: NodeId,
        /// The fence epoch (monotone per chunk; consumers apply the flip
        /// with a max so reordered redirects cannot roll it back).
        mig_epoch: u64,
    },
    /// (Target side.) The migration committed here: flip this node's home
    /// map entry to itself under `mig_epoch`, install Exclusive home
    /// rights on the dentry, broadcast `HomeMoved` to every peer (the
    /// source's broadcast may have died with it), and count
    /// [`Counter::MigrationsIn`].
    AdoptChunk {
        /// The fence epoch.
        mig_epoch: u64,
    },
    /// Forward a remote request this (former) home can no longer serve to
    /// the chunk's new home `to`, re-stamped as if sent by the original
    /// requester, and send the requester a `HomeMoved` redirect so it
    /// retargets future traffic.
    ForwardRequest {
        /// The new home to forward to.
        to: NodeId,
        /// The original requester.
        node: NodeId,
        /// The requester's fill destination (cache-region word offset).
        dst_off: u64,
        /// The rights originally requested.
        kind: Kind,
    },
    /// A state transition happened (structured trace; also counted).
    Trace(Transition),
    /// Bump a protocol counter.
    Count(Counter),
}

/// The home-side directory machine of one chunk. Generic over the opaque
/// local-waiter token `W` (a wait-cell in the runtime, a plain integer in
/// tests). `Clone` (for `W: Clone`) lets the model checker branch a world
/// state; the runtime never clones a machine.
#[derive(Debug, Clone)]
pub struct HomeMachine<W> {
    state: DirState,
    transient: Transient,
    /// Time of the most recent grant — the start of the grace window.
    granted_at: u64,
    /// The request being serviced by the pending transient.
    current: Option<Request<W>>,
    /// Requests waiting for the chunk to become stable.
    pending: VecDeque<Request<W>>,
    /// Number of Operated epochs opened so far; the id of the current
    /// epoch while `state` is Operated. Carried into
    /// [`Transient::AwaitFlushes`] so an epoch closed by abort is
    /// identifiable.
    epoch: u64,
    /// Nodes declared dead by [`HomeEvent::PeerDown`]. Monotone (fail-stop).
    /// Any later event claiming to come from one of them is stale — in
    /// particular an operand flush, whose data must NOT be reduced: the
    /// epoch it belonged to was already closed (aborted) when the peer was
    /// erased, and applying it now could corrupt a successor owner's data.
    dead: Vec<NodeId>,
    /// Highest membership-view epoch applied via [`HomeEvent::PeerDown`]
    /// or [`HomeEvent::PeerRestarted`]. Declarations stamped at or below
    /// this are fenced as stale.
    view_epoch: u64,
    /// True when a durable chunk store backs this machine: dirty-data
    /// arrivals (writebacks, operand-flush completions) persist before the
    /// protocol acknowledges them (DESIGN.md §14). False by default, which
    /// keeps every transition bit-identical to the non-durable protocol.
    durable: bool,
    /// Monotone persist sequence; the latest value is what
    /// [`Transient::AwaitPersist`] waits for.
    persist_seq: u64,
    /// Set once a migration commits on the source side: the chunk's new
    /// home and the fence epoch it moved under. A machine with this set is
    /// a *former* home: it forwards arriving remote requests and bounces
    /// local ones back to the (updated) home map.
    migrated_to: Option<(NodeId, u64)>,
    /// A [`HomeEvent::BeginMigration`] that arrived while a transient was
    /// pending; starts as soon as the chunk stabilizes, with priority over
    /// queued requests.
    pending_migration: Option<NodeId>,
}

impl<W> Default for HomeMachine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> HomeMachine<W> {
    /// A fresh chunk: Unshared, stable, no queued requests.
    pub fn new() -> Self {
        Self {
            state: DirState::Unshared,
            transient: Transient::None,
            granted_at: 0,
            current: None,
            pending: VecDeque::new(),
            epoch: 0,
            dead: Vec::new(),
            view_epoch: 0,
            durable: false,
            persist_seq: 0,
            migrated_to: None,
            pending_migration: None,
        }
    }

    /// Turn persist-before-ack on or off (off by default). Flip this only
    /// at bring-up, before the machine has seen events.
    pub fn set_durable(&mut self, durable: bool) {
        self.durable = durable;
    }

    /// Is a durable chunk store gating acknowledgements?
    pub fn durable(&self) -> bool {
        self.durable
    }

    /// Number of persists requested so far (the latest persist sequence).
    pub fn persist_seq(&self) -> u64 {
        self.persist_seq
    }

    /// Seed the persist sequence from a recovered log record (bring-up
    /// after a restart, before the machine has seen events). Without this a
    /// restarted node's fresh machines would stamp new records with *lower*
    /// epochs than the replayed ones, and the latest-epoch-wins replay of a
    /// second crash would resurrect the pre-restart image.
    pub fn resume_persist_seq(&mut self, epoch: u64) {
        self.persist_seq = self.persist_seq.max(epoch);
    }

    /// Register `node` as holding a warm read-only copy of this chunk
    /// (cold-cache warmup from a recovered checkpoint image). Legal only at
    /// bring-up, before the machine has seen events: Unshared becomes
    /// Shared and an existing Shared set grows; any other state is a
    /// bring-up bug.
    pub fn seed_sharer(&mut self, node: NodeId) {
        match &mut self.state {
            DirState::Unshared => {
                self.state = DirState::Shared {
                    sharers: vec![node],
                };
            }
            DirState::Shared { sharers } => {
                if !sharers.contains(&node) {
                    sharers.push(node);
                }
            }
            s => panic!("seed_sharer at bring-up in state {s:?}"),
        }
    }

    /// The current stable directory state.
    pub fn state(&self) -> &DirState {
        &self.state
    }

    /// The current transient phase.
    pub fn transient(&self) -> &Transient {
        &self.transient
    }

    /// Number of queued (not yet serviced) requests.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Is a request parked behind a pending transient?
    pub fn has_current(&self) -> bool {
        self.current.is_some()
    }

    /// Number of Operated epochs opened so far; while the state is
    /// Operated, the id of the current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Has `node` been declared dead by a [`HomeEvent::PeerDown`]?
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.dead.contains(&node)
    }

    /// Highest membership-view epoch this machine has applied (0 before
    /// any [`HomeEvent::PeerDown`]).
    pub fn view_epoch(&self) -> u64 {
        self.view_epoch
    }

    /// If this machine handed its chunk to a new home, the `(new_home,
    /// fence_epoch)` it committed under; `None` while (still)
    /// authoritative.
    pub fn migrated_to(&self) -> Option<(NodeId, u64)> {
        self.migrated_to
    }

    /// Feed one event; returns the actions the executor must perform, in
    /// order. `now` is the current (virtual) time and `grace_ns` the
    /// minimum-hold grace window of fresh grants (0 disables it).
    pub fn on_event(&mut self, now: u64, grace_ns: u64, ev: HomeEvent<W>) -> Vec<HomeAction<W>> {
        let mut out = Vec::new();
        // Stale-sender rejection: an event from a node already declared dead
        // can only be a straggler that was in flight when the declaration
        // landed *and* slipped past the executor's own source check. Its
        // bookkeeping was settled by `forget_peer`; honoring it now — most
        // dangerously reducing a stale operand flush of an aborted epoch —
        // would corrupt state a successor may already own.
        if let Some(from) = Self::event_source(&ev) {
            if self.dead.contains(&from) {
                out.push(HomeAction::Trace(Transition {
                    from: self.state.name(),
                    to: self.state.name(),
                    trigger: "stale-event-from-dead-peer",
                }));
                return out;
            }
        }
        match ev {
            HomeEvent::Request(req) => {
                if let Some((to, _)) = self.migrated_to {
                    // This node is a former home: it holds no authority and
                    // no data. Forward remote requests to the new home (the
                    // requester also gets a HomeMoved redirect); bounce
                    // local ones back so the application thread re-routes
                    // via the updated home map.
                    match req.source {
                        Requester::Remote { node, dst_off } => {
                            out.push(HomeAction::ForwardRequest {
                                to,
                                node,
                                dst_off,
                                kind: req.kind,
                            });
                            out.push(HomeAction::Trace(Transition {
                                from: self.state.name(),
                                to: self.state.name(),
                                trigger: "forward-after-migration",
                            }));
                        }
                        Requester::Local(w) => out.push(HomeAction::Wake(w)),
                    }
                } else {
                    self.pending.push_back(req);
                    self.progress(now, grace_ns, &mut out);
                }
            }
            HomeEvent::InvAck { from } => {
                if matches!(self.transient, Transient::MigratingOut { .. }) {
                    // A migration recall's invalidation was acknowledged.
                    self.remove_sharer(from);
                    if self.mig_recall_tick(from) {
                        self.mig_recall_complete(now, grace_ns, &mut out);
                    }
                } else if matches!(self.transient, Transient::AwaitInvAcks { .. }) {
                    // Only a live invalidation epoch may count the ack; a
                    // stale ack (an EvictNotice already accounted for it)
                    // is ignored.
                    self.remove_sharer(from);
                    if self.transient_remove(from) {
                        self.finish_transient(now, grace_ns, &mut out);
                    }
                }
            }
            HomeEvent::EvictNotice { from } => match &self.transient {
                Transient::MigratingOut { .. } => {
                    // A crossing eviction satisfies the migration recall.
                    self.remove_sharer(from);
                    if self.mig_recall_tick(from) {
                        self.mig_recall_complete(now, grace_ns, &mut out);
                    }
                }
                Transient::AwaitInvAcks { .. } => {
                    // A crossing eviction satisfies the ack set.
                    self.remove_sharer(from);
                    if self.transient_remove(from) {
                        self.finish_transient(now, grace_ns, &mut out);
                    }
                }
                _ => {
                    if matches!(self.state, DirState::Shared { .. }) && self.remove_sharer(from) {
                        // Last sharer gone: home regains exclusivity
                        // (Figure 6 promotion).
                        self.set_state(DirState::Unshared, "last-sharer-evicted", &mut out);
                        out.push(HomeAction::SetHomeLocal {
                            state: LocalState::Exclusive,
                            tag: NOTAG,
                        });
                    }
                }
            },
            HomeEvent::Writeback { from, downgrade } => {
                if matches!(self.transient, Transient::MigratingOut { .. }) {
                    // A migration recall pulled the dirty data home (the
                    // RDMA write already landed in the home image, which is
                    // exactly what the transfer will ship). A crossing
                    // voluntary writeback from a node not in the recall set
                    // is idempotent and ignored.
                    let _ = downgrade; // a migration recall fully revokes
                    self.remove_sharer(from);
                    if self.mig_recall_tick(from) {
                        self.set_state(DirState::Unshared, "migrate-recall-writeback", &mut out);
                        self.mig_recall_complete(now, grace_ns, &mut out);
                    }
                    return out;
                }
                let expected =
                    matches!(&self.transient, Transient::AwaitWriteback { from: f } if *f == from);
                if expected {
                    if downgrade {
                        self.set_state(
                            DirState::Shared {
                                sharers: vec![from],
                            },
                            "writeback-downgrade",
                            &mut out,
                        );
                        out.push(HomeAction::SetHomeLocal {
                            state: LocalState::Shared,
                            tag: NOTAG,
                        });
                    } else {
                        self.set_state(DirState::Unshared, "writeback", &mut out);
                        out.push(HomeAction::SetHomeLocal {
                            state: LocalState::Exclusive,
                            tag: NOTAG,
                        });
                    }
                    // Persist-before-ack: the recalled dirty image must be
                    // on the log before the parked requester resumes.
                    if !self.begin_persist(&mut out) {
                        self.finish_transient(now, grace_ns, &mut out);
                    }
                } else if matches!(self.state, DirState::Dirty { owner } if owner == from) {
                    // Voluntary eviction writeback.
                    self.set_state(DirState::Unshared, "voluntary-writeback", &mut out);
                    out.push(HomeAction::SetHomeLocal {
                        state: LocalState::Exclusive,
                        tag: NOTAG,
                    });
                    // The home image just changed; durable machines persist
                    // it before servicing anything further, so no later
                    // grant can expose data newer than the log. (Only the
                    // stable/grace phases can be interrupted here — a
                    // voluntary writeback requires the sender to *be* the
                    // Dirty owner, which rules out every other transient.)
                    if matches!(self.transient, Transient::None | Transient::GraceWait) {
                        self.begin_persist(&mut out);
                    }
                }
                // else: stale notice (the transient already completed via a
                // different path); the data write is idempotent.
            }
            HomeEvent::Flush { from, op, has_data } => {
                // Reduce first — operand data must never be lost, whatever
                // the bookkeeping below decides.
                if has_data {
                    out.push(HomeAction::ApplyFlushData { op });
                    out.push(HomeAction::Count(Counter::OperatedReductions));
                }
                match &self.transient {
                    // A migration recall of an Operated chunk: flushes of
                    // the *current* operator epoch shrink the recall set
                    // (the operand data was already reduced above, so the
                    // home image the transfer ships is complete).
                    Transient::MigratingOut { .. } if matches!(&self.state, DirState::Operated { op: cur, .. } if cur.0 == op) =>
                    {
                        self.remove_sharer(from);
                        if self.mig_recall_tick(from) {
                            self.mig_recall_complete(now, grace_ns, &mut out);
                        }
                    }
                    // Epoch check: only a flush of the operator being
                    // recalled may shrink the waiting set — a crossing flush
                    // of an older operator must not be miscounted against
                    // the current epoch.
                    Transient::AwaitFlushes { op: top, .. } if *top == op => {
                        self.remove_sharer(from);
                        if self.transient_remove(from) {
                            self.set_state(DirState::Unshared, "flushes-complete", &mut out);
                            out.push(HomeAction::SetHomeLocal {
                                state: LocalState::Exclusive,
                                tag: NOTAG,
                            });
                            // Persist-before-ack: the fully-reduced epoch
                            // image must be on the log before the request
                            // that closed the epoch resumes.
                            if !self.begin_persist(&mut out) {
                                self.finish_transient(now, grace_ns, &mut out);
                            }
                        }
                    }
                    _ => {
                        if matches!(&self.state, DirState::Operated { op: cur, .. } if cur.0 == op)
                        {
                            // Voluntary eviction flush of the current epoch:
                            // the home keeps the Operated state (it may
                            // still be combining locally); the next
                            // Read/Write promotes lazily.
                            self.remove_sharer(from);
                            // Operand data was just reduced into the home
                            // image; persist it while the chunk is idle so
                            // an "operated-promotion" (which has no flush of
                            // its own) never strands reduced operands in
                            // volatile memory.
                            if has_data
                                && matches!(self.transient, Transient::None | Transient::GraceWait)
                            {
                                self.begin_persist(&mut out);
                            }
                        }
                        // Flushes of other epochs were already reduced
                        // above; their bookkeeping was settled when their
                        // epoch closed.
                    }
                }
            }
            HomeEvent::Drained => {
                if let Transient::MigratingOut {
                    to,
                    mig_epoch,
                    phase: MigOutPhase::Drain,
                } = self.transient
                {
                    if self.dead.contains(&to) {
                        // The target died while local references drained:
                        // nothing left but to re-assume the chunk.
                        self.abort_migration(
                            now,
                            grace_ns,
                            "migration-aborted-target-dead",
                            &mut out,
                        );
                    } else {
                        self.transient = Transient::MigratingOut {
                            to,
                            mig_epoch,
                            phase: MigOutPhase::AwaitAck,
                        };
                        out.push(HomeAction::TransferChunk { to, mig_epoch });
                        out.push(HomeAction::Trace(Transition {
                            from: self.state.name(),
                            to: self.state.name(),
                            trigger: "migrate-transfer",
                        }));
                    }
                } else {
                    debug_assert_eq!(self.transient, Transient::HomeDrain);
                    self.finish_transient(now, grace_ns, &mut out);
                }
            }
            HomeEvent::RetryExpired => {
                if self.transient == Transient::GraceWait {
                    self.transient = Transient::None;
                }
                self.progress(now, grace_ns, &mut out);
            }
            HomeEvent::PeerDown { dead, view_epoch } => {
                // Monotone epoch fence: a declaration stamped at or below
                // the highest epoch already applied is a replay or
                // reordering of a death this machine has settled; re-running
                // recovery for it could double-prune a successor's state.
                if view_epoch <= self.view_epoch {
                    out.push(HomeAction::Trace(Transition {
                        from: self.state.name(),
                        to: self.state.name(),
                        trigger: "stale-peer-down-epoch",
                    }));
                    return out;
                }
                self.view_epoch = view_epoch;
                self.forget_peer(now, grace_ns, dead, &mut out);
            }
            HomeEvent::PersistDone { seq } => {
                if let Transient::MigratingIn {
                    from,
                    mig_epoch,
                    phase: MigInPhase::Persist,
                } = self.transient
                {
                    if seq >= mig_epoch {
                        out.push(HomeAction::Count(Counter::FlushPersists));
                        if self.dead.contains(&from) {
                            // The source died while we persisted; its death
                            // is quorum-confirmed, so adopting now cannot
                            // create a second authoritative home.
                            self.adopt(
                                now,
                                grace_ns,
                                mig_epoch,
                                "migrate-adopt-source-dead",
                                &mut out,
                            );
                        } else {
                            self.transient = Transient::MigratingIn {
                                from,
                                mig_epoch,
                                phase: MigInPhase::AwaitCommit,
                            };
                            out.push(HomeAction::SendMigrateAck {
                                to: from,
                                mig_epoch,
                            });
                            out.push(HomeAction::Trace(Transition {
                                from: self.state.name(),
                                to: self.state.name(),
                                trigger: "migrate-in-persisted",
                            }));
                        }
                    } else {
                        out.push(HomeAction::Trace(Transition {
                            from: self.state.name(),
                            to: self.state.name(),
                            trigger: "stale-persist-done",
                        }));
                    }
                    return out;
                }
                // Persists are cumulative (the log is append-only and
                // sequenced), so a confirmation at or past the awaited
                // sequence completes the wait. Anything else is a stale
                // confirmation of a persist whose wait already ended (e.g.
                // superseded by a later one) and is ignored.
                if matches!(self.transient, Transient::AwaitPersist { seq: s } if seq >= s) {
                    out.push(HomeAction::Count(Counter::FlushPersists));
                    out.push(HomeAction::Trace(Transition {
                        from: self.state.name(),
                        to: self.state.name(),
                        trigger: "persist-done",
                    }));
                    self.finish_transient(now, grace_ns, &mut out);
                } else {
                    out.push(HomeAction::Trace(Transition {
                        from: self.state.name(),
                        to: self.state.name(),
                        trigger: "stale-persist-done",
                    }));
                }
            }
            HomeEvent::PeerRestarted { node, view_epoch } => {
                // Same monotone fence as PeerDown: a restart admission
                // must carry a strictly newer membership epoch than
                // anything this machine has applied, else it is a replay.
                if view_epoch <= self.view_epoch {
                    out.push(HomeAction::Trace(Transition {
                        from: self.state.name(),
                        to: self.state.name(),
                        trigger: "stale-peer-restart-epoch",
                    }));
                    return out;
                }
                self.view_epoch = view_epoch;
                if let Some(pos) = self.dead.iter().position(|&n| n == node) {
                    self.dead.remove(pos);
                    out.push(HomeAction::Trace(Transition {
                        from: self.state.name(),
                        to: self.state.name(),
                        trigger: "peer-restarted",
                    }));
                }
                // The restarted identity rejoins cold (empty caches), so
                // no directory state mentions it — `forget_peer` erased it
                // when the death was declared. Un-deadening it is all that
                // is needed for its fresh requests to be serviced.
            }
            HomeEvent::BeginMigration { to } => {
                if self.migrated_to.is_some()
                    || self.pending_migration.is_some()
                    || matches!(
                        self.transient,
                        Transient::MigratingOut { .. } | Transient::MigratingIn { .. }
                    )
                {
                    out.push(HomeAction::Trace(Transition {
                        from: self.state.name(),
                        to: self.state.name(),
                        trigger: "stale-begin-migration",
                    }));
                } else if self.dead.contains(&to) {
                    out.push(HomeAction::Trace(Transition {
                        from: self.state.name(),
                        to: self.state.name(),
                        trigger: "migration-target-dead",
                    }));
                } else {
                    self.pending_migration = Some(to);
                    if self.transient == Transient::GraceWait {
                        // The fence outweighs the minimum-hold grace window.
                        self.transient = Transient::None;
                    }
                    self.progress(now, grace_ns, &mut out);
                }
            }
            HomeEvent::MigrateData { from, mig_epoch } => {
                let stale_epoch = matches!(self.migrated_to, Some((_, e)) if mig_epoch <= e);
                if stale_epoch
                    || !self.transient.is_none()
                    || !matches!(self.state, DirState::Unshared)
                {
                    // A straggler of an aborted migration, or a transfer
                    // colliding with live directory state this node somehow
                    // holds — either way the fence epoch or the machine
                    // state disqualifies it.
                    out.push(HomeAction::Trace(Transition {
                        from: self.state.name(),
                        to: self.state.name(),
                        trigger: "stale-migrate-data",
                    }));
                } else {
                    // (Re-)adopting: this node stops being a former home of
                    // the chunk, if it ever was one (ping-pong migration).
                    self.migrated_to = None;
                    self.persist_seq = self.persist_seq.max(mig_epoch);
                    if self.durable {
                        self.transient = Transient::MigratingIn {
                            from,
                            mig_epoch,
                            phase: MigInPhase::Persist,
                        };
                        out.push(HomeAction::PersistChunk {
                            seq: self.persist_seq,
                        });
                        out.push(HomeAction::Trace(Transition {
                            from: self.state.name(),
                            to: self.state.name(),
                            trigger: "migrate-in-begin",
                        }));
                    } else {
                        self.transient = Transient::MigratingIn {
                            from,
                            mig_epoch,
                            phase: MigInPhase::AwaitCommit,
                        };
                        out.push(HomeAction::SendMigrateAck {
                            to: from,
                            mig_epoch,
                        });
                        out.push(HomeAction::Trace(Transition {
                            from: self.state.name(),
                            to: self.state.name(),
                            trigger: "migrate-in-begin",
                        }));
                    }
                }
            }
            HomeEvent::MigrateAck { from, mig_epoch } => {
                let expected = matches!(
                    &self.transient,
                    Transient::MigratingOut {
                        to,
                        mig_epoch: e,
                        phase: MigOutPhase::AwaitAck,
                    } if *to == from && *e == mig_epoch
                );
                if expected {
                    // Commit: the target holds (and, when durable, has
                    // logged) the image. From here on the source is a
                    // former home.
                    self.transient = Transient::None;
                    self.migrated_to = Some((from, mig_epoch));
                    out.push(HomeAction::SendMigrateCommit {
                        to: from,
                        mig_epoch,
                    });
                    out.push(HomeAction::DepartChunk {
                        to: from,
                        mig_epoch,
                    });
                    out.push(HomeAction::Count(Counter::MigrationsOut));
                    out.push(HomeAction::Trace(Transition {
                        from: self.state.name(),
                        to: self.state.name(),
                        trigger: "migrate-commit",
                    }));
                    // Replay the fence-parked traffic at the new home.
                    while let Some(req) = self.pending.pop_front() {
                        out.push(HomeAction::Count(Counter::ParkedReplays));
                        match req.source {
                            Requester::Remote { node, dst_off } => {
                                out.push(HomeAction::ForwardRequest {
                                    to: from,
                                    node,
                                    dst_off,
                                    kind: req.kind,
                                });
                            }
                            Requester::Local(w) => out.push(HomeAction::Wake(w)),
                        }
                    }
                } else {
                    out.push(HomeAction::Trace(Transition {
                        from: self.state.name(),
                        to: self.state.name(),
                        trigger: "stale-migrate-ack",
                    }));
                }
            }
            HomeEvent::MigrateCommit { from, mig_epoch } => {
                let expected = matches!(
                    &self.transient,
                    Transient::MigratingIn {
                        from: f,
                        mig_epoch: e,
                        phase: MigInPhase::AwaitCommit,
                    } if *f == from && *e == mig_epoch
                );
                if expected {
                    self.adopt(now, grace_ns, mig_epoch, "migrate-adopt", &mut out);
                } else {
                    // Duplicate of a commit already applied, or a commit
                    // arriving after a source-death self-promotion.
                    out.push(HomeAction::Trace(Transition {
                        from: self.state.name(),
                        to: self.state.name(),
                        trigger: "stale-migrate-commit",
                    }));
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// The remote node an event claims to originate from, if any.
    fn event_source(ev: &HomeEvent<W>) -> Option<NodeId> {
        match ev {
            HomeEvent::Request(Request {
                source: Requester::Remote { node, .. },
                ..
            }) => Some(*node),
            HomeEvent::InvAck { from }
            | HomeEvent::EvictNotice { from }
            | HomeEvent::Writeback { from, .. }
            | HomeEvent::Flush { from, .. }
            | HomeEvent::MigrateData { from, .. }
            | HomeEvent::MigrateAck { from, .. }
            | HomeEvent::MigrateCommit { from, .. } => Some(*from),
            _ => None,
        }
    }

    /// Record a stable-state change and emit its structured trace.
    fn set_state(&mut self, new: DirState, trigger: &'static str, out: &mut Vec<HomeAction<W>>) {
        out.push(HomeAction::Trace(Transition {
            from: self.state.name(),
            to: new.name(),
            trigger,
        }));
        self.state = new;
    }

    /// Durable mode: ask the executor to persist the chunk's (just
    /// updated) home image and park the machine in
    /// [`Transient::AwaitPersist`] until [`HomeEvent::PersistDone`]
    /// confirms it. Returns false on non-durable machines, which leaves
    /// every action stream bit-identical to the pre-durability protocol.
    fn begin_persist(&mut self, out: &mut Vec<HomeAction<W>>) -> bool {
        if !self.durable {
            return false;
        }
        self.persist_seq += 1;
        self.transient = Transient::AwaitPersist {
            seq: self.persist_seq,
        };
        out.push(HomeAction::PersistChunk {
            seq: self.persist_seq,
        });
        true
    }

    /// Complete the pending transient: requeue the parked request and keep
    /// servicing the queue.
    ///
    /// The parked `current` request is serviced directly rather than
    /// re-queued: the directory already committed to it (the grant paths
    /// record the new owner/sharer *before* draining home references), so
    /// it must complete ahead of a queued migration fence. Letting the
    /// fence cut in line would recall rights from a grantee whose fill
    /// never left — the grantee ignores the recall as a crossing message
    /// and the migration hangs forever.
    fn finish_transient(&mut self, now: u64, grace_ns: u64, out: &mut Vec<HomeAction<W>>) {
        self.transient = Transient::None;
        if let Some(req) = self.current.take() {
            if !self.service(now, grace_ns, req, out) {
                return;
            }
        }
        self.progress(now, grace_ns, out);
    }

    /// Service queued requests until one starts a transient or the queue
    /// empties. A queued migration starts first — the fence has priority
    /// over ordinary requests, which stay parked behind it.
    fn progress(&mut self, now: u64, grace_ns: u64, out: &mut Vec<HomeAction<W>>) {
        loop {
            if !self.transient.is_none() {
                return;
            }
            if self.start_pending_migration(out) {
                return;
            }
            let Some(req) = self.pending.pop_front() else {
                return;
            };
            if !self.service(now, grace_ns, req, out) {
                return;
            }
        }
    }

    /// Begin a queued migration, if any: burn the fence epoch and revoke
    /// every remote right. Returns true iff a migration transient started
    /// (false also when the queued migration aborts because its target
    /// died while it waited).
    fn start_pending_migration(&mut self, out: &mut Vec<HomeAction<W>>) -> bool {
        let Some(to) = self.pending_migration.take() else {
            return false;
        };
        if self.dead.contains(&to) {
            out.push(HomeAction::Trace(Transition {
                from: self.state.name(),
                to: self.state.name(),
                trigger: "migration-aborted-target-dead",
            }));
            return false;
        }
        // The fence epoch doubles as a burned persist sequence number:
        // monotone per chunk, it orders this migration against every
        // earlier persist and every earlier migration of the chunk.
        let mig_epoch = self.persist_seq + 1;
        self.persist_seq = mig_epoch;
        out.push(HomeAction::Trace(Transition {
            from: self.state.name(),
            to: self.state.name(),
            trigger: "migrate-begin",
        }));
        let waiting: Vec<NodeId> = match &self.state {
            DirState::Unshared => Vec::new(),
            DirState::Shared { sharers } => {
                for &n in sharers {
                    out.push(HomeAction::SendInvalidate { to: n });
                }
                sharers.clone()
            }
            DirState::Dirty { owner } => {
                out.push(HomeAction::SendRecallDirty { to: *owner });
                vec![*owner]
            }
            DirState::Operated { op, sharers } => {
                if sharers.is_empty() {
                    Vec::new()
                } else {
                    let op0 = op.0;
                    for &n in sharers {
                        out.push(HomeAction::SendRecallOperated { to: n, op: op0 });
                    }
                    sharers.clone()
                }
            }
        };
        if waiting.is_empty() {
            // Nothing to recall (a home-only Operated epoch promotes
            // implicitly — the home image already holds every operand).
            if !matches!(self.state, DirState::Unshared) {
                self.set_state(DirState::Unshared, "migrate-promote", out);
            }
            self.transient = Transient::MigratingOut {
                to,
                mig_epoch,
                phase: MigOutPhase::Drain,
            };
            out.push(HomeAction::StartHomeDrain {
                target: LocalState::Invalid,
                tag: NOTAG,
            });
        } else {
            self.transient = Transient::MigratingOut {
                to,
                mig_epoch,
                phase: MigOutPhase::Recall { waiting },
            };
        }
        true
    }

    /// Remove `node` from a [`MigOutPhase::Recall`] waiting set; returns
    /// true iff the set just became empty (the recall completed).
    fn mig_recall_tick(&mut self, node: NodeId) -> bool {
        if let Transient::MigratingOut {
            phase: MigOutPhase::Recall { waiting },
            ..
        } = &mut self.transient
        {
            if let Some(pos) = waiting.iter().position(|&n| n == node) {
                waiting.remove(pos);
                return waiting.is_empty();
            }
        }
        false
    }

    /// Every remote right is revoked: normalize the directory to Unshared
    /// and drain the home dentry's local references — unless the target
    /// died meanwhile, in which case the migration aborts here.
    fn mig_recall_complete(&mut self, now: u64, grace_ns: u64, out: &mut Vec<HomeAction<W>>) {
        let Transient::MigratingOut { to, mig_epoch, .. } = self.transient else {
            unreachable!("mig_recall_complete outside MigratingOut");
        };
        if self.dead.contains(&to) {
            self.abort_migration(now, grace_ns, "migration-aborted-target-dead", out);
            return;
        }
        if !matches!(self.state, DirState::Unshared) {
            self.set_state(DirState::Unshared, "migrate-recall-complete", out);
        }
        self.transient = Transient::MigratingOut {
            to,
            mig_epoch,
            phase: MigOutPhase::Drain,
        };
        out.push(HomeAction::StartHomeDrain {
            target: LocalState::Invalid,
            tag: NOTAG,
        });
    }

    /// Abort an outbound migration (the target died before the commit):
    /// the source re-assumes the chunk. Safe at every pre-commit phase —
    /// the target never serves a request before [`HomeEvent::MigrateCommit`]
    /// (or a quorum-confirmed source death) promotes it. Durable machines
    /// re-log the re-assumed image first, so recalled dirty data cannot be
    /// lost to a later crash of this still-authoritative home.
    fn abort_migration(
        &mut self,
        now: u64,
        grace_ns: u64,
        trigger: &'static str,
        out: &mut Vec<HomeAction<W>>,
    ) {
        self.transient = Transient::None;
        if !matches!(self.state, DirState::Unshared) {
            self.set_state(DirState::Unshared, trigger, out);
        } else {
            out.push(HomeAction::Trace(Transition {
                from: self.state.name(),
                to: self.state.name(),
                trigger,
            }));
        }
        out.push(HomeAction::SetHomeLocal {
            state: LocalState::Exclusive,
            tag: NOTAG,
        });
        if !self.begin_persist(out) {
            self.progress(now, grace_ns, out);
        }
    }

    /// Commit an inbound migration: this node becomes the chunk's
    /// authoritative home and replays every fence-parked request.
    fn adopt(
        &mut self,
        now: u64,
        grace_ns: u64,
        mig_epoch: u64,
        trigger: &'static str,
        out: &mut Vec<HomeAction<W>>,
    ) {
        self.transient = Transient::None;
        self.migrated_to = None;
        out.push(HomeAction::AdoptChunk { mig_epoch });
        out.push(HomeAction::Count(Counter::MigrationsIn));
        out.push(HomeAction::Trace(Transition {
            from: self.state.name(),
            to: self.state.name(),
            trigger,
        }));
        for _ in 0..self.pending.len() {
            out.push(HomeAction::Count(Counter::ParkedReplays));
        }
        self.progress(now, grace_ns, out);
    }

    /// Service one directory request. Returns true if the chunk is still
    /// stable (keep servicing the queue), false if a transient began.
    fn service(
        &mut self,
        now: u64,
        grace_ns: u64,
        req: Request<W>,
        out: &mut Vec<HomeAction<W>>,
    ) -> bool {
        out.push(HomeAction::ChargeDirUpdate);
        // Minimum-hold grace: if servicing this request would revoke rights
        // granted moments ago, let the grantee use them first. Without
        // this, a contended chunk's recall can arrive at the grantee before
        // its application thread performs a single access (observed as a
        // write livelock on a falsely-shared flag chunk).
        let revokes = match (&self.state, req.kind) {
            (DirState::Unshared, _) => false,
            (DirState::Shared { .. }, Kind::Read) => false,
            (DirState::Shared { sharers }, _) => !sharers.is_empty(),
            // The recorded owner resuming its own drain-deferred write
            // grant revokes nothing — the state was pre-committed to it.
            (DirState::Dirty { owner }, Kind::Write) if matches!(req.source, Requester::Remote { node, .. } if node == *owner) => {
                false
            }
            (DirState::Dirty { .. }, _) => true,
            (DirState::Operated { op, .. }, Kind::Operate(o2)) if op.0 == o2 => false,
            (DirState::Operated { sharers, .. }, _) => !sharers.is_empty(),
        };
        if revokes && grace_ns > 0 && now < self.granted_at + grace_ns {
            let resume_at = self.granted_at + grace_ns;
            self.pending.push_front(req);
            self.transient = Transient::GraceWait;
            out.push(HomeAction::ScheduleRetry { at: resume_at });
            return false;
        }
        match (&self.state, req.kind) {
            // ---------------- Read ----------------
            (DirState::Unshared, Kind::Read) => match req.source {
                Requester::Local(w) => {
                    out.push(HomeAction::Wake(w));
                    true
                }
                Requester::Remote { node, dst_off } => {
                    self.set_state(
                        DirState::Shared {
                            sharers: vec![node],
                        },
                        "remote-read",
                        out,
                    );
                    self.transient = Transient::HomeDrain;
                    self.current = Some(Request {
                        source: Requester::Remote { node, dst_off },
                        kind: Kind::Read,
                    });
                    out.push(HomeAction::StartHomeDrain {
                        target: LocalState::Shared,
                        tag: NOTAG,
                    });
                    false
                }
            },
            (DirState::Shared { .. }, Kind::Read) => match req.source {
                Requester::Local(w) => {
                    out.push(HomeAction::Wake(w));
                    true
                }
                Requester::Remote { node, dst_off } => {
                    self.add_sharer(node);
                    self.granted_at = now;
                    out.push(HomeAction::SendFill {
                        to: node,
                        dst_off,
                        exclusive: false,
                    });
                    true
                }
            },
            (DirState::Dirty { owner }, Kind::Read) => {
                let owner = *owner;
                self.transient = Transient::AwaitWriteback { from: owner };
                self.current = Some(req);
                out.push(HomeAction::SendDowngrade { to: owner });
                false
            }

            // ---------------- Write ----------------
            (DirState::Unshared, Kind::Write) => match req.source {
                Requester::Local(w) => {
                    self.granted_at = now;
                    out.push(HomeAction::Wake(w));
                    true
                }
                Requester::Remote { node, dst_off } => {
                    self.set_state(DirState::Dirty { owner: node }, "remote-write", out);
                    self.transient = Transient::HomeDrain;
                    self.current = Some(Request {
                        source: Requester::Remote { node, dst_off },
                        kind: Kind::Write,
                    });
                    out.push(HomeAction::StartHomeDrain {
                        target: LocalState::Invalid,
                        tag: NOTAG,
                    });
                    false
                }
            },
            (DirState::Shared { sharers }, Kind::Write) if sharers.is_empty() => match req.source {
                Requester::Local(w) => {
                    // Figure 6: R -> R/W/O at home is a pure promotion.
                    self.set_state(DirState::Unshared, "local-write-promotion", out);
                    self.granted_at = now;
                    out.push(HomeAction::SetHomeLocal {
                        state: LocalState::Exclusive,
                        tag: NOTAG,
                    });
                    out.push(HomeAction::Wake(w));
                    true
                }
                Requester::Remote { node, dst_off } => {
                    self.set_state(DirState::Dirty { owner: node }, "remote-write", out);
                    self.transient = Transient::HomeDrain;
                    self.current = Some(Request {
                        source: Requester::Remote { node, dst_off },
                        kind: Kind::Write,
                    });
                    out.push(HomeAction::StartHomeDrain {
                        target: LocalState::Invalid,
                        tag: NOTAG,
                    });
                    false
                }
            },
            (DirState::Shared { sharers }, Kind::Write) => {
                let targets = sharers.clone();
                self.transient = Transient::AwaitInvAcks {
                    waiting: targets.clone(),
                };
                self.current = Some(req);
                for n in targets {
                    out.push(HomeAction::SendInvalidate { to: n });
                }
                false
            }
            (DirState::Dirty { owner }, Kind::Write) => {
                let owner = *owner;
                if let Requester::Remote { node, dst_off } = req.source {
                    if node == owner {
                        // Resume after our own HomeDrain: grant the fill.
                        self.granted_at = now;
                        out.push(HomeAction::SendFill {
                            to: node,
                            dst_off,
                            exclusive: true,
                        });
                        return true;
                    }
                    self.transient = Transient::AwaitWriteback { from: owner };
                    self.current = Some(Request {
                        source: Requester::Remote { node, dst_off },
                        kind: Kind::Write,
                    });
                    out.push(HomeAction::SendRecallDirty { to: owner });
                    false
                } else {
                    self.transient = Transient::AwaitWriteback { from: owner };
                    self.current = Some(req);
                    out.push(HomeAction::SendRecallDirty { to: owner });
                    false
                }
            }

            // ---------------- Operate ----------------
            (DirState::Operated { op, .. }, Kind::Operate(op2)) if op.0 == op2 => {
                match req.source {
                    Requester::Local(w) => {
                        out.push(HomeAction::Wake(w));
                        true
                    }
                    Requester::Remote { node, .. } => {
                        self.add_sharer(node);
                        self.granted_at = now;
                        out.push(HomeAction::SendGrant { to: node, op: op2 });
                        true
                    }
                }
            }
            (DirState::Unshared, Kind::Operate(op)) => match req.source {
                Requester::Local(w) => {
                    // Exclusive subsumes Operate at home.
                    out.push(HomeAction::Wake(w));
                    true
                }
                Requester::Remote { node, dst_off } => {
                    self.epoch += 1;
                    self.set_state(
                        DirState::Operated {
                            op: OpId(op),
                            sharers: vec![node],
                        },
                        "remote-operate",
                        out,
                    );
                    self.transient = Transient::HomeDrain;
                    self.current = Some(Request {
                        source: Requester::Remote { node, dst_off },
                        kind: Kind::Operate(op),
                    });
                    out.push(HomeAction::StartHomeDrain {
                        target: LocalState::Operated,
                        tag: op,
                    });
                    false
                }
            },
            (DirState::Shared { sharers }, Kind::Operate(op)) if sharers.is_empty() => {
                let init_sharers = match &req.source {
                    Requester::Local(_) => vec![],
                    Requester::Remote { node, .. } => vec![*node],
                };
                self.epoch += 1;
                self.set_state(
                    DirState::Operated {
                        op: OpId(op),
                        sharers: init_sharers,
                    },
                    "operate-from-shared",
                    out,
                );
                self.transient = Transient::HomeDrain;
                self.current = Some(req);
                out.push(HomeAction::StartHomeDrain {
                    target: LocalState::Operated,
                    tag: op,
                });
                false
            }
            (DirState::Shared { sharers }, Kind::Operate(_)) => {
                let targets = sharers.clone();
                self.transient = Transient::AwaitInvAcks {
                    waiting: targets.clone(),
                };
                self.current = Some(req);
                for n in targets {
                    out.push(HomeAction::SendInvalidate { to: n });
                }
                false
            }
            (DirState::Dirty { owner }, Kind::Operate(_)) => {
                let owner = *owner;
                self.transient = Transient::AwaitWriteback { from: owner };
                self.current = Some(req);
                out.push(HomeAction::SendRecallDirty { to: owner });
                false
            }
            // Operated chunk asked for Read/Write/different op: recall all
            // operand caches and reduce, then retry from Unshared.
            (DirState::Operated { op, sharers }, _) => {
                let op0 = op.0;
                let targets = sharers.clone();
                if targets.is_empty() {
                    // Only the home node was operating: Figure 6 promotion.
                    self.set_state(DirState::Unshared, "operated-promotion", out);
                    out.push(HomeAction::SetHomeLocal {
                        state: LocalState::Exclusive,
                        tag: NOTAG,
                    });
                    self.pending.push_front(req);
                    true
                } else {
                    self.transient = Transient::AwaitFlushes {
                        op: op0,
                        epoch: self.epoch,
                        waiting: targets.clone(),
                    };
                    self.current = Some(req);
                    for n in targets {
                        out.push(HomeAction::SendRecallOperated { to: n, op: op0 });
                    }
                    false
                }
            }
        }
    }

    /// Home-side peer-death cleanup: erase `dead` from this chunk's
    /// bookkeeping and resume the engine if it was waiting on the peer.
    /// Monotone and idempotent — a second `PeerDown` for the same node is
    /// a no-op, and the node is remembered in `self.dead` so straggler
    /// events from it are rejected forever after.
    fn forget_peer(&mut self, now: u64, grace_ns: u64, dead: NodeId, out: &mut Vec<HomeAction<W>>) {
        if self.dead.contains(&dead) {
            return;
        }
        self.dead.push(dead);
        // Requests the dead node queued must not be serviced: a fill sent
        // to it would be dropped, but granting would corrupt the sharer set
        // with a node that can never evict or acknowledge.
        self.pending
            .retain(|r| !matches!(r.source, Requester::Remote { node, .. } if node == dead));
        if self
            .current
            .as_ref()
            .is_some_and(|r| matches!(r.source, Requester::Remote { node, .. } if node == dead))
        {
            self.current = None;
        }
        // One prune counted per chunk the dead node actually occupied: a
        // sharer-set slot or a transient wait-set slot (they are pruned
        // together below).
        let occupied = self.has_sharer(dead) || self.in_wait_set(dead);
        if occupied {
            out.push(HomeAction::Count(Counter::SharersPruned));
        }
        match &self.transient {
            Transient::AwaitWriteback { from } if *from == dead => {
                // The dirty data died with the peer (fail-stop): the home
                // copy becomes authoritative again.
                self.set_state(DirState::Unshared, "peer-down", out);
                out.push(HomeAction::SetHomeLocal {
                    state: LocalState::Exclusive,
                    tag: NOTAG,
                });
                self.finish_transient(now, grace_ns, out);
            }
            Transient::AwaitInvAcks { .. } => {
                self.remove_sharer(dead);
                if self.transient_remove(dead) {
                    self.finish_transient(now, grace_ns, out);
                }
            }
            Transient::AwaitFlushes { .. } => {
                self.remove_sharer(dead);
                if self.transient_remove(dead) {
                    // Same completion as the last flush arriving — except
                    // the epoch closes by abort: the dead contributor's
                    // operands are lost (fail-stop), never reduced.
                    out.push(HomeAction::Count(Counter::EpochsAborted));
                    self.set_state(DirState::Unshared, "peer-down-epoch-abort", out);
                    out.push(HomeAction::SetHomeLocal {
                        state: LocalState::Exclusive,
                        tag: NOTAG,
                    });
                    // Live contributors' flushes were already reduced into
                    // the home image; persist them before the parked
                    // requester resumes, exactly as on the normal
                    // flushes-complete path.
                    if !self.begin_persist(out) {
                        self.finish_transient(now, grace_ns, out);
                    }
                }
            }
            Transient::MigratingOut { to, phase, .. } => {
                let to = *to;
                let in_recall = matches!(phase, MigOutPhase::Recall { .. });
                let in_await_ack = matches!(phase, MigOutPhase::AwaitAck);
                if in_recall {
                    // The dead node may owe a recall reply (it may even BE
                    // the target): prune it from the wait set; the
                    // target-death check happens at the completion point,
                    // which this prune may just have reached.
                    self.remove_sharer(dead);
                    if self.mig_recall_tick(dead) {
                        self.mig_recall_complete(now, grace_ns, out);
                    } else if matches!(&self.state, DirState::Dirty { owner } if *owner == dead) {
                        // The dirty owner died unflushed: its data is lost
                        // (fail-stop) and the home image is authoritative
                        // again.
                        self.set_state(DirState::Unshared, "peer-down", out);
                    }
                } else if in_await_ack && dead == to {
                    // The target died before acking: it never served
                    // anyone, so the source re-assumes the chunk.
                    self.abort_migration(now, grace_ns, "migration-aborted-target-dead", out);
                }
                // MigOutPhase::Drain: a drain cannot be cancelled
                // mid-flight; the Drained handler re-checks the target
                // before transferring.
            }
            Transient::MigratingIn {
                from,
                mig_epoch,
                phase,
            } => {
                let from = *from;
                let mig_epoch = *mig_epoch;
                let awaiting_commit = matches!(phase, MigInPhase::AwaitCommit);
                if from == dead && awaiting_commit {
                    // The source died after acking its hand-off; the
                    // quorum-confirmed death doubles as the commit (the
                    // source can never serve again).
                    self.adopt(now, grace_ns, mig_epoch, "migrate-adopt-source-dead", out);
                }
                // MigInPhase::Persist: keep persisting; the PersistDone
                // handler notices the death and self-promotes.
            }
            _ => {
                let home_becomes_sole = match &self.state {
                    DirState::Dirty { owner } => *owner == dead,
                    DirState::Shared { .. } => self.remove_sharer(dead),
                    DirState::Operated { .. } => {
                        // Its combined operands are lost (fail-stop); the
                        // home stays Operated and promotes lazily.
                        self.remove_sharer(dead);
                        false
                    }
                    _ => false,
                };
                if home_becomes_sole {
                    self.set_state(DirState::Unshared, "peer-down", out);
                    out.push(HomeAction::SetHomeLocal {
                        state: LocalState::Exclusive,
                        tag: NOTAG,
                    });
                }
            }
        }
    }

    /// Remove `node` from a transient waiting set; returns true if the set
    /// became empty (the transient completed).
    fn transient_remove(&mut self, node: NodeId) -> bool {
        let set = match &mut self.transient {
            Transient::AwaitInvAcks { waiting } | Transient::AwaitFlushes { waiting, .. } => {
                waiting
            }
            _ => return false,
        };
        if let Some(pos) = set.iter().position(|&n| n == node) {
            set.remove(pos);
        }
        set.is_empty()
    }

    /// Is `node` in the current sharer set?
    fn has_sharer(&self, node: NodeId) -> bool {
        match &self.state {
            DirState::Shared { sharers } | DirState::Operated { sharers, .. } => {
                sharers.contains(&node)
            }
            _ => false,
        }
    }

    /// Is `node` in the current transient wait set?
    fn in_wait_set(&self, node: NodeId) -> bool {
        match &self.transient {
            Transient::AwaitInvAcks { waiting } | Transient::AwaitFlushes { waiting, .. } => {
                waiting.contains(&node)
            }
            Transient::AwaitWriteback { from } => *from == node,
            Transient::MigratingOut {
                phase: MigOutPhase::Recall { waiting },
                ..
            } => waiting.contains(&node),
            _ => false,
        }
    }

    /// Add a remote sharer (idempotent).
    fn add_sharer(&mut self, node: NodeId) {
        match &mut self.state {
            DirState::Shared { sharers } | DirState::Operated { sharers, .. } => {
                if !sharers.contains(&node) {
                    sharers.push(node);
                }
            }
            s => panic!("add_sharer in state {s:?}"),
        }
    }

    /// Remove a remote sharer if present; returns true if it was the last.
    fn remove_sharer(&mut self, node: NodeId) -> bool {
        match &mut self.state {
            DirState::Shared { sharers } | DirState::Operated { sharers, .. } => {
                if let Some(pos) = sharers.iter().position(|&n| n == node) {
                    sharers.remove(pos);
                }
                sharers.is_empty()
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type M = HomeMachine<u32>;

    fn remote(node: NodeId, kind: Kind) -> HomeEvent<u32> {
        HomeEvent::Request(Request {
            source: Requester::Remote { node, dst_off: 0 },
            kind,
        })
    }

    fn local(w: u32, kind: Kind) -> HomeEvent<u32> {
        HomeEvent::Request(Request {
            source: Requester::Local(w),
            kind,
        })
    }

    #[test]
    fn new_machine_is_unshared_and_stable() {
        let m = M::new();
        assert_eq!(m.state(), &DirState::Unshared);
        assert!(m.transient().is_none());
        assert_eq!(m.pending_len(), 0);
        assert!(!m.has_current());
    }

    #[test]
    fn local_read_on_unshared_wakes_immediately() {
        let mut m = M::new();
        let acts = m.on_event(0, 0, local(7, Kind::Read));
        assert!(acts.contains(&HomeAction::Wake(7)));
        assert_eq!(m.state(), &DirState::Unshared);
    }

    #[test]
    fn remote_read_drains_then_fills() {
        let mut m = M::new();
        let acts = m.on_event(0, 0, remote(2, Kind::Read));
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::StartHomeDrain {
                target: LocalState::Shared,
                ..
            }
        )));
        assert_eq!(m.transient(), &Transient::HomeDrain);
        let acts = m.on_event(1, 0, HomeEvent::Drained);
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::SendFill {
                to: 2,
                exclusive: false,
                ..
            }
        )));
        assert_eq!(
            m.state(),
            &DirState::Shared { sharers: vec![2] },
            "requester recorded as sharer"
        );
        assert!(m.transient().is_none());
    }

    #[test]
    fn write_invalidates_all_sharers_then_grants() {
        let mut m = M::new();
        m.on_event(0, 0, remote(1, Kind::Read));
        m.on_event(0, 0, HomeEvent::Drained);
        m.on_event(0, 0, remote(2, Kind::Read));
        assert_eq!(
            m.state(),
            &DirState::Shared {
                sharers: vec![1, 2]
            }
        );
        let acts = m.on_event(0, 0, remote(1, Kind::Write));
        let invs: Vec<_> = acts
            .iter()
            .filter(|a| matches!(a, HomeAction::SendInvalidate { .. }))
            .collect();
        assert_eq!(invs.len(), 2, "both sharers invalidated: {acts:?}");
        // First ack shrinks the set; second completes and grants Dirty.
        let acts = m.on_event(1, 0, HomeEvent::InvAck { from: 1 });
        assert!(acts
            .iter()
            .all(|a| !matches!(a, HomeAction::SendFill { .. })));
        // Second ack completes the epoch; the writer is installed as Dirty
        // owner and the home drains its own readers before filling.
        let acts = m.on_event(1, 0, HomeEvent::InvAck { from: 2 });
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::StartHomeDrain {
                target: LocalState::Invalid,
                ..
            }
        )));
        assert_eq!(m.state(), &DirState::Dirty { owner: 1 });
        let acts = m.on_event(2, 0, HomeEvent::Drained);
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::SendFill {
                to: 1,
                exclusive: true,
                ..
            }
        )));
    }

    #[test]
    fn stale_inv_ack_is_ignored() {
        let mut m = M::new();
        let acts = m.on_event(0, 0, HomeEvent::InvAck { from: 1 });
        assert!(acts.is_empty());
        assert_eq!(m.state(), &DirState::Unshared);
    }

    #[test]
    fn flush_epoch_check_rejects_old_operator() {
        let mut m = M::new();
        m.on_event(0, 0, remote(1, Kind::Operate(3)));
        m.on_event(0, 0, HomeEvent::Drained);
        assert!(matches!(m.state(), DirState::Operated { .. }));
        // A read arrives: recall the Operated set under op 3.
        let acts = m.on_event(0, 0, remote(2, Kind::Read));
        assert!(acts
            .iter()
            .any(|a| matches!(a, HomeAction::SendRecallOperated { to: 1, op: 3 })));
        // A crossing flush of a DIFFERENT operator must not close the epoch.
        m.on_event(
            1,
            0,
            HomeEvent::Flush {
                from: 1,
                op: 9,
                has_data: true,
            },
        );
        assert!(matches!(m.transient(), Transient::AwaitFlushes { .. }));
        // The real flush completes the recall and re-services the read.
        let acts = m.on_event(
            1,
            0,
            HomeEvent::Flush {
                from: 1,
                op: 3,
                has_data: true,
            },
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::StartHomeDrain {
                target: LocalState::Shared,
                ..
            }
        )));
    }

    #[test]
    fn grace_window_defers_revocations() {
        let mut m = M::new();
        m.on_event(0, 1_000, remote(1, Kind::Write));
        // Drain completes past the initial grace window; the resumed write
        // grants the fill and stamps granted_at = 1000.
        let acts = m.on_event(1_000, 1_000, HomeEvent::Drained);
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::SendFill {
                to: 1,
                exclusive: true,
                ..
            }
        )));
        assert_eq!(m.state(), &DirState::Dirty { owner: 1 });
        // A competing read 10 ns later falls inside the grace window.
        let acts = m.on_event(1_010, 1_000, remote(2, Kind::Read));
        assert!(acts
            .iter()
            .any(|a| matches!(a, HomeAction::ScheduleRetry { at: 2_000 })));
        assert_eq!(m.transient(), &Transient::GraceWait);
        // After the window the retry downgrades the owner.
        let acts = m.on_event(2_000, 1_000, HomeEvent::RetryExpired);
        assert!(acts
            .iter()
            .any(|a| matches!(a, HomeAction::SendDowngrade { to: 1 })));
    }

    #[test]
    fn peer_down_reclaims_dirty_ownership() {
        let mut m = M::new();
        m.on_event(0, 0, remote(1, Kind::Write));
        m.on_event(0, 0, HomeEvent::Drained);
        assert_eq!(m.state(), &DirState::Dirty { owner: 1 });
        let acts = m.on_event(
            5,
            0,
            HomeEvent::PeerDown {
                dead: 1,
                view_epoch: 1,
            },
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::SetHomeLocal {
                state: LocalState::Exclusive,
                ..
            }
        )));
        assert_eq!(m.state(), &DirState::Unshared);
    }

    #[test]
    fn transient_sets_drain_to_completion() {
        let mut m = M::new();
        m.transient = Transient::AwaitFlushes {
            op: 0,
            epoch: 1,
            waiting: vec![1, 2, 3],
        };
        assert!(!m.transient_remove(2));
        assert!(!m.transient_remove(9)); // unknown node: no-op
        assert!(!m.transient_remove(1));
        assert!(m.transient_remove(3));
    }

    #[test]
    fn transient_remove_ignores_wrong_kind() {
        let mut m = M::new();
        m.transient = Transient::AwaitWriteback { from: 1 };
        assert!(!m.transient_remove(1));
    }

    #[test]
    fn peer_down_aborts_await_flushes_epoch() {
        let mut m = M::new();
        m.on_event(0, 0, remote(1, Kind::Operate(5)));
        m.on_event(0, 0, HomeEvent::Drained);
        m.on_event(0, 0, remote(2, Kind::Operate(5)));
        assert_eq!(m.epoch(), 1);
        // A write forces the epoch closed: recall both contributors.
        m.on_event(0, 0, local(9, Kind::Write));
        assert!(matches!(
            m.transient(),
            Transient::AwaitFlushes {
                op: 5,
                epoch: 1,
                ..
            }
        ));
        // Node 1 flushes; node 2 dies before flushing.
        m.on_event(
            1,
            0,
            HomeEvent::Flush {
                from: 1,
                op: 5,
                has_data: true,
            },
        );
        let acts = m.on_event(
            2,
            0,
            HomeEvent::PeerDown {
                dead: 2,
                view_epoch: 1,
            },
        );
        assert!(acts.contains(&HomeAction::Count(Counter::EpochsAborted)));
        assert!(acts.contains(&HomeAction::Count(Counter::SharersPruned)));
        // The parked write was re-serviced: home is sole owner again and the
        // local writer woke.
        assert!(acts.contains(&HomeAction::Wake(9)));
        assert_eq!(m.state(), &DirState::Unshared);
        assert!(m.transient().is_none());
    }

    #[test]
    fn stale_flush_from_dead_peer_is_not_reduced() {
        let mut m = M::new();
        m.on_event(0, 0, remote(1, Kind::Operate(5)));
        m.on_event(0, 0, HomeEvent::Drained);
        m.on_event(
            1,
            0,
            HomeEvent::PeerDown {
                dead: 1,
                view_epoch: 1,
            },
        );
        // Epoch 1's only contributor is gone; a successor takes exclusive
        // ownership.
        m.on_event(2, 0, remote(2, Kind::Write));
        m.on_event(2, 0, HomeEvent::Drained);
        assert_eq!(m.state(), &DirState::Dirty { owner: 2 });
        // A straggler flush from the dead node must not be applied over the
        // new owner's data.
        let acts = m.on_event(
            3,
            0,
            HomeEvent::Flush {
                from: 1,
                op: 5,
                has_data: true,
            },
        );
        assert!(
            !acts
                .iter()
                .any(|a| matches!(a, HomeAction::ApplyFlushData { .. })),
            "stale operand flush of an aborted epoch was reduced: {acts:?}"
        );
        assert_eq!(m.state(), &DirState::Dirty { owner: 2 });
    }

    #[test]
    fn dead_peer_requests_and_acks_are_rejected() {
        let mut m = M::new();
        m.on_event(
            0,
            0,
            HomeEvent::PeerDown {
                dead: 1,
                view_epoch: 1,
            },
        );
        assert!(m.is_dead(1));
        assert_eq!(m.view_epoch(), 1);
        let acts = m.on_event(1, 0, remote(1, Kind::Write));
        assert!(!acts
            .iter()
            .any(|a| matches!(a, HomeAction::SendFill { .. })));
        assert_eq!(m.state(), &DirState::Unshared);
        assert_eq!(m.pending_len(), 0);
        // A replayed declaration carrying an already-applied epoch stamp is
        // fenced: nothing but the stale-event trace comes back.
        let acts = m.on_event(
            2,
            0,
            HomeEvent::PeerDown {
                dead: 1,
                view_epoch: 1,
            },
        );
        assert!(acts
            .iter()
            .all(|a| matches!(a, HomeAction::Trace(t) if t.trigger == "stale-peer-down-epoch")));
        assert!(!acts.is_empty());
        // A later epoch naming the same (already dead) node advances the
        // fence but changes no protocol state.
        let acts = m.on_event(
            3,
            0,
            HomeEvent::PeerDown {
                dead: 1,
                view_epoch: 2,
            },
        );
        assert!(acts.is_empty());
        assert_eq!(m.view_epoch(), 2);
    }

    #[test]
    fn peer_down_prunes_waiting_inv_ack() {
        let mut m = M::new();
        m.on_event(0, 0, remote(1, Kind::Read));
        m.on_event(0, 0, HomeEvent::Drained);
        m.on_event(0, 0, remote(2, Kind::Read));
        // Local write: both sharers must be invalidated.
        m.on_event(0, 0, local(7, Kind::Write));
        assert!(matches!(m.transient(), Transient::AwaitInvAcks { .. }));
        m.on_event(1, 0, HomeEvent::InvAck { from: 1 });
        // Node 2 dies instead of acking: the epoch completes and the local
        // writer is granted.
        let acts = m.on_event(
            2,
            0,
            HomeEvent::PeerDown {
                dead: 2,
                view_epoch: 1,
            },
        );
        assert!(acts.contains(&HomeAction::Count(Counter::SharersPruned)));
        assert!(acts.contains(&HomeAction::Wake(7)));
        assert_eq!(m.state(), &DirState::Unshared);
    }

    #[test]
    fn epoch_ids_are_distinct_across_reopens() {
        let mut m = M::new();
        m.on_event(0, 0, remote(1, Kind::Operate(5)));
        m.on_event(0, 0, HomeEvent::Drained);
        assert_eq!(m.epoch(), 1);
        // Close epoch 1 via recall + flush.
        m.on_event(0, 0, remote(2, Kind::Read));
        m.on_event(
            0,
            0,
            HomeEvent::Flush {
                from: 1,
                op: 5,
                has_data: true,
            },
        );
        m.on_event(0, 0, HomeEvent::Drained);
        m.on_event(0, 0, HomeEvent::EvictNotice { from: 2 });
        // Reopen the same operator: a fresh epoch id.
        m.on_event(1, 0, remote(1, Kind::Operate(5)));
        m.on_event(1, 0, HomeEvent::Drained);
        assert_eq!(m.epoch(), 2);
    }

    #[test]
    fn sharer_bookkeeping() {
        let mut m = M::new();
        m.state = DirState::Shared { sharers: vec![] };
        m.add_sharer(2);
        m.add_sharer(5);
        m.add_sharer(2); // idempotent
        assert_eq!(
            m.state,
            DirState::Shared {
                sharers: vec![2, 5]
            }
        );
        assert!(!m.remove_sharer(2));
        assert!(m.remove_sharer(5));
        assert!(m.remove_sharer(7), "removing from empty set reports empty");
    }

    /// Drive a durable machine to the recalled-writeback point: node 1 owns
    /// the chunk Dirty, node 2's read recalls it, the writeback arrives.
    fn durable_at_writeback() -> M {
        let mut m = M::new();
        m.set_durable(true);
        m.on_event(0, 0, remote(1, Kind::Write));
        m.on_event(0, 0, HomeEvent::Drained);
        m.on_event(0, 0, remote(2, Kind::Read));
        m.on_event(
            0,
            0,
            HomeEvent::Writeback {
                from: 1,
                downgrade: true,
            },
        );
        m
    }

    #[test]
    fn durable_writeback_persists_before_ack() {
        let mut m = durable_at_writeback();
        // The writeback completed the wait, but the machine must now be
        // parked on the persist — the requester (node 2) not yet filled.
        assert_eq!(m.transient(), &Transient::AwaitPersist { seq: 1 });
        assert!(m.has_current(), "requester stays parked across the persist");
        // Confirmation releases the parked request and counts the persist.
        let acts = m.on_event(0, 0, HomeEvent::PersistDone { seq: 1 });
        assert!(acts.contains(&HomeAction::Count(Counter::FlushPersists)));
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::SendFill {
                to: 2,
                exclusive: false,
                ..
            }
        )));
        assert!(m.transient().is_none());
    }

    #[test]
    fn stale_persist_done_is_ignored() {
        let mut m = durable_at_writeback();
        assert_eq!(m.transient(), &Transient::AwaitPersist { seq: 1 });
        // A confirmation from before the awaited sequence changes nothing.
        let acts = m.on_event(0, 0, HomeEvent::PersistDone { seq: 0 });
        assert!(!acts.contains(&HomeAction::Count(Counter::FlushPersists)));
        assert_eq!(m.transient(), &Transient::AwaitPersist { seq: 1 });
        // A later (covering) confirmation completes it.
        let acts = m.on_event(0, 0, HomeEvent::PersistDone { seq: 5 });
        assert!(acts.contains(&HomeAction::Count(Counter::FlushPersists)));
        assert!(m.transient().is_none());
        // And once stable, any further confirmation is stale.
        let acts = m.on_event(0, 0, HomeEvent::PersistDone { seq: 5 });
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::Trace(Transition {
                trigger: "stale-persist-done",
                ..
            })
        )));
    }

    #[test]
    fn durable_voluntary_writeback_persists_idle() {
        let mut m = M::new();
        m.set_durable(true);
        m.on_event(0, 0, remote(1, Kind::Write));
        m.on_event(0, 0, HomeEvent::Drained);
        // Node 1 evicts voluntarily: no requester waits, but the machine
        // still persists the new image before servicing anything further.
        let acts = m.on_event(
            0,
            0,
            HomeEvent::Writeback {
                from: 1,
                downgrade: false,
            },
        );
        assert!(acts.contains(&HomeAction::PersistChunk { seq: 1 }));
        assert_eq!(m.transient(), &Transient::AwaitPersist { seq: 1 });
        m.on_event(0, 0, HomeEvent::PersistDone { seq: 1 });
        assert!(m.transient().is_none());
        assert_eq!(m.state(), &DirState::Unshared);
    }

    #[test]
    fn non_durable_machine_never_persists() {
        let mut m = M::new();
        m.on_event(0, 0, remote(1, Kind::Write));
        m.on_event(0, 0, HomeEvent::Drained);
        m.on_event(0, 0, remote(2, Kind::Read));
        let acts = m.on_event(
            0,
            0,
            HomeEvent::Writeback {
                from: 1,
                downgrade: true,
            },
        );
        assert!(!acts
            .iter()
            .any(|a| matches!(a, HomeAction::PersistChunk { .. })));
        assert!(m.transient().is_none(), "completes without a persist wait");
        assert_eq!(m.persist_seq(), 0);
    }

    #[test]
    fn durable_flushes_complete_persists_before_ack() {
        let mut m = M::new();
        m.set_durable(true);
        m.on_event(0, 0, remote(1, Kind::Operate(5)));
        m.on_event(0, 0, HomeEvent::Drained);
        // A read closes the epoch: recall, then the flush arrives.
        m.on_event(0, 0, remote(2, Kind::Read));
        let acts = m.on_event(
            0,
            0,
            HomeEvent::Flush {
                from: 1,
                op: 5,
                has_data: true,
            },
        );
        // Reduce first, then persist the reduced image; the read stays
        // parked until the log confirms.
        let reduce_at = acts
            .iter()
            .position(|a| matches!(a, HomeAction::ApplyFlushData { .. }))
            .expect("flush data reduced");
        let persist_at = acts
            .iter()
            .position(|a| matches!(a, HomeAction::PersistChunk { .. }))
            .expect("reduced image persisted");
        assert!(reduce_at < persist_at, "persist covers the reduction");
        assert_eq!(m.transient(), &Transient::AwaitPersist { seq: 1 });
        let acts = m.on_event(0, 0, HomeEvent::PersistDone { seq: 1 });
        assert!(acts
            .iter()
            .any(|a| matches!(a, HomeAction::StartHomeDrain { .. })));
    }

    #[test]
    fn peer_restart_unfences_the_identity() {
        let mut m = M::new();
        m.on_event(0, 0, remote(1, Kind::Write));
        m.on_event(0, 0, HomeEvent::Drained);
        m.on_event(
            0,
            0,
            HomeEvent::PeerDown {
                dead: 1,
                view_epoch: 1,
            },
        );
        assert!(m.is_dead(1));
        // Its events are fenced while dead.
        let acts = m.on_event(0, 0, remote(1, Kind::Read));
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::Trace(Transition {
                trigger: "stale-event-from-dead-peer",
                ..
            })
        )));
        // A stale restart admission (epoch not newer) is fenced.
        let acts = m.on_event(
            0,
            0,
            HomeEvent::PeerRestarted {
                node: 1,
                view_epoch: 1,
            },
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::Trace(Transition {
                trigger: "stale-peer-restart-epoch",
                ..
            })
        )));
        assert!(m.is_dead(1));
        // A properly-bumped admission un-deadens it; fresh requests work.
        m.on_event(
            0,
            0,
            HomeEvent::PeerRestarted {
                node: 1,
                view_epoch: 2,
            },
        );
        assert!(!m.is_dead(1));
        assert_eq!(m.view_epoch(), 2);
        let acts = m.on_event(0, 0, remote(1, Kind::Read));
        assert!(acts
            .iter()
            .any(|a| matches!(a, HomeAction::StartHomeDrain { .. })));
    }

    #[test]
    fn persist_wait_survives_unrelated_peer_down() {
        // A PeerDown landing while a persist is in flight must not abandon
        // the wait: the persist is local, not owed by any peer.
        let mut m = durable_at_writeback();
        assert_eq!(m.transient(), &Transient::AwaitPersist { seq: 1 });
        m.on_event(
            0,
            0,
            HomeEvent::PeerDown {
                dead: 3,
                view_epoch: 1,
            },
        );
        assert_eq!(m.transient(), &Transient::AwaitPersist { seq: 1 });
        let acts = m.on_event(0, 0, HomeEvent::PersistDone { seq: 1 });
        assert!(acts.contains(&HomeAction::Count(Counter::FlushPersists)));
    }

    // ---- chunk migration (DESIGN.md §15) ----

    /// Drive a fresh source machine through recall + drain up to the
    /// transfer; returns the machine parked in `MigratingOut:AwaitAck`.
    fn source_awaiting_ack(to: NodeId) -> M {
        let mut m = M::new();
        let acts = m.on_event(0, 0, HomeEvent::BeginMigration { to });
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::StartHomeDrain {
                target: LocalState::Invalid,
                ..
            }
        )));
        let acts = m.on_event(0, 0, HomeEvent::Drained);
        assert!(acts.contains(&HomeAction::TransferChunk { to, mig_epoch: 1 }));
        assert_eq!(m.transient().name(), "MigratingOut:AwaitAck");
        m
    }

    #[test]
    fn migration_source_happy_path_departs_on_ack() {
        let mut m = source_awaiting_ack(2);
        let acts = m.on_event(
            0,
            0,
            HomeEvent::MigrateAck {
                from: 2,
                mig_epoch: 1,
            },
        );
        assert!(acts.contains(&HomeAction::SendMigrateCommit {
            to: 2,
            mig_epoch: 1
        }));
        assert!(acts.contains(&HomeAction::DepartChunk {
            to: 2,
            mig_epoch: 1
        }));
        assert!(acts.contains(&HomeAction::Count(Counter::MigrationsOut)));
        assert_eq!(m.migrated_to(), Some((2, 1)));
        assert!(m.transient().is_none());
    }

    #[test]
    fn migration_recall_revokes_every_right_first() {
        let mut m = M::new();
        // Two sharers hold the chunk when the migration is requested.
        m.on_event(0, 0, remote(1, Kind::Read));
        m.on_event(0, 0, HomeEvent::Drained);
        m.on_event(0, 0, remote(2, Kind::Read));
        let acts = m.on_event(0, 0, HomeEvent::BeginMigration { to: 3 });
        let invs = acts
            .iter()
            .filter(|a| matches!(a, HomeAction::SendInvalidate { .. }))
            .count();
        assert_eq!(invs, 2, "both sharers recalled: {acts:?}");
        assert_eq!(m.transient().name(), "MigratingOut:Recall");
        // No transfer may happen until the last right is revoked.
        let acts = m.on_event(0, 0, HomeEvent::InvAck { from: 1 });
        assert!(acts
            .iter()
            .all(|a| !matches!(a, HomeAction::StartHomeDrain { .. })));
        let acts = m.on_event(0, 0, HomeEvent::InvAck { from: 2 });
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::StartHomeDrain {
                target: LocalState::Invalid,
                ..
            }
        )));
        assert_eq!(m.state(), &DirState::Unshared);
        let acts = m.on_event(0, 0, HomeEvent::Drained);
        assert!(acts.contains(&HomeAction::TransferChunk {
            to: 3,
            mig_epoch: 1
        }));
    }

    #[test]
    fn migration_recall_pulls_dirty_data_home() {
        let mut m = M::new();
        m.on_event(0, 0, remote(1, Kind::Write));
        m.on_event(0, 0, HomeEvent::Drained);
        assert_eq!(m.state(), &DirState::Dirty { owner: 1 });
        let acts = m.on_event(0, 0, HomeEvent::BeginMigration { to: 2 });
        assert!(acts.contains(&HomeAction::SendRecallDirty { to: 1 }));
        // The owner's writeback lands the dirty image in the home slot —
        // exactly what the transfer will ship.
        let acts = m.on_event(
            0,
            0,
            HomeEvent::Writeback {
                from: 1,
                downgrade: false,
            },
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::StartHomeDrain {
                target: LocalState::Invalid,
                ..
            }
        )));
        let acts = m.on_event(0, 0, HomeEvent::Drained);
        assert!(acts.contains(&HomeAction::TransferChunk {
            to: 2,
            mig_epoch: 1
        }));
    }

    #[test]
    fn migration_parks_requests_behind_the_fence_and_forwards_after() {
        let mut m = source_awaiting_ack(2);
        // Requests arriving under the fence park — no fill, no wake.
        let acts = m.on_event(0, 0, remote(1, Kind::Read));
        assert!(acts
            .iter()
            .all(|a| !matches!(a, HomeAction::SendFill { .. } | HomeAction::Wake(_))));
        assert_eq!(m.pending_len(), 1);
        let acts = m.on_event(
            0,
            0,
            HomeEvent::MigrateAck {
                from: 2,
                mig_epoch: 1,
            },
        );
        // The parked remote request replays as a forward to the new home.
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::ForwardRequest {
                to: 2,
                node: 1,
                kind: Kind::Read,
                ..
            }
        )));
        assert!(acts.contains(&HomeAction::Count(Counter::ParkedReplays)));
        // Post-departure traffic is forwarded too, never served here.
        let acts = m.on_event(0, 0, remote(3, Kind::Write));
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::ForwardRequest {
                to: 2,
                node: 3,
                kind: Kind::Write,
                ..
            }
        )));
        // A parked *local* waiter wakes instead (the caller re-resolves the
        // home map and retries against the new home).
        let acts = m.on_event(0, 0, local(9, Kind::Read));
        assert!(acts.contains(&HomeAction::Wake(9)));
    }

    #[test]
    fn migration_target_acks_then_adopts_on_commit() {
        let mut m = M::new();
        let acts = m.on_event(
            0,
            0,
            HomeEvent::MigrateData {
                from: 0,
                mig_epoch: 5,
            },
        );
        // Non-durable: ack immediately, then wait for the commit.
        assert!(acts.contains(&HomeAction::SendMigrateAck {
            to: 0,
            mig_epoch: 5
        }));
        assert_eq!(m.transient().name(), "MigratingIn:AwaitCommit");
        // Requests park while the source is still authoritative.
        m.on_event(0, 0, remote(3, Kind::Read));
        assert_eq!(m.pending_len(), 1);
        let acts = m.on_event(
            0,
            0,
            HomeEvent::MigrateCommit {
                from: 0,
                mig_epoch: 5,
            },
        );
        assert!(acts.contains(&HomeAction::AdoptChunk { mig_epoch: 5 }));
        assert!(acts.contains(&HomeAction::Count(Counter::MigrationsIn)));
        assert!(acts.contains(&HomeAction::Count(Counter::ParkedReplays)));
        // The parked request is now served by the adopted home.
        assert!(acts
            .iter()
            .any(|a| matches!(a, HomeAction::StartHomeDrain { .. })));
        assert!(m.migrated_to().is_none());
        // The fence epoch was adopted as a burned persist sequence: a later
        // persist must outrank every record the source ever logged.
        assert!(m.persist_seq() >= 5);
    }

    #[test]
    fn durable_migration_target_persists_before_ack() {
        let mut m = M::new();
        m.set_durable(true);
        let acts = m.on_event(
            0,
            0,
            HomeEvent::MigrateData {
                from: 0,
                mig_epoch: 3,
            },
        );
        // Persist-before-ack: the transferred image must be on this log
        // before the source is told it may stop being authoritative.
        assert!(acts
            .iter()
            .any(|a| matches!(a, HomeAction::PersistChunk { seq } if *seq >= 3)));
        assert!(acts
            .iter()
            .all(|a| !matches!(a, HomeAction::SendMigrateAck { .. })));
        assert_eq!(m.transient().name(), "MigratingIn:Persist");
        let acts = m.on_event(0, 0, HomeEvent::PersistDone { seq: 3 });
        assert!(acts.contains(&HomeAction::SendMigrateAck {
            to: 0,
            mig_epoch: 3
        }));
        assert_eq!(m.transient().name(), "MigratingIn:AwaitCommit");
    }

    #[test]
    fn source_reassumes_when_target_dies_before_ack() {
        let mut m = source_awaiting_ack(2);
        let acts = m.on_event(
            0,
            0,
            HomeEvent::PeerDown {
                dead: 2,
                view_epoch: 1,
            },
        );
        // The target never served anyone, so the source re-assumes.
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::Trace(Transition {
                trigger: "migration-aborted-target-dead",
                ..
            })
        )));
        assert!(acts.contains(&HomeAction::SetHomeLocal {
            state: LocalState::Exclusive,
            tag: NOTAG,
        }));
        assert!(m.transient().is_none());
        assert!(m.migrated_to().is_none());
        // And the chunk serves requests again.
        let acts = m.on_event(0, 0, remote(1, Kind::Read));
        assert!(acts
            .iter()
            .any(|a| matches!(a, HomeAction::StartHomeDrain { .. })));
    }

    #[test]
    fn target_death_during_recall_aborts_at_completion() {
        let mut m = M::new();
        m.on_event(0, 0, remote(1, Kind::Read));
        m.on_event(0, 0, HomeEvent::Drained);
        m.on_event(0, 0, HomeEvent::BeginMigration { to: 2 });
        assert_eq!(m.transient().name(), "MigratingOut:Recall");
        m.on_event(
            0,
            0,
            HomeEvent::PeerDown {
                dead: 2,
                view_epoch: 1,
            },
        );
        // The recall still waits on node 1; the target-death check fires
        // when the set empties.
        let acts = m.on_event(0, 0, HomeEvent::InvAck { from: 1 });
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::Trace(Transition {
                trigger: "migration-aborted-target-dead",
                ..
            })
        )));
        assert!(m.transient().is_none());
    }

    #[test]
    fn target_adopts_when_source_dies_awaiting_commit() {
        let mut m = M::new();
        m.on_event(
            0,
            0,
            HomeEvent::MigrateData {
                from: 0,
                mig_epoch: 4,
            },
        );
        assert_eq!(m.transient().name(), "MigratingIn:AwaitCommit");
        // The quorum-confirmed source death doubles as the commit: the
        // source acked its hand-off and can never serve again.
        let acts = m.on_event(
            0,
            0,
            HomeEvent::PeerDown {
                dead: 0,
                view_epoch: 1,
            },
        );
        assert!(acts.contains(&HomeAction::AdoptChunk { mig_epoch: 4 }));
        assert!(acts.contains(&HomeAction::Count(Counter::MigrationsIn)));
    }

    #[test]
    fn stale_migration_messages_are_fenced_by_epoch() {
        let mut m = source_awaiting_ack(2);
        // An ack stamped with a different fence epoch is a straggler of an
        // older migration attempt: ignored, the transfer wait continues.
        let acts = m.on_event(
            0,
            0,
            HomeEvent::MigrateAck {
                from: 2,
                mig_epoch: 99,
            },
        );
        assert!(acts
            .iter()
            .all(|a| !matches!(a, HomeAction::DepartChunk { .. })));
        assert_eq!(m.transient().name(), "MigratingOut:AwaitAck");
        // A second BeginMigration under an active migration is rejected.
        let acts = m.on_event(0, 0, HomeEvent::BeginMigration { to: 3 });
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::Trace(Transition {
                trigger: "stale-begin-migration",
                ..
            })
        )));
    }

    #[test]
    fn begin_migration_to_dead_target_is_rejected() {
        let mut m = M::new();
        m.on_event(
            0,
            0,
            HomeEvent::PeerDown {
                dead: 2,
                view_epoch: 1,
            },
        );
        let acts = m.on_event(0, 0, HomeEvent::BeginMigration { to: 2 });
        assert!(acts.iter().any(|a| matches!(
            a,
            HomeAction::Trace(Transition {
                trigger: "migration-target-dead",
                ..
            })
        )));
        assert!(m.transient().is_none());
        assert!(m.migrated_to().is_none());
    }

    /// Model-checker counterexample regression: a migration queued while a
    /// remote write's HomeDrain is in flight must let that grant complete
    /// first. The grant paths pre-commit the directory state (here
    /// `Dirty{owner:2}`) before the drain, so starting the fence at the
    /// Drained edge would recall from an "owner" whose fill never left —
    /// the owner ignores the recall as a crossing message and the
    /// migration waits forever.
    #[test]
    fn migration_queued_during_grant_drain_fills_before_recalling() {
        let mut m = M::new();
        m.on_event(0, 0, remote(2, Kind::Write));
        assert_eq!(m.state(), &DirState::Dirty { owner: 2 });
        assert_eq!(m.transient(), &Transient::HomeDrain);
        // The fence arrives mid-drain and parks.
        let acts = m.on_event(0, 0, HomeEvent::BeginMigration { to: 1 });
        assert!(acts
            .iter()
            .all(|a| !matches!(a, HomeAction::SendRecallDirty { .. })));
        // The drain edge grants the parked fill BEFORE the recall, on the
        // same FIFO link, so the owner sees Fill then RecallDirty in order.
        let acts = m.on_event(1, 0, HomeEvent::Drained);
        let fill_at = acts.iter().position(|a| {
            matches!(
                a,
                HomeAction::SendFill {
                    to: 2,
                    exclusive: true,
                    ..
                }
            )
        });
        let recall_at = acts
            .iter()
            .position(|a| matches!(a, HomeAction::SendRecallDirty { to: 2 }));
        assert!(
            fill_at.is_some() && recall_at.is_some() && fill_at < recall_at,
            "fill must precede the migration recall: {acts:?}"
        );
        assert!(matches!(
            m.transient(),
            Transient::MigratingOut {
                to: 1,
                phase: MigOutPhase::Recall { .. },
                ..
            }
        ));
        // The writeback answers the recall and the transfer proceeds.
        let acts = m.on_event(
            2,
            0,
            HomeEvent::Writeback {
                from: 2,
                downgrade: false,
            },
        );
        assert!(acts
            .iter()
            .any(|a| matches!(a, HomeAction::StartHomeDrain { .. })));
    }
}
