//! The Pin optimization hint (Figure 3 lines 10-11, §4.1).
//!
//! Pinning a chunk holds its reference explicitly (`refcnt` stays nonzero),
//! so the runtime can neither evict it nor degrade its permission; the
//! pinned accessors therefore skip the per-access atomics entirely — only
//! branches remain, "achieving data access performance comparable to native
//! arrays".

use dsim::Ctx;
use rdma_fabric::MemoryRegion;

use crate::array::DArray;
use crate::dentry::{Acquire, Want};
use crate::element::Element;
use crate::error::DArrayError;
use crate::msg::{ChunkId, LocalKind};
use crate::op::OpId;
use crate::shared::data_location;

/// What rights a pin holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinMode {
    /// Read-only (`Shared` or better).
    Read,
    /// Read/write (`Exclusive`).
    Write,
    /// Operate under this operator (`Operated` with a matching tag, or
    /// `Exclusive`).
    Operate(OpId),
}

/// A pinned chunk: holds a dentry reference until dropped or
/// [`Pinned::unpin`]. Accessors only bounds-check — no atomics.
pub struct Pinned<T: Element> {
    arr: DArray<T>,
    chunk: usize,
    /// First global element index of the chunk.
    first: usize,
    /// Valid elements in the chunk (the global tail chunk may be partial).
    valid: usize,
    region: MemoryRegion,
    base_word: usize,
    mode: PinMode,
    released: bool,
}

impl<T: Element> DArray<T> {
    /// Pin the chunk containing `index` with the given rights (the paper's
    /// `pindata`). Blocks (in virtual time) until the rights are granted.
    ///
    /// ```
    /// use darray::{ArrayOptions, Cluster, ClusterConfig, PinMode, Sim, SimConfig};
    /// Sim::new(SimConfig::default()).run(|ctx| {
    ///     let cluster = Cluster::new(ctx, ClusterConfig::test_config(2));
    ///     let arr = cluster.alloc_with::<u64>(1024, ArrayOptions::default(), |i| i as u64);
    ///     cluster.run(ctx, 1, move |ctx, env| {
    ///         let a = arr.on(env.node);
    ///         // Scan a (possibly remote) chunk without per-access atomics.
    ///         let pin = a.pin(ctx, 512, PinMode::Read);
    ///         let mut sum = 0;
    ///         for i in pin.range() {
    ///             sum += pin.get(ctx, i);
    ///         }
    ///         pin.unpin();
    ///         assert_eq!(sum, (512..1024).sum::<u64>());
    ///     });
    ///     cluster.shutdown(ctx);
    /// });
    /// ```
    pub fn pin(&self, ctx: &mut Ctx, index: usize, mode: PinMode) -> Pinned<T> {
        self.try_pin(ctx, index, mode)
            .unwrap_or_else(|e| panic!("pin({index}): {e}"))
    }

    /// Fallible [`DArray::pin`]: returns [`DArrayError::NodeUnavailable`]
    /// when the chunk's home node has been declared down and no local copy
    /// is cached (only possible when `ClusterConfig::fault` is set).
    pub fn try_pin(
        &self,
        ctx: &mut Ctx,
        index: usize,
        mode: PinMode,
    ) -> Result<Pinned<T>, DArrayError> {
        assert!(index < self.len(), "index {index} out of bounds");
        let layout = &self.arr.layout;
        let chunk = layout.chunk_of(index);
        let d = self.dentry(chunk);
        let cost = self.shared.cfg.cost.clone();
        let want = match mode {
            PinMode::Read => Want::Read,
            PinMode::Write => Want::Write,
            PinMode::Operate(op) => Want::Operate(op.0),
        };
        loop {
            ctx.charge(cost.darray_fast_path());
            match d.acquire(want) {
                Acquire::Ok(line) => {
                    // Keep the reference: that is the pin.
                    let (region, base_word) =
                        data_location(&self.shared, &self.arr, self.node, line, chunk, 0);
                    let region = region.clone();
                    return Ok(Pinned {
                        arr: self.clone(),
                        chunk,
                        first: layout.chunk_first_elem(chunk),
                        valid: layout.chunk_len(chunk),
                        region,
                        base_word,
                        mode,
                        released: false,
                    });
                }
                Acquire::Delayed => ctx.spin_hint(20),
                Acquire::NoRights(_) => {
                    let home = self.arr.home_on(self.node, chunk);
                    if home != self.node && self.shared.is_peer_down(self.node, home) {
                        return Err(self.shared.unavailable_error(self.node, home));
                    }
                    let kind = match mode {
                        PinMode::Read => LocalKind::Read {
                            chunk: chunk as ChunkId,
                        },
                        PinMode::Write => LocalKind::Write {
                            chunk: chunk as ChunkId,
                        },
                        PinMode::Operate(op) => LocalKind::Operate {
                            chunk: chunk as ChunkId,
                            op: op.0,
                        },
                    };
                    self.slow_request(ctx, kind);
                }
            }
        }
    }
}

impl<T: Element> Pinned<T> {
    /// Global index range this pin covers.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.first..self.first + self.valid
    }

    /// True if `index` falls inside the pinned chunk.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        index >= self.first && index < self.first + self.valid
    }

    /// The pin's mode.
    pub fn mode(&self) -> PinMode {
        self.mode
    }

    #[inline]
    fn word_of(&self, index: usize) -> usize {
        debug_assert!(self.contains(index), "index {index} outside pinned chunk");
        self.base_word + (index - self.first)
    }

    /// Read `index` without atomics (requires a Read or Write pin).
    #[inline]
    pub fn get(&self, ctx: &mut Ctx, index: usize) -> T {
        debug_assert!(
            matches!(self.mode, PinMode::Read | PinMode::Write),
            "get on an Operate pin"
        );
        ctx.charge(self.arr.shared.cfg.cost.darray_pinned_path());
        T::from_bits(self.region.load(self.word_of(index)))
    }

    /// Write `index` without atomics (requires a Write pin).
    #[inline]
    pub fn set(&self, ctx: &mut Ctx, index: usize, value: T) {
        debug_assert!(
            matches!(self.mode, PinMode::Write),
            "set on a non-Write pin"
        );
        ctx.charge(self.arr.shared.cfg.cost.darray_pinned_path());
        self.region.store(self.word_of(index), value.to_bits());
    }

    /// Apply the pinned operator to `index` (requires an Operate or Write
    /// pin; for an Operate pin `op` must match the pinned operator).
    #[inline]
    pub fn apply(&self, ctx: &mut Ctx, index: usize, op: OpId, operand: T) {
        debug_assert!(
            match self.mode {
                PinMode::Operate(p) => p == op,
                PinMode::Write => true,
                PinMode::Read => false,
            },
            "apply with mismatched pin mode"
        );
        let cost = &self.arr.shared.cfg.cost;
        ctx.charge(cost.darray_pinned_path() + cost.op_apply_ns);
        let word = self.word_of(index);
        let bits = operand.to_bits();
        let reg = &self.arr.shared.registry;
        loop {
            let cur = self.region.load(word);
            let new = reg.combine(op, cur, bits);
            if self.region.compare_exchange(word, cur, new).is_ok() {
                break;
            }
        }
    }

    /// Release the pin explicitly (the paper's `unpindata`). Dropping the
    /// guard does the same.
    pub fn unpin(mut self) {
        self.release();
    }

    fn release(&mut self) {
        if !self.released {
            self.released = true;
            self.arr.dentry(self.chunk).release();
        }
    }
}

impl<T: Element> Drop for Pinned<T> {
    fn drop(&mut self) {
        self.release();
    }
}
