//! # darray — a high performance RDMA-based distributed array
//!
//! A from-scratch Rust reproduction of **DArray** (Ding, Han, Chen,
//! ICPP 2023): a distributed object array spanning a cluster of
//! RDMA-connected nodes, with
//!
//! * a rich object-granularity API — [`DArray::get`] / [`DArray::set`],
//!   distributed reader/writer locks, the **Operate** interface
//!   ([`DArray::apply`] with operators registered via
//!   [`Cluster::register_op`]), and the **Pin** hint ([`DArray::pin`]);
//! * a per-node **distributed cache** with a lock-free data access path
//!   (delay-flag + reference counting instead of locks), watermark-driven
//!   eviction with per-runtime-thread scanning pointers, and sequential
//!   prefetch;
//! * an **extended directory-based cache coherence protocol** with the
//!   four states *Unshared / Shared / Dirty / Operated*, where the new
//!   Operated state lets every node apply an associative+commutative
//!   operator concurrently, combining operands locally and reducing them
//!   at the chunk's home node;
//! * an RDMA communication layer: one-sided WRITE for data, two-sided
//!   SEND/RECV for protocol messages, optional dedicated Tx threads, and
//!   selective signaling (all modeled by the `rdma-fabric` crate).
//!
//! The cluster runs inside a deterministic `dsim` virtual-time simulation
//! (see `DESIGN.md` at the repository root for why and how). A minimal
//! program:
//!
//! ```
//! use darray::{ArrayOptions, Cluster, ClusterConfig};
//! use dsim::{Sim, SimConfig};
//!
//! Sim::new(SimConfig::default()).run(|ctx| {
//!     let cluster = Cluster::new(ctx, ClusterConfig::test_config(2));
//!     let add = cluster.ops().register_add_u64();
//!     let arr = cluster.alloc::<u64>(1024, ArrayOptions::default());
//!     cluster.run(ctx, 1, move |ctx, env| {
//!         let a = arr.on(env.node);
//!         // Every node increments every element once (combined locally,
//!         // reduced at each chunk's home node).
//!         for i in 0..a.len() {
//!             a.apply(ctx, i, add, 1);
//!         }
//!         env.barrier(ctx);
//!         // Reading recalls the Operated chunks and reduces them.
//!         if env.node == 0 {
//!             let mut sum = 0;
//!             for i in 0..a.len() {
//!                 sum += a.get(ctx, i);
//!             }
//!             assert_eq!(sum, (a.len() * a.nodes()) as u64);
//!         }
//!     });
//!     cluster.shutdown(ctx);
//! });
//! ```

mod array;
mod bulk;
mod cache;
mod cluster;
mod comm;
mod config;
mod dentry;
mod element;
mod error;
mod layout;
mod membership;
mod msg;
mod op;
mod pin;
mod placement;
pub mod protocol;
mod runtime;
mod shared;
mod state;
mod stats;
mod store;
mod trace;

pub use array::DArray;
pub use cache::PoolStats;
pub use cluster::{Cluster, GlobalArray, NodeEnv};
pub use config::{
    default_runtime_threads, AccessPath, ArrayOptions, BatchConfig, CacheConfig, ClusterConfig,
    DurabilityConfig, FaultConfig, TcpTransportConfig, TransportKind, DEFAULT_CHUNK_SIZE,
};
pub use element::Element;
pub use error::{ConfigError, DArrayError, UnavailableKind};
pub use layout::Layout;
pub use membership::PeerHealth;
pub use msg::LockKind;
pub use op::{OpId, OpRegistry};
pub use pin::{PinMode, Pinned};
pub use state::{table1_rows, DirState, LocalState, Rights, Table1Row};
pub use stats::{NodeStats, NodeStatsSnapshot};
pub use store::{
    CheckpointConfig, ChunkStore, DurabilityPolicy, LogChunkStore, RecoveredChunk, StoreStats,
};

// Re-export the substrate types callers need to configure a cluster.
pub use dsim::{Ctx, Sim, SimBarrier, SimConfig, VTime};
pub use rdma_fabric::{
    AsymmetricLoss, BatchPolicy, CostModel, FaultPlan, NetConfig, NodeId, Partition, SimTransport,
    Transport, TransportStats, Wire,
};
#[cfg(feature = "tcp-transport")]
pub use rdma_fabric::{TcpFabric, TcpOptions, TcpTransport};
