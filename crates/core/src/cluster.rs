//! Cluster bootstrap: spawn runtime/Rx/Tx threads per node, allocate
//! distributed arrays, run application code on every node, and tear down.

use std::marker::PhantomData;
use std::sync::Arc;

use dsim::{Ctx, JoinHandle, Mailbox, SimBarrier};
use parking_lot::RwLock;
use rdma_fabric::{Fabric, NicStatsSnapshot, NodeId, SimTransport, Transport};

use crate::array::DArray;
use crate::cache::CacheRegion;
use crate::comm::{rel_thread_main, rx_thread_main, tx_thread_main, CommHandle, RelMsg, TxReq};
use crate::config::{ArrayOptions, ClusterConfig, TransportKind, DEFAULT_CHUNK_SIZE};
use crate::element::Element;
use crate::error::DArrayError;
use crate::layout::Layout;
use crate::msg::{NetMsg, RtMsg};
use crate::op::{OpId, OpRegistry};
use crate::runtime::RuntimeThread;
use crate::shared::{ArrayShared, ClusterShared};
use crate::stats::NodeStatsSnapshot;

/// Environment handed to each application thread by [`Cluster::run`].
pub struct NodeEnv {
    /// This thread's node.
    pub node: NodeId,
    /// Thread index within the node.
    pub thread: usize,
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// Application threads per node in this `run`.
    pub threads_per_node: usize,
    barrier: SimBarrier,
}

impl NodeEnv {
    /// Global barrier over every application thread of this `run`.
    pub fn barrier(&self, ctx: &mut Ctx) {
        self.barrier.wait(ctx);
    }
}

/// A handle to a distributed array that is not yet bound to a node; hand it
/// to application threads and call [`GlobalArray::on`].
pub struct GlobalArray<T: Element> {
    shared: Arc<ClusterShared>,
    arr: Arc<ArrayShared>,
    _pd: PhantomData<fn() -> T>,
}

impl<T: Element> Clone for GlobalArray<T> {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
            arr: self.arr.clone(),
            _pd: PhantomData,
        }
    }
}

impl<T: Element> GlobalArray<T> {
    /// The node-local view for `node`.
    pub fn on(&self, node: NodeId) -> DArray<T> {
        assert!(node < self.shared.cfg.nodes);
        DArray {
            shared: self.shared.clone(),
            arr: self.arr.clone(),
            node,
            _pd: PhantomData,
        }
    }

    /// Global length.
    pub fn len(&self) -> usize {
        self.arr.layout.len()
    }

    /// True for an empty array.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A running DArray cluster inside a `dsim` simulation.
pub struct Cluster {
    shared: Arc<ClusterShared>,
    tx_queues: Vec<Option<Mailbox<TxReq>>>,
    rel_queues: Vec<Option<Mailbox<RelMsg>>>,
    service_handles: Vec<JoinHandle>,
}

/// Build the per-node transport endpoints selected by `cfg.transport`
/// (already validated). The simulated backend wraps one dsim NIC per node;
/// the TCP backend brings up a real socket mesh and can fail at the OS
/// level, surfaced as [`crate::ConfigError::TransportBringUp`].
fn build_transports(cfg: &ClusterConfig) -> Result<Vec<Arc<dyn Transport<NetMsg>>>, DArrayError> {
    match cfg.transport {
        TransportKind::Sim => {
            let fabric: Fabric<NetMsg> = match &cfg.fault {
                Some(f) => Fabric::with_faults(cfg.nodes, cfg.net.clone(), f.plan.clone()),
                None => Fabric::new(cfg.nodes, cfg.net.clone()),
            };
            Ok((0..cfg.nodes)
                .map(|i| Arc::new(SimTransport::new(fabric.nic(i))) as Arc<dyn Transport<NetMsg>>)
                .collect())
        }
        TransportKind::Tcp => build_tcp_transports(cfg),
    }
}

#[cfg(feature = "tcp-transport")]
fn build_tcp_transports(
    cfg: &ClusterConfig,
) -> Result<Vec<Arc<dyn Transport<NetMsg>>>, DArrayError> {
    let addrs = cfg.tcp.addrs.as_ref().map(|a| {
        a.iter()
            .map(|s| s.parse().expect("addresses checked by try_validate"))
            .collect()
    });
    let opts = rdma_fabric::TcpOptions {
        max_frame_words: cfg.tcp.max_frame_words,
        poll_ns: cfg.tcp.poll_ns,
        addrs,
    };
    let mesh = rdma_fabric::TcpFabric::new(cfg.nodes, opts).map_err(|e| {
        crate::ConfigError::TransportBringUp {
            message: e.to_string(),
        }
    })?;
    Ok((0..cfg.nodes)
        .map(|i| mesh.transport(i) as Arc<dyn Transport<NetMsg>>)
        .collect())
}

#[cfg(not(feature = "tcp-transport"))]
fn build_tcp_transports(
    _cfg: &ClusterConfig,
) -> Result<Vec<Arc<dyn Transport<NetMsg>>>, DArrayError> {
    // `try_validate` rejects `TransportKind::Tcp` without the feature, so
    // this arm is unreachable through `Cluster::try_new`.
    Err(crate::ConfigError::TcpFeatureDisabled.into())
}

impl Cluster {
    /// Boot a cluster: builds the transport mesh and spawns, per node, one
    /// Rx thread, the configured runtime threads, and (optionally) a Tx
    /// thread. Panics on an invalid configuration; [`Cluster::try_new`] is
    /// the fallible form.
    pub fn new(ctx: &mut Ctx, cfg: ClusterConfig) -> Self {
        match Self::try_new(ctx, cfg) {
            Ok(cluster) => cluster,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible bring-up: structured [`DArrayError::Config`] diagnostics
    /// for rejected configurations or failed transport bring-up, instead
    /// of a panic.
    pub fn try_new(ctx: &mut Ctx, cfg: ClusterConfig) -> Result<Self, DArrayError> {
        cfg.try_validate()?;
        let nodes = cfg.nodes;
        let rts = cfg.runtime_threads;
        let transports = build_transports(&cfg)?;
        let lines_per_rt = (cfg.cache.capacity_lines / rts).max(1) as u32;
        let cache_regions = (0..nodes)
            .map(|_| {
                rdma_fabric::MemoryRegion::new(lines_per_rt as usize * rts * cfg.cache.line_words)
            })
            .collect::<Vec<_>>();
        // Cache regions receive one-sided WRITEs (fills from remote homes):
        // make them addressable on every backend.
        for (transport, region) in transports.iter().zip(&cache_regions) {
            transport.register_region(region);
        }
        let cache_pools = (0..nodes)
            .map(|_| {
                (0..rts)
                    .map(|r| {
                        Arc::new(CacheRegion::new(
                            r as u32 * lines_per_rt,
                            lines_per_rt,
                            cfg.cache.low_watermark,
                            cfg.cache.high_watermark,
                        ))
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>();
        let rt_mailboxes = (0..nodes)
            .map(|n| {
                (0..rts)
                    .map(|r| Mailbox::new(&format!("rt-{n}-{r}")))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>();
        let stats = (0..nodes)
            .map(|_| Arc::new(crate::stats::NodeStats::default()))
            .collect();
        // One reliability-agent mailbox per node when fault injection is on.
        let rel_queues: Vec<Option<Mailbox<RelMsg>>> = (0..nodes)
            .map(|n| {
                cfg.fault
                    .as_ref()
                    .map(|_| Mailbox::new(&format!("rel-{n}")))
            })
            .collect();
        let membership = (0..nodes)
            .map(|_| crate::membership::MembershipView::new(nodes))
            .collect();
        let shared = Arc::new(ClusterShared {
            cfg: cfg.clone(),
            registry: Arc::new(OpRegistry::new()),
            transports,
            arrays: RwLock::new(Vec::new()),
            cache_regions,
            cache_pools,
            rt_mailboxes,
            stats,
            rel_mailboxes: rel_queues.clone(),
            membership,
            protocol_fault: Default::default(),
        });

        let mut service_handles = Vec::new();
        let mut tx_queues = Vec::new();
        for (node, rel_q) in rel_queues.iter().enumerate() {
            // Rx thread (always present; §3.1 communication layer).
            let sh = shared.clone();
            service_handles.push(ctx.spawn(&format!("rx-{node}"), move |c| {
                rx_thread_main(c, sh, node);
            }));
            // Reliability agent (fault mode only).
            if let Some(q) = rel_q {
                let sh = shared.clone();
                let q2 = q.clone();
                service_handles.push(ctx.spawn(&format!("rel-{node}"), move |c| {
                    rel_thread_main(c, sh, node, q2);
                }));
            }
            // Optional Tx thread.
            let tx_q = if cfg.tx_threads {
                let q: Mailbox<TxReq> = Mailbox::new(&format!("tx-{node}"));
                let transport = shared.transports[node].clone();
                let q2 = q.clone();
                service_handles.push(ctx.spawn(&format!("tx-{node}"), move |c| {
                    tx_thread_main(c, transport, q2);
                }));
                Some(q)
            } else {
                None
            };
            // Runtime threads.
            for r in 0..rts {
                let comm = CommHandle {
                    transport: shared.transports[node].clone(),
                    tx: tx_q.clone(),
                    rel: rel_q.clone(),
                    node,
                };
                let rt = RuntimeThread::new(
                    node,
                    r,
                    shared.clone(),
                    comm,
                    shared.cache_pools[node][r].clone(),
                    shared.rt_mailboxes[node][r].clone(),
                );
                service_handles.push(ctx.spawn(&format!("rt-{node}-{r}"), move |c| rt.run(c)));
            }
            tx_queues.push(tx_q);
        }
        Ok(Self {
            shared,
            tx_queues,
            rel_queues,
            service_handles,
        })
    }

    /// The cluster-wide operator registry (the paper's `registerOp` lives
    /// here).
    pub fn ops(&self) -> &OpRegistry {
        &self.shared.registry
    }

    /// Register an associative+commutative operator (Figure 3 line 8).
    pub fn register_op<T, F>(&self, name: &str, identity: T, combine: F) -> OpId
    where
        T: Element,
        F: Fn(T, T) -> T + Send + Sync + 'static,
    {
        self.shared.registry.register(name, identity, combine)
    }

    /// Allocate a zero-initialized distributed array of `len` elements
    /// (Figure 3 line 2's constructor).
    pub fn alloc<T: Element>(&self, len: usize, opts: ArrayOptions) -> GlobalArray<T> {
        self.alloc_with(len, opts, |_| T::from_bits(0))
    }

    /// Allocate and initialize a distributed array; `init(i)` produces the
    /// initial value of element `i`, written directly into each home
    /// node's subarray (no network traffic).
    pub fn alloc_with<T: Element>(
        &self,
        len: usize,
        opts: ArrayOptions,
        init: impl Fn(usize) -> T,
    ) -> GlobalArray<T> {
        let chunk_size = opts.chunk_size.unwrap_or(DEFAULT_CHUNK_SIZE);
        if let Err(e) = self.shared.cfg.try_validate_array(chunk_size) {
            panic!("{e}");
        }
        let nodes = self.shared.cfg.nodes;
        let layout = match &opts.partition_offset {
            Some(offs) => Layout::custom(len, nodes, chunk_size, offs),
            None => Layout::even(len, nodes, chunk_size),
        };
        let mut arrays = self.shared.arrays.write();
        let id = arrays.len() as u32;
        let arr = Arc::new(ArrayShared::new(id, layout));
        for n in 0..nodes {
            let elems = arr.layout.node_elems(n);
            let base_chunk = arr.layout.node_chunks(n).start;
            for i in elems {
                let c = arr.layout.chunk_of(i);
                let w = (c - base_chunk) * chunk_size + arr.layout.offset_in_chunk(i);
                arr.subarrays[n].store(w, init(i).to_bits());
            }
        }
        // Subarrays are WRITE targets for evictions/writebacks: register
        // each home partition with its owner's transport.
        for (n, transport) in self.shared.transports.iter().enumerate() {
            transport.register_region(&arr.subarrays[n]);
        }
        arrays.push(arr.clone());
        drop(arrays);
        GlobalArray {
            shared: self.shared.clone(),
            arr,
            _pd: PhantomData,
        }
    }

    /// Run `f` once per (node, thread) as simulated application threads and
    /// join them all. May be called repeatedly (e.g. warm-up then measured
    /// phase).
    pub fn run<F>(&self, ctx: &mut Ctx, threads_per_node: usize, f: F)
    where
        F: Fn(&mut Ctx, NodeEnv) + Send + Sync + 'static,
    {
        assert!(threads_per_node > 0);
        let nodes = self.shared.cfg.nodes;
        let f = Arc::new(f);
        let barrier = SimBarrier::new(nodes * threads_per_node);
        let mut handles = Vec::new();
        for node in 0..nodes {
            for t in 0..threads_per_node {
                let env = NodeEnv {
                    node,
                    thread: t,
                    nodes,
                    threads_per_node,
                    barrier: barrier.clone(),
                };
                let f2 = f.clone();
                handles.push(ctx.spawn(&format!("app-{node}-{t}"), move |c| f2(c, env)));
            }
        }
        for h in handles {
            h.join(ctx);
        }
    }

    /// Statistics of one node's runtime, with the node's transport
    /// byte/frame/completion counters overlaid (backend-agnostic; see
    /// [`rdma_fabric::TransportStats`]).
    pub fn stats(&self, node: NodeId) -> NodeStatsSnapshot {
        let mut snap = self.shared.stats[node].snapshot();
        let t = self.shared.transport_stats(node);
        snap.bytes_tx = t.bytes_tx;
        snap.bytes_rx = t.bytes_rx;
        snap.frames = t.frames;
        snap.completions = t.completions;
        snap
    }

    /// Verb counters of one node's NIC. All-zero when the node's transport
    /// is not backed by the simulated NIC.
    pub fn nic_stats(&self, node: NodeId) -> NicStatsSnapshot {
        self.shared.nic_stats(node)
    }

    /// Node `me`'s current membership opinion of `peer` (Alive / Suspected
    /// / Dead). Observational only; the reliability agent owns transitions.
    pub fn peer_health(&self, me: NodeId, peer: NodeId) -> crate::membership::PeerHealth {
        self.shared.membership[me].health(peer)
    }

    /// Node `me`'s current membership-view epoch (count of deaths it has
    /// confirmed so far).
    pub fn membership_epoch(&self, me: NodeId) -> u64 {
        self.shared.membership[me].epoch()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.shared.cfg
    }

    /// Stop all service threads and join them. Call after application work
    /// has quiesced (outstanding protocol traffic is drained first because
    /// mailbox sends are FIFO per sender and the runtime processes its
    /// backlog before the shutdown message).
    pub fn shutdown(self, ctx: &mut Ctx) {
        let nodes = self.shared.cfg.nodes;
        for node in 0..nodes {
            for rt in &self.shared.rt_mailboxes[node] {
                rt.send(ctx, RtMsg::Shutdown, 0);
            }
            if let Some(tx) = &self.tx_queues[node] {
                tx.send(ctx, TxReq::Shutdown, 0);
            }
            if let Some(rel) = &self.rel_queues[node] {
                rel.send(ctx, RelMsg::Shutdown, 0);
            }
            // Rx threads stop on a Halt self-send through the transport.
            self.shared.transports[node].send(ctx, node, NetMsg::Halt);
        }
        for h in self.service_handles {
            h.join(ctx);
        }
        // Release backend resources (sockets, pump threads); a no-op for
        // the simulated backend.
        for transport in &self.shared.transports {
            transport.shutdown();
        }
    }
}
