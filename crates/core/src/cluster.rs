//! Cluster bootstrap: spawn runtime/Rx/Tx threads per node, allocate
//! distributed arrays, run application code on every node, and tear down.

use std::marker::PhantomData;
use std::sync::Arc;

use dsim::{Ctx, JoinHandle, Mailbox, SimBarrier};
use parking_lot::RwLock;
use rdma_fabric::{Fabric, NicStatsSnapshot, NodeId};

use crate::array::DArray;
use crate::cache::CacheRegion;
use crate::comm::{rel_thread_main, rx_thread_main, tx_thread_main, CommHandle, RelMsg, TxReq};
use crate::config::{ArrayOptions, ClusterConfig, DEFAULT_CHUNK_SIZE};
use crate::element::Element;
use crate::layout::Layout;
use crate::msg::{NetMsg, RtMsg};
use crate::op::{OpId, OpRegistry};
use crate::runtime::RuntimeThread;
use crate::shared::{ArrayShared, ClusterShared};
use crate::stats::NodeStatsSnapshot;

/// Environment handed to each application thread by [`Cluster::run`].
pub struct NodeEnv {
    /// This thread's node.
    pub node: NodeId,
    /// Thread index within the node.
    pub thread: usize,
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// Application threads per node in this `run`.
    pub threads_per_node: usize,
    barrier: SimBarrier,
}

impl NodeEnv {
    /// Global barrier over every application thread of this `run`.
    pub fn barrier(&self, ctx: &mut Ctx) {
        self.barrier.wait(ctx);
    }
}

/// A handle to a distributed array that is not yet bound to a node; hand it
/// to application threads and call [`GlobalArray::on`].
pub struct GlobalArray<T: Element> {
    shared: Arc<ClusterShared>,
    arr: Arc<ArrayShared>,
    _pd: PhantomData<fn() -> T>,
}

impl<T: Element> Clone for GlobalArray<T> {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
            arr: self.arr.clone(),
            _pd: PhantomData,
        }
    }
}

impl<T: Element> GlobalArray<T> {
    /// The node-local view for `node`.
    pub fn on(&self, node: NodeId) -> DArray<T> {
        assert!(node < self.shared.cfg.nodes);
        DArray {
            shared: self.shared.clone(),
            arr: self.arr.clone(),
            node,
            _pd: PhantomData,
        }
    }

    /// Global length.
    pub fn len(&self) -> usize {
        self.arr.layout.len()
    }

    /// True for an empty array.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A running DArray cluster inside a `dsim` simulation.
pub struct Cluster {
    shared: Arc<ClusterShared>,
    tx_queues: Vec<Option<Mailbox<TxReq>>>,
    rel_queues: Vec<Option<Mailbox<RelMsg>>>,
    service_handles: Vec<JoinHandle>,
}

impl Cluster {
    /// Boot a cluster: builds the fabric and spawns, per node, one Rx
    /// thread, the configured runtime threads, and (optionally) a Tx thread.
    pub fn new(ctx: &mut Ctx, cfg: ClusterConfig) -> Self {
        cfg.validate();
        let nodes = cfg.nodes;
        let rts = cfg.runtime_threads;
        let fabric: Fabric<NetMsg> = match &cfg.fault {
            Some(f) => Fabric::with_faults(nodes, cfg.net.clone(), f.plan.clone()),
            None => Fabric::new(nodes, cfg.net.clone()),
        };
        let nics = (0..nodes).map(|i| fabric.nic(i)).collect::<Vec<_>>();
        let lines_per_rt = (cfg.cache.capacity_lines / rts).max(1) as u32;
        let cache_regions = (0..nodes)
            .map(|_| {
                rdma_fabric::MemoryRegion::new(lines_per_rt as usize * rts * cfg.cache.line_words)
            })
            .collect::<Vec<_>>();
        let cache_pools = (0..nodes)
            .map(|_| {
                (0..rts)
                    .map(|r| {
                        Arc::new(CacheRegion::new(
                            r as u32 * lines_per_rt,
                            lines_per_rt,
                            cfg.cache.low_watermark,
                            cfg.cache.high_watermark,
                        ))
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>();
        let rt_mailboxes = (0..nodes)
            .map(|n| {
                (0..rts)
                    .map(|r| Mailbox::new(&format!("rt-{n}-{r}")))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>();
        let stats = (0..nodes)
            .map(|_| Arc::new(crate::stats::NodeStats::default()))
            .collect();
        // One reliability-agent mailbox per node when fault injection is on.
        let rel_queues: Vec<Option<Mailbox<RelMsg>>> = (0..nodes)
            .map(|n| {
                cfg.fault
                    .as_ref()
                    .map(|_| Mailbox::new(&format!("rel-{n}")))
            })
            .collect();
        let membership = (0..nodes)
            .map(|_| crate::membership::MembershipView::new(nodes))
            .collect();
        let shared = Arc::new(ClusterShared {
            cfg: cfg.clone(),
            registry: Arc::new(OpRegistry::new()),
            nics,
            arrays: RwLock::new(Vec::new()),
            cache_regions,
            cache_pools,
            rt_mailboxes,
            stats,
            rel_mailboxes: rel_queues.clone(),
            membership,
            protocol_fault: Default::default(),
        });

        let mut service_handles = Vec::new();
        let mut tx_queues = Vec::new();
        for (node, rel_q) in rel_queues.iter().enumerate() {
            // Rx thread (always present; §3.1 communication layer).
            let sh = shared.clone();
            service_handles.push(ctx.spawn(&format!("rx-{node}"), move |c| {
                rx_thread_main(c, sh, node);
            }));
            // Reliability agent (fault mode only).
            if let Some(q) = rel_q {
                let sh = shared.clone();
                let q2 = q.clone();
                service_handles.push(ctx.spawn(&format!("rel-{node}"), move |c| {
                    rel_thread_main(c, sh, node, q2);
                }));
            }
            // Optional Tx thread.
            let tx_q = if cfg.tx_threads {
                let q: Mailbox<TxReq> = Mailbox::new(&format!("tx-{node}"));
                let nic = shared.nics[node].clone();
                let q2 = q.clone();
                service_handles.push(ctx.spawn(&format!("tx-{node}"), move |c| {
                    tx_thread_main(c, nic, q2);
                }));
                Some(q)
            } else {
                None
            };
            // Runtime threads.
            for r in 0..rts {
                let comm = CommHandle {
                    nic: shared.nics[node].clone(),
                    tx: tx_q.clone(),
                    rel: rel_q.clone(),
                    node,
                };
                let rt = RuntimeThread::new(
                    node,
                    r,
                    shared.clone(),
                    comm,
                    shared.cache_pools[node][r].clone(),
                    shared.rt_mailboxes[node][r].clone(),
                );
                service_handles.push(ctx.spawn(&format!("rt-{node}-{r}"), move |c| rt.run(c)));
            }
            tx_queues.push(tx_q);
        }
        Self {
            shared,
            tx_queues,
            rel_queues,
            service_handles,
        }
    }

    /// The cluster-wide operator registry (the paper's `registerOp` lives
    /// here).
    pub fn ops(&self) -> &OpRegistry {
        &self.shared.registry
    }

    /// Register an associative+commutative operator (Figure 3 line 8).
    pub fn register_op<T, F>(&self, name: &str, identity: T, combine: F) -> OpId
    where
        T: Element,
        F: Fn(T, T) -> T + Send + Sync + 'static,
    {
        self.shared.registry.register(name, identity, combine)
    }

    /// Allocate a zero-initialized distributed array of `len` elements
    /// (Figure 3 line 2's constructor).
    pub fn alloc<T: Element>(&self, len: usize, opts: ArrayOptions) -> GlobalArray<T> {
        self.alloc_with(len, opts, |_| T::from_bits(0))
    }

    /// Allocate and initialize a distributed array; `init(i)` produces the
    /// initial value of element `i`, written directly into each home
    /// node's subarray (no network traffic).
    pub fn alloc_with<T: Element>(
        &self,
        len: usize,
        opts: ArrayOptions,
        init: impl Fn(usize) -> T,
    ) -> GlobalArray<T> {
        let chunk_size = opts.chunk_size.unwrap_or(DEFAULT_CHUNK_SIZE);
        if let Err(e) = self.shared.cfg.try_validate_array(chunk_size) {
            panic!("{e}");
        }
        let nodes = self.shared.cfg.nodes;
        let layout = match &opts.partition_offset {
            Some(offs) => Layout::custom(len, nodes, chunk_size, offs),
            None => Layout::even(len, nodes, chunk_size),
        };
        let mut arrays = self.shared.arrays.write();
        let id = arrays.len() as u32;
        let arr = Arc::new(ArrayShared::new(id, layout));
        for n in 0..nodes {
            let elems = arr.layout.node_elems(n);
            let base_chunk = arr.layout.node_chunks(n).start;
            for i in elems {
                let c = arr.layout.chunk_of(i);
                let w = (c - base_chunk) * chunk_size + arr.layout.offset_in_chunk(i);
                arr.subarrays[n].store(w, init(i).to_bits());
            }
        }
        arrays.push(arr.clone());
        drop(arrays);
        GlobalArray {
            shared: self.shared.clone(),
            arr,
            _pd: PhantomData,
        }
    }

    /// Run `f` once per (node, thread) as simulated application threads and
    /// join them all. May be called repeatedly (e.g. warm-up then measured
    /// phase).
    pub fn run<F>(&self, ctx: &mut Ctx, threads_per_node: usize, f: F)
    where
        F: Fn(&mut Ctx, NodeEnv) + Send + Sync + 'static,
    {
        assert!(threads_per_node > 0);
        let nodes = self.shared.cfg.nodes;
        let f = Arc::new(f);
        let barrier = SimBarrier::new(nodes * threads_per_node);
        let mut handles = Vec::new();
        for node in 0..nodes {
            for t in 0..threads_per_node {
                let env = NodeEnv {
                    node,
                    thread: t,
                    nodes,
                    threads_per_node,
                    barrier: barrier.clone(),
                };
                let f2 = f.clone();
                handles.push(ctx.spawn(&format!("app-{node}-{t}"), move |c| f2(c, env)));
            }
        }
        for h in handles {
            h.join(ctx);
        }
    }

    /// Statistics of one node's runtime.
    pub fn stats(&self, node: NodeId) -> NodeStatsSnapshot {
        self.shared.stats[node].snapshot()
    }

    /// Verb counters of one node's NIC.
    pub fn nic_stats(&self, node: NodeId) -> NicStatsSnapshot {
        self.shared.nic_stats(node)
    }

    /// Node `me`'s current membership opinion of `peer` (Alive / Suspected
    /// / Dead). Observational only; the reliability agent owns transitions.
    pub fn peer_health(&self, me: NodeId, peer: NodeId) -> crate::membership::PeerHealth {
        self.shared.membership[me].health(peer)
    }

    /// Node `me`'s current membership-view epoch (count of deaths it has
    /// confirmed so far).
    pub fn membership_epoch(&self, me: NodeId) -> u64 {
        self.shared.membership[me].epoch()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.shared.cfg
    }

    /// Stop all service threads and join them. Call after application work
    /// has quiesced (outstanding protocol traffic is drained first because
    /// mailbox sends are FIFO per sender and the runtime processes its
    /// backlog before the shutdown message).
    pub fn shutdown(self, ctx: &mut Ctx) {
        let nodes = self.shared.cfg.nodes;
        for node in 0..nodes {
            for rt in &self.shared.rt_mailboxes[node] {
                rt.send(ctx, RtMsg::Shutdown, 0);
            }
            if let Some(tx) = &self.tx_queues[node] {
                tx.send(ctx, TxReq::Shutdown, 0);
            }
            if let Some(rel) = &self.rel_queues[node] {
                rel.send(ctx, RelMsg::Shutdown, 0);
            }
            // Rx threads stop on a Halt self-send through the fabric.
            self.shared.nics[node].send(ctx, node, NetMsg::Halt, 0);
        }
        for h in self.service_handles {
            h.join(ctx);
        }
    }
}
