//! Cluster bootstrap: spawn runtime/Rx/Tx threads per node, allocate
//! distributed arrays, run application code on every node, and tear down.

use std::marker::PhantomData;
use std::sync::Arc;

use dsim::{Ctx, JoinHandle, Mailbox, SimBarrier};
use parking_lot::RwLock;
use rdma_fabric::{Fabric, NicStatsSnapshot, NodeId, SimTransport, Transport};

use crate::array::DArray;
use crate::cache::{CacheRegion, PoolStats};
use crate::comm::{rel_thread_main, rx_thread_main, tx_thread_main, CommHandle, RelMsg, TxReq};
use crate::config::{ArrayOptions, ClusterConfig, TransportKind, DEFAULT_CHUNK_SIZE};
use crate::element::Element;
use crate::error::DArrayError;
use crate::layout::Layout;
use crate::msg::{NetMsg, RtMsg};
use crate::op::{OpId, OpRegistry};
use crate::placement::Placement;
use crate::runtime::RuntimeThread;
use crate::shared::{ArrayShared, ClusterShared};
use crate::stats::NodeStatsSnapshot;
use crate::store::{ChunkStore, LogChunkStore};

/// Environment handed to each application thread by [`Cluster::run`].
pub struct NodeEnv {
    /// This thread's node.
    pub node: NodeId,
    /// Thread index within the node.
    pub thread: usize,
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// Application threads per node in this `run`.
    pub threads_per_node: usize,
    barrier: SimBarrier,
}

impl NodeEnv {
    /// Global barrier over every application thread of this `run`.
    pub fn barrier(&self, ctx: &mut Ctx) {
        self.barrier.wait(ctx);
    }
}

/// A handle to a distributed array that is not yet bound to a node; hand it
/// to application threads and call [`GlobalArray::on`].
pub struct GlobalArray<T: Element> {
    shared: Arc<ClusterShared>,
    arr: Arc<ArrayShared>,
    _pd: PhantomData<fn() -> T>,
}

impl<T: Element> Clone for GlobalArray<T> {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
            arr: self.arr.clone(),
            _pd: PhantomData,
        }
    }
}

impl<T: Element> GlobalArray<T> {
    /// The node-local view for `node`.
    pub fn on(&self, node: NodeId) -> DArray<T> {
        assert!(node < self.shared.cfg.nodes);
        DArray {
            shared: self.shared.clone(),
            arr: self.arr.clone(),
            node,
            _pd: PhantomData,
        }
    }

    /// Global length.
    pub fn len(&self) -> usize {
        self.arr.layout.len()
    }

    /// True for an empty array.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A running DArray cluster inside a `dsim` simulation.
pub struct Cluster {
    shared: Arc<ClusterShared>,
    tx_queues: Vec<Option<Mailbox<TxReq>>>,
    rel_queues: Vec<Option<Mailbox<RelMsg>>>,
    service_handles: Vec<JoinHandle>,
}

/// Build the per-node transport endpoints selected by `cfg.transport`
/// (already validated). The simulated backend wraps one dsim NIC per node;
/// the TCP backend brings up a real socket mesh and can fail at the OS
/// level, surfaced as [`crate::ConfigError::TransportBringUp`].
fn build_transports(cfg: &ClusterConfig) -> Result<Vec<Arc<dyn Transport<NetMsg>>>, DArrayError> {
    match cfg.transport {
        TransportKind::Sim => {
            // The selective-signaling knob maps onto the simulated NIC's
            // native signal interval; the default `None` leaves `net`
            // untouched (bit-identical to the pre-batching build).
            let mut net = cfg.net.clone();
            if let Some(n) = cfg.batch.flush_every_frames {
                net.signal_interval = n;
            }
            let policy = rdma_fabric::BatchPolicy {
                send_batch_max: cfg.batch.send_batch_max,
                flush_every_frames: cfg.batch.flush_every_frames,
            };
            let fabric: Fabric<NetMsg> = match &cfg.fault {
                Some(f) => Fabric::with_faults(cfg.nodes, net, f.plan.clone()),
                None => Fabric::new(cfg.nodes, net),
            };
            Ok((0..cfg.nodes)
                .map(|i| {
                    Arc::new(SimTransport::with_policy(fabric.nic(i), policy))
                        as Arc<dyn Transport<NetMsg>>
                })
                .collect())
        }
        TransportKind::Tcp => build_tcp_transports(cfg),
    }
}

#[cfg(feature = "tcp-transport")]
fn build_tcp_transports(
    cfg: &ClusterConfig,
) -> Result<Vec<Arc<dyn Transport<NetMsg>>>, DArrayError> {
    let addrs = cfg.tcp.addrs.as_ref().map(|a| {
        a.iter()
            .map(|s| s.parse().expect("addresses checked by try_validate"))
            .collect()
    });
    let opts = rdma_fabric::TcpOptions {
        max_frame_words: cfg.tcp.max_frame_words,
        poll_ns: cfg.tcp.poll_ns,
        addrs,
        pump_threads: cfg.tcp.pump_threads,
        send_batch_max: cfg.batch.send_batch_max,
        flush_every_frames: cfg.batch.flush_every_frames,
    };
    let mesh = rdma_fabric::TcpFabric::new(cfg.nodes, opts).map_err(|e| {
        crate::ConfigError::TransportBringUp {
            message: e.to_string(),
        }
    })?;
    Ok((0..cfg.nodes)
        .map(|i| mesh.transport(i) as Arc<dyn Transport<NetMsg>>)
        .collect())
}

#[cfg(not(feature = "tcp-transport"))]
fn build_tcp_transports(
    _cfg: &ClusterConfig,
) -> Result<Vec<Arc<dyn Transport<NetMsg>>>, DArrayError> {
    // `try_validate` rejects `TransportKind::Tcp` without the feature, so
    // this arm is unreachable through `Cluster::try_new`.
    Err(crate::ConfigError::TcpFeatureDisabled.into())
}

impl Cluster {
    /// Boot a cluster: builds the transport mesh and spawns, per node, one
    /// Rx thread, the configured runtime threads, and (optionally) a Tx
    /// thread. Panics on an invalid configuration; [`Cluster::try_new`] is
    /// the fallible form.
    pub fn new(ctx: &mut Ctx, cfg: ClusterConfig) -> Self {
        match Self::try_new(ctx, cfg) {
            Ok(cluster) => cluster,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible bring-up: structured [`DArrayError::Config`] diagnostics
    /// for rejected configurations or failed transport bring-up, instead
    /// of a panic.
    pub fn try_new(ctx: &mut Ctx, cfg: ClusterConfig) -> Result<Self, DArrayError> {
        cfg.try_validate()?;
        let nodes = cfg.nodes;
        let rts = cfg.runtime_threads;
        let transports = build_transports(&cfg)?;
        let placement = Placement::new(rts);
        // Per-thread pools tile the node's cache region exactly: the
        // remainder of `capacity_lines / rts` is spread one line each over
        // the low-index pools instead of being silently dropped, and the
        // region is sized to `capacity_lines` — no over-allocation.
        let pool_ranges = placement.pool_ranges(cfg.cache.capacity_lines);
        let cache_regions = (0..nodes)
            .map(|_| {
                rdma_fabric::MemoryRegion::new(cfg.cache.capacity_lines * cfg.cache.line_words)
            })
            .collect::<Vec<_>>();
        // Cache regions receive one-sided WRITEs (fills from remote homes):
        // make them addressable on every backend.
        for (transport, region) in transports.iter().zip(&cache_regions) {
            transport.register_region(region);
        }
        let cache_pools = (0..nodes)
            .map(|_| {
                pool_ranges
                    .iter()
                    .map(|&(base, lines)| {
                        Arc::new(CacheRegion::new(
                            base,
                            lines,
                            cfg.cache.low_watermark,
                            cfg.cache.high_watermark,
                        ))
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>();
        let rt_mailboxes = (0..nodes)
            .map(|n| {
                (0..rts)
                    .map(|r| Mailbox::new(&format!("rt-{n}-{r}")))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>();
        let stats: Vec<Arc<crate::stats::NodeStats>> = (0..nodes)
            .map(|_| Arc::new(crate::stats::NodeStats::default()))
            .collect();
        // Durable chunk stores: one append-only log per node, replayed
        // crash-safely on open (DESIGN.md §14). Recovered images are
        // overlaid onto home subarrays in `alloc_with`.
        let stores: Vec<Option<Arc<dyn ChunkStore>>> = if cfg.durability.enabled() {
            let dir = cfg
                .durability
                .dir
                .as_ref()
                .expect("checked by try_validate");
            let mut v: Vec<Option<Arc<dyn ChunkStore>>> = Vec::with_capacity(nodes);
            for (n, node_stats) in stats.iter().enumerate() {
                let store = LogChunkStore::open_with(
                    &dir.join(format!("node{n}.log")),
                    cfg.durability.policy,
                    cfg.durability.checkpoint_config(),
                )
                .map_err(|e| crate::ConfigError::DurabilityBringUp {
                    message: e.to_string(),
                })?;
                let st = store.stats();
                node_stats
                    .log_replays
                    .fetch_add(st.replayed_records, std::sync::atomic::Ordering::Relaxed);
                node_stats
                    .recovered_chunks
                    .fetch_add(st.recovered_chunks, std::sync::atomic::Ordering::Relaxed);
                v.push(Some(Arc::new(store)));
            }
            // First incarnation binds the directory to this cluster shape;
            // `try_validate` already rejected any mismatch with an earlier
            // record (ConfigError::RuntimeThreadsChanged /
            // ClusterNodesChanged).
            crate::config::write_incarnation_meta(dir, cfg.runtime_threads, cfg.nodes).map_err(
                |e| crate::ConfigError::DurabilityBringUp {
                    message: e.to_string(),
                },
            )?;
            v
        } else {
            (0..nodes).map(|_| None).collect()
        };
        // One reliability-agent mailbox per node when fault injection is on.
        let rel_queues: Vec<Option<Mailbox<RelMsg>>> = (0..nodes)
            .map(|n| {
                cfg.fault
                    .as_ref()
                    .map(|_| Mailbox::new(&format!("rel-{n}")))
            })
            .collect();
        // Elastic bring-up with spares: every view starts the suffix
        // `initial_nodes..nodes` in `Joining` — running the full service
        // stack, homing no chunks, holding no votes — until
        // [`Cluster::join_peer`] admits them under a burned epoch.
        let membership = (0..nodes)
            .map(|_| match cfg.initial_nodes {
                Some(active) if active < nodes => {
                    crate::membership::MembershipView::new_with_joining(nodes, active)
                }
                _ => crate::membership::MembershipView::new(nodes),
            })
            .collect();
        let shared = Arc::new(ClusterShared {
            cfg: cfg.clone(),
            placement,
            registry: Arc::new(OpRegistry::new()),
            transports,
            arrays: RwLock::new(Vec::new()),
            cache_regions,
            cache_pools,
            rt_mailboxes,
            stats,
            rel_mailboxes: rel_queues.clone(),
            rx_links: (0..nodes)
                .map(|_| (0..nodes).map(|_| Default::default()).collect())
                .collect(),
            stores,
            membership,
            protocol_fault: Default::default(),
        });

        let mut service_handles = Vec::new();
        let mut tx_queues = Vec::new();
        for (node, rel_q) in rel_queues.iter().enumerate() {
            // Rx thread (always present; §3.1 communication layer).
            let sh = shared.clone();
            service_handles.push(ctx.spawn(&format!("rx-{node}"), move |c| {
                rx_thread_main(c, sh, node);
            }));
            // Reliability agent (fault mode only).
            if let Some(q) = rel_q {
                let sh = shared.clone();
                let q2 = q.clone();
                service_handles.push(ctx.spawn(&format!("rel-{node}"), move |c| {
                    rel_thread_main(c, sh, node, q2);
                }));
            }
            // Optional Tx thread.
            let tx_q = if cfg.tx_threads {
                let q: Mailbox<TxReq> = Mailbox::new(&format!("tx-{node}"));
                let transport = shared.transports[node].clone();
                let q2 = q.clone();
                service_handles.push(ctx.spawn(&format!("tx-{node}"), move |c| {
                    tx_thread_main(c, transport, q2);
                }));
                Some(q)
            } else {
                None
            };
            // Runtime threads.
            for r in 0..rts {
                let comm = CommHandle {
                    transport: shared.transports[node].clone(),
                    tx: tx_q.clone(),
                    rel: rel_q.clone(),
                    node,
                };
                let rt = RuntimeThread::new(
                    node,
                    r,
                    shared.clone(),
                    comm,
                    shared.cache_pools[node][r].clone(),
                    shared.rt_mailboxes[node][r].clone(),
                );
                service_handles.push(ctx.spawn(&format!("rt-{node}-{r}"), move |c| rt.run(c)));
            }
            tx_queues.push(tx_q);
        }
        Ok(Self {
            shared,
            tx_queues,
            rel_queues,
            service_handles,
        })
    }

    /// The cluster-wide operator registry (the paper's `registerOp` lives
    /// here).
    pub fn ops(&self) -> &OpRegistry {
        &self.shared.registry
    }

    /// Register an associative+commutative operator (Figure 3 line 8).
    pub fn register_op<T, F>(&self, name: &str, identity: T, combine: F) -> OpId
    where
        T: Element,
        F: Fn(T, T) -> T + Send + Sync + 'static,
    {
        self.shared.registry.register(name, identity, combine)
    }

    /// Allocate a zero-initialized distributed array of `len` elements
    /// (Figure 3 line 2's constructor).
    pub fn alloc<T: Element>(&self, len: usize, opts: ArrayOptions) -> GlobalArray<T> {
        self.alloc_with(len, opts, |_| T::from_bits(0))
    }

    /// Allocate and initialize a distributed array; `init(i)` produces the
    /// initial value of element `i`, written directly into each home
    /// node's subarray (no network traffic).
    pub fn alloc_with<T: Element>(
        &self,
        len: usize,
        opts: ArrayOptions,
        init: impl Fn(usize) -> T,
    ) -> GlobalArray<T> {
        let chunk_size = opts.chunk_size.unwrap_or(DEFAULT_CHUNK_SIZE);
        if let Err(e) = self.shared.cfg.try_validate_array(chunk_size) {
            panic!("{e}");
        }
        let nodes = self.shared.cfg.nodes;
        let elastic = self.shared.cfg.elastic;
        let layout = match &opts.partition_offset {
            Some(offs) => Layout::custom(len, nodes, chunk_size, offs),
            None if elastic => {
                // Spares (still Joining) home nothing: partition over the
                // active prefix only. Joins admit in index order, so the
                // active set is the longest non-joining prefix.
                let active = (0..nodes)
                    .take_while(|&n| !self.shared.membership[0].is_joining(n))
                    .count();
                Layout::even_prefix(len, nodes, active, chunk_size)
            }
            None => Layout::even(len, nodes, chunk_size),
        };
        let mut arrays = self.shared.arrays.write();
        let id = arrays.len() as u32;
        let arr = Arc::new(ArrayShared::new(
            id,
            layout,
            self.shared.cfg.durability.enabled(),
            elastic,
        ));
        // In elastic mode one chunk's image can exist in more than one log
        // (the old home persisted it before a migration, the new home
        // after). The record with the highest persist epoch is the
        // authoritative one — the migration fence burns an epoch before the
        // new home's first persist, so its records outrank the source's.
        let mut best: std::collections::HashMap<usize, (u64, usize)> =
            std::collections::HashMap::new();
        if elastic {
            for (n, store) in self.shared.stores.iter().enumerate() {
                let Some(store) = store else { continue };
                for rec in store.recovered() {
                    let c = rec.chunk as usize;
                    if rec.array != id
                        || c >= arr.layout.num_chunks()
                        || rec.data.len() != chunk_size
                    {
                        continue;
                    }
                    let e = best.entry(c).or_insert((rec.epoch, n));
                    if rec.epoch >= e.0 {
                        *e = (rec.epoch, n);
                    }
                }
            }
        }
        // Chunks overlaid from a recovered image, with their authoritative
        // (post-recovery) home — the input to the cold-cache warmup below.
        let mut warm: Vec<(usize, usize)> = Vec::new();
        for n in 0..nodes {
            let elems = arr.layout.node_elems(n);
            for i in elems {
                let c = arr.layout.chunk_of(i);
                let w = arr.chunk_off(c) + arr.layout.offset_in_chunk(i);
                arr.subarrays[n].store(w, init(i).to_bits());
            }
            // Restart recovery: overlay chunk images replayed from this
            // node's durable log over the freshly initialized subarray —
            // the persisted state of a previous incarnation wins over
            // `init` (DESIGN.md §14). Records from other arrays or from an
            // incompatible layout are left for their own allocation.
            if let Some(store) = &self.shared.stores[n] {
                for rec in store.recovered() {
                    let c = rec.chunk as usize;
                    if rec.array != id
                        || c >= arr.layout.num_chunks()
                        || rec.data.len() != chunk_size
                    {
                        continue;
                    }
                    if elastic {
                        // Best-epoch-wins across all logs: node n only
                        // overlays (and re-homes) chunks whose newest
                        // persisted image lives in its own log.
                        if best.get(&c) != Some(&(rec.epoch, n)) {
                            continue;
                        }
                        let h = arr.layout.home_of_chunk(c);
                        if h != n {
                            // The chunk had migrated here before the crash:
                            // restore n as its home on every view, under
                            // the persist epoch (future migration epochs
                            // resume past it, keeping the map monotone).
                            for m in 0..nodes {
                                arr.note_home(m, c, n, rec.epoch);
                            }
                            // Dentries were seeded from the static layout;
                            // hand the line to the recovered home so the
                            // layout home's fast path cannot serve its
                            // freshly re-initialized (stale) image.
                            let old = &arr.per_node[h].dentries[c];
                            old.promote_to(
                                crate::state::LocalState::Invalid,
                                crate::protocol::NOTAG,
                            );
                            old.set_line(crate::protocol::LINE_NONE);
                            let new = &arr.per_node[n].dentries[c];
                            new.set_line(crate::protocol::LINE_HOME);
                            new.promote_to(
                                crate::state::LocalState::Exclusive,
                                crate::protocol::NOTAG,
                            );
                        }
                    } else if arr.layout.home_of_chunk(c) != n {
                        continue;
                    }
                    let off = arr.chunk_off(c);
                    for (i, &word) in rec.data.iter().enumerate() {
                        arr.subarrays[n].store(off + i, word);
                    }
                    // Resume the chunk's persist sequence past the recovered
                    // record so post-restart persists stamp *newer* epochs —
                    // otherwise a second crash's latest-epoch-wins replay
                    // would resurrect this pre-restart image.
                    arr.per_node[n].home[c].lock().resume_persist_seq(rec.epoch);
                    warm.push((c, n));
                }
            }
        }
        // Cold-cache warmup (DESIGN.md §14): a recovered checkpoint/log
        // image is the one copy of the chunk guaranteed fresh at bring-up;
        // seed read-only Shared copies of it into the other nodes' caches
        // so the first post-restart reads hit locally instead of paying one
        // cold fill per line. Strictly an optimization — warming stops the
        // moment it would push a pool into its eviction band, and
        // still-joining spares are skipped. Each warmed node is registered
        // in the home machine's sharer set, so later writes invalidate the
        // seeded copies through the ordinary protocol.
        for &(c, h) in &warm {
            let line_words = self.shared.cfg.cache.line_words;
            let img = arr.subarrays[h].read_vec(arr.chunk_off(c), chunk_size);
            let r = self.shared.placement.rt_index(id, c as u32);
            for m in 0..nodes {
                if m == h || self.shared.membership[m].is_joining(m) {
                    continue;
                }
                let pool = &self.shared.cache_pools[m][r];
                let Some(line) = pool.alloc(id, c as u32) else {
                    continue;
                };
                if pool.below_high() {
                    pool.free(line);
                    continue;
                }
                let dst = line as usize * line_words;
                for (i, &word) in img.iter().enumerate() {
                    self.shared.cache_regions[m].store(dst + i, word);
                }
                let d = &arr.per_node[m].dentries[c];
                d.set_line(line);
                d.promote_to(crate::state::LocalState::Shared, crate::protocol::NOTAG);
                arr.per_node[h].home[c].lock().seed_sharer(m);
            }
        }
        // Subarrays are WRITE targets for evictions/writebacks: register
        // each home partition with its owner's transport.
        for (n, transport) in self.shared.transports.iter().enumerate() {
            transport.register_region(&arr.subarrays[n]);
        }
        arrays.push(arr.clone());
        drop(arrays);
        GlobalArray {
            shared: self.shared.clone(),
            arr,
            _pd: PhantomData,
        }
    }

    /// Run `f` once per (node, thread) as simulated application threads and
    /// join them all. May be called repeatedly (e.g. warm-up then measured
    /// phase).
    pub fn run<F>(&self, ctx: &mut Ctx, threads_per_node: usize, f: F)
    where
        F: Fn(&mut Ctx, NodeEnv) + Send + Sync + 'static,
    {
        assert!(threads_per_node > 0);
        let nodes = self.shared.cfg.nodes;
        let f = Arc::new(f);
        let barrier = SimBarrier::new(nodes * threads_per_node);
        let mut handles = Vec::new();
        for node in 0..nodes {
            for t in 0..threads_per_node {
                let env = NodeEnv {
                    node,
                    thread: t,
                    nodes,
                    threads_per_node,
                    barrier: barrier.clone(),
                };
                let f2 = f.clone();
                handles.push(ctx.spawn(&format!("app-{node}-{t}"), move |c| f2(c, env)));
            }
        }
        for h in handles {
            h.join(ctx);
        }
    }

    /// Statistics of one node's runtime, with the node's transport
    /// byte/frame/completion counters overlaid (backend-agnostic; see
    /// [`rdma_fabric::TransportStats`]).
    pub fn stats(&self, node: NodeId) -> NodeStatsSnapshot {
        let mut snap = self.shared.stats[node].snapshot();
        let t = self.shared.transport_stats(node);
        snap.bytes_tx = t.bytes_tx;
        snap.bytes_rx = t.bytes_rx;
        snap.frames = t.frames;
        snap.completions = t.completions;
        snap.tx_flushes = t.tx_flushes;
        snap.doorbell_batches = t.doorbell_batches;
        snap.frames_coalesced = t.frames_coalesced;
        snap.ring_hwm = t.ring_hwm;
        if let Some(store) = &self.shared.stores[node] {
            let st = store.stats();
            snap.log_bytes = st.log_bytes;
            snap.checkpoint_bytes = st.checkpoint_bytes;
            snap.compactions = st.compactions;
            snap.truncated_records = st.truncated_records;
        }
        snap
    }

    /// Checkpoint barrier: snapshot every node's durable chunk store into
    /// its checkpoint sidecar and (when `durability.compact` is on) drop
    /// the covered log prefix — the explicit checkpoint/restore point for
    /// an operator-driven backup, independent of the periodic
    /// `checkpoint_every_persists` trigger. Call between [`Cluster::run`]
    /// phases, when no application request is in flight: each store's
    /// buffered records are flushed and synced before its image is
    /// captured, so the sidecars jointly hold every write acknowledged
    /// before the call. No-op (returns `Ok`) without durability.
    pub fn checkpoint_all(&self) -> std::io::Result<()> {
        for store in self.shared.stores.iter().flatten() {
            store.checkpoint()?;
        }
        Ok(())
    }

    /// Per-runtime-thread cache-pool snapshots of `node`, in thread order.
    /// Surfaces placement skew: how full each pool runs and how often its
    /// watermark scan evicts.
    pub fn pool_stats(&self, node: NodeId) -> Vec<PoolStats> {
        self.shared.cache_pools[node]
            .iter()
            .map(|p| p.stats())
            .collect()
    }

    /// Verb counters of one node's NIC. All-zero when the node's transport
    /// is not backed by the simulated NIC.
    pub fn nic_stats(&self, node: NodeId) -> NicStatsSnapshot {
        self.shared.nic_stats(node)
    }

    /// Node `me`'s current membership opinion of `peer` (Alive / Suspected
    /// / Dead). Observational only; the reliability agent owns transitions.
    pub fn peer_health(&self, me: NodeId, peer: NodeId) -> crate::membership::PeerHealth {
        self.shared.membership[me].health(peer)
    }

    /// Node `me`'s current membership-view epoch (count of deaths it has
    /// confirmed so far).
    pub fn membership_epoch(&self, me: NodeId) -> u64 {
        self.shared.membership[me].epoch()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.shared.cfg
    }

    /// Re-admit `node` as a *restarted* identity on every view that had
    /// confirmed it dead (DESIGN.md §14): the protocol-level rejoin after a
    /// kill. Each such view burns a fresh membership epoch (fencing
    /// straggler death declarations of the old incarnation) and fans
    /// `PeerRestarted` out to its runtime threads, which release every
    /// cached line homed on the restarted node (rights granted by the old
    /// incarnation are void) and un-fence it in their home directories.
    ///
    /// This re-opens the *protocol* to the new incarnation; recovering the
    /// node's durable chunk images is the chunk store's job and happens
    /// when its log is reopened (`LogChunkStore::open` + the allocation
    /// replay overlay). Views on which `node` was never confirmed dead are
    /// left untouched. Returns how many views re-admitted it.
    ///
    /// Contract: call on a *settled* death — after every survivor has
    /// processed the declaration and no application request is outstanding
    /// against the corpse. Calling between [`Cluster::run`] phases
    /// guarantees this (an app thread still parked on the dead node would
    /// have kept the previous phase from joining). Re-admitting while the
    /// death is still being settled is unspecified: a survivor could
    /// address the new incarnation before processing the stale declaration
    /// of the old one and tear down a fill the new home already granted.
    pub fn restart_peer(&self, ctx: &mut Ctx, node: NodeId) -> usize {
        let mut readmitted = 0;
        for m in 0..self.shared.cfg.nodes {
            let Some(epoch) = self.shared.membership[m].restart(node) else {
                continue;
            };
            readmitted += 1;
            self.admit_peer(ctx, m, node, epoch);
            for rt in &self.shared.rt_mailboxes[m] {
                rt.send(ctx, RtMsg::PeerRestarted { node, epoch }, 0);
            }
        }
        readmitted
    }

    /// First-contact bring-up of the `m` <-> `node` link after view `m`
    /// admitted `node` under `epoch` — shared by [`Cluster::restart_peer`]
    /// (re-admission of a restarted identity) and [`Cluster::join_peer`]
    /// (admission of a spare). Bring the reliable link up like a cold
    /// boot: any earlier incarnation's unacked frames carry sequence
    /// numbers that are gone for good, so continuing the old streams would
    /// leave the receivers waiting forever on the gap. Both directions
    /// restart from seq 0 (the link is idle — see the settled-death /
    /// between-phases contracts), resets enqueued before any new traffic
    /// can be.
    fn admit_peer(&self, ctx: &mut Ctx, m: NodeId, node: NodeId, epoch: u64) {
        crate::stats::NodeStats::raise(&self.shared.stats[m].membership_epoch, epoch);
        self.shared.rx_links[m][node].lock().reset();
        self.shared.rx_links[node][m].lock().reset();
        if let Some(rel) = &self.shared.rel_mailboxes[m] {
            rel.send(ctx, RelMsg::ResetLink { peer: node }, 0);
        }
        if let Some(rel) = &self.shared.rel_mailboxes[node] {
            rel.send(ctx, RelMsg::ResetLink { peer: m }, 0);
        }
    }

    /// Admit spare `node` (configured via `ClusterConfig::initial_nodes`,
    /// health `Joining`) into the live cluster (DESIGN.md §15).
    ///
    /// In fault mode this drives the join *protocol*: the joiner's
    /// reliability agent announces `JoinReq` to every peer it views alive;
    /// each survivor admits the joiner on its own view (burning a fresh
    /// membership epoch and performing the first-contact link bring-up)
    /// and votes `JoinVote{admit}`; the joiner self-admits once a quorum
    /// of votes is in. This call then blocks (in virtual time) until every
    /// view the joiner can reach has admitted it. Without a `fault`
    /// config there are no reliability agents, so the views are admitted
    /// synchronously here — same postcondition, no wire traffic.
    ///
    /// The joined node homes no chunks until [`Cluster::migrate_chunk`]
    /// re-homes some onto it; arrays allocated *after* the join include it
    /// in their even partition. Returns how many views admitted the node.
    /// No-op (returns 0) if `node` is not in `Joining` state everywhere.
    pub fn join_peer(&self, ctx: &mut Ctx, node: NodeId) -> usize {
        assert!(
            self.shared.cfg.elastic,
            "join_peer requires ClusterConfig::elastic"
        );
        let nodes = self.shared.cfg.nodes;
        assert!(node < nodes);
        if self.shared.cfg.fault.is_some() && self.shared.rel_mailboxes[node].is_some() {
            let before: Vec<bool> = (0..nodes)
                .map(|m| self.shared.membership[m].is_joining(node))
                .collect();
            if !before[node] {
                return 0;
            }
            if let Some(rel) = &self.shared.rel_mailboxes[node] {
                rel.send(ctx, RelMsg::AnnounceJoin, 0);
            }
            // Wait until the join settles: the joiner has self-admitted on
            // quorum and every peer it views alive has admitted it too.
            let poll = self
                .shared
                .cfg
                .fault
                .as_ref()
                .map(|f| f.suspect_poll_ns)
                .unwrap_or(1_000);
            loop {
                let jv = &self.shared.membership[node];
                let settled = !jv.is_joining(node)
                    && (0..nodes).all(|m| {
                        m == node
                            || jv.health(m) != crate::membership::PeerHealth::Alive
                            || self.shared.membership[m].health(node)
                                == crate::membership::PeerHealth::Alive
                    });
                if settled {
                    break;
                }
                ctx.sleep(poll);
            }
            // Count the views that now hold the joiner Alive.
            (0..nodes)
                .filter(|&m| {
                    self.shared.membership[m].health(node) == crate::membership::PeerHealth::Alive
                })
                .count()
        } else {
            // Fault-free path: no reliability agents exist, so admit the
            // joiner on every view directly (links have no sequence state
            // to reset, but the bring-up is shared for uniformity).
            let mut admitted = 0;
            for m in 0..nodes {
                let Some(epoch) = self.shared.membership[m].admit(node) else {
                    continue;
                };
                admitted += 1;
                self.admit_peer(ctx, m, node, epoch);
            }
            admitted
        }
    }

    /// Re-home `chunk` of `arr` onto `to` while the cluster serves traffic
    /// (DESIGN.md §15): sends `RtMsg::Migrate` to the runtime thread that
    /// owns the chunk at its current home, which fences the chunk
    /// (recalling outstanding copies, parking new arrivals), transfers the
    /// directory state and data image, and commits the move under a burned
    /// epoch. Blocks (in virtual time) until every node's home map shows
    /// `to` as the chunk's home — after which parked traffic has been
    /// forwarded and the old home is no longer authoritative — or until
    /// the move settles as aborted because `to` died mid-migration, in
    /// which case the source re-assumed the chunk. Returns `true` iff the
    /// chunk is homed on `to` when the call returns (including the no-op
    /// case where it already was).
    pub fn migrate_chunk<T: Element>(
        &self,
        ctx: &mut Ctx,
        arr: &GlobalArray<T>,
        chunk: usize,
        to: NodeId,
    ) -> bool {
        assert!(
            self.shared.cfg.elastic,
            "migrate_chunk requires ClusterConfig::elastic"
        );
        let nodes = self.shared.cfg.nodes;
        assert!(to < nodes);
        let a = &arr.arr;
        assert!(chunk < a.layout.num_chunks());
        assert!(
            self.shared.membership[to].health(to) == crate::membership::PeerHealth::Alive,
            "migration target must be an admitted, live node"
        );
        // The current home by its own account (every settled view agrees;
        // mid-migration the call below is rejected by the machine and the
        // wait observes the in-flight move instead).
        let home = (0..nodes)
            .find(|&n| a.home_on(n, chunk) == n)
            .unwrap_or_else(|| a.home_on(to, chunk));
        if home == to {
            return true;
        }
        let r = self.shared.placement.rt_index(a.id, chunk as u32);
        self.shared.rt_mailboxes[home][r].send(
            ctx,
            RtMsg::Migrate {
                array: a.id,
                chunk: chunk as u32,
                to,
            },
            0,
        );
        let poll = self
            .shared
            .cfg
            .fault
            .as_ref()
            .map(|f| f.suspect_poll_ns)
            .unwrap_or(1_000);
        // Observe convergence through the target's view: every node it
        // holds alive (itself included) must have flipped its map. Dead or
        // still-joining nodes learn the new home on re-admission instead.
        // If the target itself is confirmed dead mid-move, its view is
        // frozen and can never converge; the source machine settles the
        // migration on its PeerDown (abort and re-assume, or — when the
        // ack had already landed — commit to the corpse), so the source's
        // own map is the final answer.
        loop {
            if self.shared.membership[home].health(to) == crate::membership::PeerHealth::Dead {
                return a.home_on(home, chunk) == to;
            }
            let converged = (0..nodes).all(|m| {
                self.shared.membership[to].health(m) != crate::membership::PeerHealth::Alive
                    || a.home_on(m, chunk) == to
            });
            if converged {
                return true;
            }
            ctx.sleep(poll);
        }
    }

    /// Stop all service threads and join them. Call after application work
    /// has quiesced (outstanding protocol traffic is drained first because
    /// mailbox sends are FIFO per sender and the runtime processes its
    /// backlog before the shutdown message).
    pub fn shutdown(self, ctx: &mut Ctx) {
        let nodes = self.shared.cfg.nodes;
        for node in 0..nodes {
            for rt in &self.shared.rt_mailboxes[node] {
                rt.send(ctx, RtMsg::Shutdown, 0);
            }
            if let Some(tx) = &self.tx_queues[node] {
                tx.send(ctx, TxReq::Shutdown, 0);
            }
            if let Some(rel) = &self.rel_queues[node] {
                rel.send(ctx, RelMsg::Shutdown, 0);
            }
            // Rx threads stop on a Halt self-send through the transport.
            self.shared.transports[node].send(ctx, node, NetMsg::Halt);
        }
        for h in self.service_handles {
            h.join(ctx);
        }
        // Final durability batch point: under the Writeback policy this is
        // what pushes buffered log records to disk (Writethrough synced
        // each record as it was persisted).
        for store in self.shared.stores.iter().flatten() {
            store.sync().expect("durable chunk store final sync failed");
        }
        // Release backend resources (sockets, pump threads); a no-op for
        // the simulated backend.
        for transport in &self.shared.transports {
            transport.shutdown();
        }
    }
}
