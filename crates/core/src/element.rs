//! The element trait: DArray stores fixed-size 8-byte objects, matching the
//! paper's micro benchmarks ("each element of 8 bytes in size") and its two
//! applications (vertex data, packed KVS entries).

/// A value storable in a [`crate::DArray`]. Elements are encoded into a
/// single 8-byte word; the distributed runtime moves raw words, so the
/// encoding must be total and lossless.
pub trait Element: Copy + Send + Sync + 'static {
    /// Encode into a 64-bit word.
    fn to_bits(self) -> u64;
    /// Decode from a 64-bit word produced by [`Element::to_bits`].
    fn from_bits(bits: u64) -> Self;
}

impl Element for u64 {
    #[inline]
    fn to_bits(self) -> u64 {
        self
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Element for i64 {
    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as i64
    }
}

impl Element for f64 {
    #[inline]
    fn to_bits(self) -> u64 {
        f64::to_bits(self)
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl Element for u32 {
    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as u32
    }
}

impl Element for i32 {
    #[inline]
    fn to_bits(self) -> u64 {
        self as u32 as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as u32 as i32
    }
}

impl Element for f32 {
    #[inline]
    fn to_bits(self) -> u64 {
        f32::to_bits(self) as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl Element for usize {
    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as usize
    }
}

impl Element for bool {
    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Element + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(T::from_bits(v.to_bits()), v);
    }

    #[test]
    fn unsigned_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(42u32);
        roundtrip(u32::MAX);
        roundtrip(usize::MAX);
    }

    #[test]
    fn signed_roundtrip() {
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(-123i32);
        roundtrip(i32::MIN);
    }

    #[test]
    fn float_roundtrip() {
        roundtrip(0.0f64);
        roundtrip(-3.75f64);
        roundtrip(f64::INFINITY);
        roundtrip(1.5f32);
        roundtrip(f32::NEG_INFINITY);
        // NaN keeps its bit pattern.
        let nan = f64::NAN;
        assert!(f64::from_bits(Element::to_bits(nan)).is_nan());
    }

    #[test]
    fn bool_roundtrip() {
        roundtrip(true);
        roundtrip(false);
        assert!(bool::from_bits(17)); // any nonzero decodes to true
    }

    #[test]
    fn signed_narrow_types_do_not_sign_extend_into_garbage() {
        let v = -5i32;
        let bits = v.to_bits();
        assert!(bits <= u32::MAX as u64, "i32 must encode in low 32 bits");
        assert_eq!(i32::from_bits(bits), -5);
    }
}
