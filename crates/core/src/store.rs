//! Per-node durable chunk storage (DESIGN.md §14).
//!
//! An optional persistence backend under the runtime executor: when
//! [`crate::ClusterConfig::durability`] selects a policy other than
//! [`DurabilityPolicy::None`], every node opens one [`ChunkStore`] and the
//! home-side directory machine routes dirty-chunk flushes through it
//! *before* the protocol acknowledges them (persist-before-ack — see
//! `protocol::home::Transient::AwaitPersist`).
//!
//! The shipped implementation, [`LogChunkStore`], is a single append-only
//! log-structured file per node:
//!
//! * each record is an epoch-stamped full-chunk image, CRC-framed so a torn
//!   tail (a crash mid-append) is detected and truncated on reopen;
//! * replay on open scans the log once and keeps, per `(array, chunk)`,
//!   only the record with the highest persist epoch — later records always
//!   win, so recovery is the last acknowledged image of every chunk;
//! * `Writethrough` syncs the file after every record; `Writeback` buffers
//!   appends and syncs at [`ChunkStore::sync`] points (eviction-scan
//!   batches, epoch closes, shutdown).
//!
//! The trait is deliberately tiny — the shape graft takes with its
//! `FjallStorage` layering: a storage seam under the runtime, not a fork of
//! the protocol. A different backend (an LSM tree, a block device, a
//! remote object store) slots in behind the same four methods.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::msg::{ArrayId, ChunkId};

/// When (and whether) dirty-chunk flushes are persisted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// No durability: flushes are acknowledged straight from memory. The
    /// protocol behaves bit-identically to the pre-durability builds.
    #[default]
    None,
    /// Flushes append to the log through a write buffer; the buffer is
    /// synced at batch boundaries (eviction scans, epoch closes, shutdown).
    /// A crash may lose the unsynced tail — but never an already-synced
    /// record, and never the log's integrity (the torn tail is truncated
    /// on reopen).
    Writeback,
    /// Every flush is appended *and synced* before the protocol
    /// acknowledges it. Strongest guarantee, one `fsync` per flush.
    Writethrough,
}

impl DurabilityPolicy {
    /// Human-readable knob name (config errors, reports).
    pub fn name(&self) -> &'static str {
        match self {
            DurabilityPolicy::None => "none",
            DurabilityPolicy::Writeback => "writeback",
            DurabilityPolicy::Writethrough => "writethrough",
        }
    }
}

/// One chunk image recovered by log replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredChunk {
    /// Array the chunk belongs to (allocation order, so deterministic
    /// across a restart that allocates the same arrays in the same order).
    pub array: ArrayId,
    /// Global chunk index within the array.
    pub chunk: ChunkId,
    /// Persist epoch stamped on the winning record.
    pub epoch: u64,
    /// The chunk's words as of its last acknowledged flush.
    pub data: Vec<u64>,
}

/// Counters a store exposes for `NodeStats` overlay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended (one per persisted flush).
    pub persists: u64,
    /// Records scanned during replay on open (including superseded ones).
    pub replayed_records: u64,
    /// Distinct chunks recovered by replay (latest record per chunk).
    pub recovered_chunks: u64,
}

/// A per-node durable chunk store: the persistence seam under the runtime.
///
/// Implementations must be thread-safe — every runtime thread of the node
/// persists through the same store.
pub trait ChunkStore: Send + Sync {
    /// Durably record `data` as the image of `(array, chunk)` at persist
    /// epoch `epoch`. Whether the record is synced before return is the
    /// policy's choice; [`ChunkStore::sync`] forces it.
    fn persist(&self, array: ArrayId, chunk: ChunkId, epoch: u64, data: &[u64]) -> io::Result<()>;

    /// Flush buffered records to stable storage.
    fn sync(&self) -> io::Result<()>;

    /// The chunk images recovered when the store was opened, sorted by
    /// `(array, chunk)` for deterministic replay order.
    fn recovered(&self) -> Vec<RecoveredChunk>;

    /// Monotonic counters for stats overlay.
    fn stats(&self) -> StoreStats;
}

/// Log file magic: `b"DACS"` ("DArray Chunk Store").
const MAGIC: u32 = 0x5343_4144;
/// Format version; bumped on incompatible record changes.
const VERSION: u32 = 1;
/// Per-record fixed header: array(4) chunk(4) nwords(4) pad(4) epoch(8).
const REC_HEADER_BYTES: usize = 24;

/// CRC-32 (IEEE 802.3, reflected), table-less bitwise implementation — the
/// store must not pull in a checksum dependency.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

struct LogInner {
    file: File,
    /// Buffered bytes not yet written to the file (Writeback policy).
    buf: Vec<u8>,
}

/// The shipped [`ChunkStore`]: one append-only CRC-framed log file.
pub struct LogChunkStore {
    path: PathBuf,
    sync_every_record: bool,
    inner: Mutex<LogInner>,
    /// Snapshot of the replay result at open time; later persists append to
    /// the log but do not alter what *this* open recovered.
    recovered: Vec<RecoveredChunk>,
    persists: AtomicU64,
    replayed_records: u64,
}

impl LogChunkStore {
    /// Open (or create) the log at `path`, replaying any existing records.
    /// A torn tail — an incomplete or CRC-corrupt final record left by a
    /// crash mid-append — is truncated away; everything before it is kept.
    ///
    /// `policy` must not be [`DurabilityPolicy::None`] (config validation
    /// rejects that combination before a store is ever opened).
    pub fn open(path: &Path, policy: DurabilityPolicy) -> io::Result<Self> {
        debug_assert_ne!(policy, DurabilityPolicy::None);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut body = Vec::new();
        file.read_to_end(&mut body)?;

        let mut index: HashMap<(ArrayId, ChunkId), (u64, Vec<u64>)> = HashMap::new();
        let mut replayed_records = 0u64;
        let valid_len = if body.is_empty() {
            // Fresh log: write the file header.
            let mut hdr = Vec::with_capacity(8);
            hdr.extend_from_slice(&MAGIC.to_le_bytes());
            hdr.extend_from_slice(&VERSION.to_le_bytes());
            file.write_all(&hdr)?;
            8
        } else {
            if body.len() < 8
                || u32::from_le_bytes(body[0..4].try_into().unwrap()) != MAGIC
                || u32::from_le_bytes(body[4..8].try_into().unwrap()) != VERSION
            {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: not a darray chunk log (bad magic/version)",
                        path.display()
                    ),
                ));
            }
            let mut pos = 8usize;
            // Scan records until EOF or the first torn/corrupt frame.
            while let Some((consumed, array, chunk, epoch, data)) = decode_record(&body[pos..]) {
                let e = index.entry((array, chunk)).or_insert((0, Vec::new()));
                // Later records supersede earlier ones; epoch ties go to
                // the later (append-ordered) record too.
                if epoch >= e.0 || e.1.is_empty() {
                    *e = (epoch, data);
                }
                replayed_records += 1;
                pos += consumed;
            }
            pos
        };
        if valid_len < body.len().max(8) {
            // Torn tail: a crash interrupted the final append.
            file.set_len(valid_len as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;

        let mut recovered: Vec<RecoveredChunk> = index
            .into_iter()
            .map(|((array, chunk), (epoch, data))| RecoveredChunk {
                array,
                chunk,
                epoch,
                data,
            })
            .collect();
        recovered.sort_by_key(|r| (r.array, r.chunk));
        Ok(Self {
            path: path.to_path_buf(),
            sync_every_record: policy == DurabilityPolicy::Writethrough,
            inner: Mutex::new(LogInner {
                file,
                buf: Vec::new(),
            }),
            recovered,
            persists: AtomicU64::new(0),
            replayed_records,
        })
    }

    /// The log file path (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Encode one record: `[len u32][crc u32][header][data]`, where `len`
/// covers header + data and `crc` covers the same bytes `len` frames.
fn encode_record(array: ArrayId, chunk: ChunkId, epoch: u64, data: &[u64]) -> Vec<u8> {
    let body_len = REC_HEADER_BYTES + data.len() * 8;
    let mut out = Vec::with_capacity(8 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // crc placeholder
    out.extend_from_slice(&array.to_le_bytes());
    out.extend_from_slice(&chunk.to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // pad (8-byte data alignment)
    out.extend_from_slice(&epoch.to_le_bytes());
    for w in data {
        out.extend_from_slice(&w.to_le_bytes());
    }
    let crc = crc32(&out[8..]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decode the record at the front of `buf`. Returns
/// `(bytes_consumed, array, chunk, epoch, data)` or `None` on a torn or
/// corrupt frame.
fn decode_record(buf: &[u8]) -> Option<(usize, ArrayId, ChunkId, u64, Vec<u64>)> {
    if buf.len() < 8 {
        return None;
    }
    let body_len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if body_len < REC_HEADER_BYTES || buf.len() < 8 + body_len {
        return None; // torn tail
    }
    let body = &buf[8..8 + body_len];
    if crc32(body) != crc {
        return None; // corrupt frame (torn overwrite)
    }
    let array = u32::from_le_bytes(body[0..4].try_into().unwrap());
    let chunk = u32::from_le_bytes(body[4..8].try_into().unwrap());
    let nwords = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
    let epoch = u64::from_le_bytes(body[16..24].try_into().unwrap());
    if body_len != REC_HEADER_BYTES + nwords * 8 {
        return None;
    }
    let mut data = Vec::with_capacity(nwords);
    for i in 0..nwords {
        let off = REC_HEADER_BYTES + i * 8;
        data.push(u64::from_le_bytes(body[off..off + 8].try_into().unwrap()));
    }
    Some((8 + body_len, array, chunk, epoch, data))
}

impl ChunkStore for LogChunkStore {
    fn persist(&self, array: ArrayId, chunk: ChunkId, epoch: u64, data: &[u64]) -> io::Result<()> {
        let rec = encode_record(array, chunk, epoch, data);
        let mut g = self.inner.lock();
        if self.sync_every_record {
            g.buf.extend_from_slice(&rec);
            let buf = std::mem::take(&mut g.buf);
            g.file.write_all(&buf)?;
            g.file.sync_data()?;
        } else {
            g.buf.extend_from_slice(&rec);
        }
        self.persists.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        let mut g = self.inner.lock();
        if !g.buf.is_empty() {
            let buf = std::mem::take(&mut g.buf);
            g.file.write_all(&buf)?;
        }
        g.file.sync_data()
    }

    fn recovered(&self) -> Vec<RecoveredChunk> {
        self.recovered.clone()
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            persists: self.persists.load(Ordering::Relaxed),
            replayed_records: self.replayed_records,
            recovered_chunks: self.recovered.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "darray-store-test-{}-{name}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn persist_reopen_recovers_latest_image() {
        let p = temp_log("latest");
        {
            let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
            s.persist(0, 3, 1, &[1, 2, 3]).unwrap();
            s.persist(0, 3, 2, &[4, 5, 6]).unwrap();
            s.persist(1, 0, 1, &[9]).unwrap();
            assert_eq!(s.stats().persists, 3);
            assert!(s.recovered().is_empty(), "fresh log recovered nothing");
        }
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        let rec = s.recovered();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec[0].array, 0);
        assert_eq!(rec[0].chunk, 3);
        assert_eq!(rec[0].epoch, 2);
        assert_eq!(rec[0].data, vec![4, 5, 6], "later record wins");
        assert_eq!(rec[1].data, vec![9]);
        let st = s.stats();
        assert_eq!(st.replayed_records, 3);
        assert_eq!(st.recovered_chunks, 2);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn writeback_buffers_until_sync() {
        let p = temp_log("writeback");
        {
            let s = LogChunkStore::open(&p, DurabilityPolicy::Writeback).unwrap();
            s.persist(0, 0, 1, &[7]).unwrap();
            // Unsynced: nothing has reached the file past the header yet.
            assert_eq!(std::fs::metadata(&p).unwrap().len(), 8, "header only");
            s.sync().unwrap();
            assert!(std::fs::metadata(&p).unwrap().len() > 8);
        }
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writeback).unwrap();
        assert_eq!(s.recovered().len(), 1);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let p = temp_log("torn");
        {
            let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
            s.persist(0, 0, 1, &[1, 1]).unwrap();
            s.persist(0, 1, 1, &[2, 2]).unwrap();
        }
        // Chop the final record mid-frame: a crash mid-append.
        let full = std::fs::metadata(&p).unwrap().len();
        let f = OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(full - 5).unwrap();
        drop(f);
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        let rec = s.recovered();
        assert_eq!(rec.len(), 1, "only the intact record survives");
        assert_eq!(rec[0].chunk, 0);
        let one_record = 8 + (REC_HEADER_BYTES + 2 * 8) as u64;
        assert_eq!(
            std::fs::metadata(&p).unwrap().len(),
            full - one_record,
            "tail truncated to the last intact frame"
        );
        // The truncated log keeps appending cleanly.
        s.persist(0, 1, 2, &[3, 3]).unwrap();
        drop(s);
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        assert_eq!(s.recovered().len(), 2);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let p = temp_log("crc");
        {
            let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
            s.persist(0, 0, 1, &[1]).unwrap();
            s.persist(0, 1, 1, &[2]).unwrap();
        }
        // Flip a data byte inside the second record.
        let mut body = std::fs::read(&p).unwrap();
        let last = body.len() - 1;
        body[last] ^= 0xFF;
        std::fs::write(&p, &body).unwrap();
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        assert_eq!(s.recovered().len(), 1, "replay stops at the corrupt frame");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let p = temp_log("magic");
        std::fs::write(&p, b"not a chunk log").unwrap();
        assert!(LogChunkStore::open(&p, DurabilityPolicy::Writethrough).is_err());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn policy_names() {
        assert_eq!(DurabilityPolicy::None.name(), "none");
        assert_eq!(DurabilityPolicy::Writeback.name(), "writeback");
        assert_eq!(DurabilityPolicy::Writethrough.name(), "writethrough");
    }
}
