//! Per-node durable chunk storage (DESIGN.md §14).
//!
//! An optional persistence backend under the runtime executor: when
//! [`crate::ClusterConfig::durability`] selects a policy other than
//! [`DurabilityPolicy::None`], every node opens one [`ChunkStore`] and the
//! home-side directory machine routes dirty-chunk flushes through it
//! *before* the protocol acknowledges them (persist-before-ack — see
//! `protocol::home::Transient::AwaitPersist`).
//!
//! The shipped implementation, [`LogChunkStore`], is a single append-only
//! log-structured file per node plus an optional checkpoint sidecar:
//!
//! * each log record is an epoch-stamped full-chunk image, CRC-framed so a
//!   torn tail (a crash mid-append) is detected and truncated on reopen;
//! * replay on open scans the log once and keeps, per `(array, chunk)`,
//!   only the record with the highest persist epoch — later records always
//!   win, so recovery is the last acknowledged image of every chunk;
//! * `Writethrough` syncs the file after every record; `Writeback` buffers
//!   appends and syncs at [`ChunkStore::sync`] points (eviction-scan
//!   batches, epoch closes, shutdown);
//! * [`LogChunkStore::checkpoint`] snapshots the full live image into a
//!   sidecar (`node<N>.ckpt`) via write-to-temp + CRC frame + atomic
//!   rename, then (when compaction is enabled) drops the log prefix the
//!   *previous* checkpoint already covers — so at every instant the
//!   newest-but-one checkpoint plus the untruncated log still reconstructs
//!   every acked write, and a crash at any byte of the sequence is safe.
//!
//! The trait is deliberately tiny — the shape graft takes with its
//! `FjallStorage` layering: a storage seam under the runtime, not a fork of
//! the protocol. A different backend (an LSM tree, a block device, a
//! remote object store) slots in behind the same methods.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::msg::{ArrayId, ChunkId};

/// When (and whether) dirty-chunk flushes are persisted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// No durability: flushes are acknowledged straight from memory. The
    /// protocol behaves bit-identically to the pre-durability builds.
    #[default]
    None,
    /// Flushes append to the log through a write buffer; the buffer is
    /// synced at batch boundaries (eviction scans, epoch closes, shutdown).
    /// A crash may lose the unsynced tail — but never an already-synced
    /// record, and never the log's integrity (the torn tail is truncated
    /// on reopen).
    Writeback,
    /// Every flush is appended *and synced* before the protocol
    /// acknowledges it. Strongest guarantee, one `fsync` per flush.
    Writethrough,
}

impl DurabilityPolicy {
    /// Human-readable knob name (config errors, reports).
    pub fn name(&self) -> &'static str {
        match self {
            DurabilityPolicy::None => "none",
            DurabilityPolicy::Writeback => "writeback",
            DurabilityPolicy::Writethrough => "writethrough",
        }
    }
}

/// Checkpoint/compaction knobs for a [`LogChunkStore`], mirrored from
/// [`crate::DurabilityConfig`] (DESIGN.md §14, "Compaction and
/// checkpointing").
#[derive(Debug, Clone, Copy)]
pub struct CheckpointConfig {
    /// Take a checkpoint automatically once this many records have been
    /// persisted since the last one ([`ChunkStore::maybe_checkpoint`] is
    /// polled at the runtime's batch points). `None` disables periodic
    /// checkpoints; explicit [`ChunkStore::checkpoint`] calls still work.
    pub every_persists: Option<u64>,
    /// Truncate the compacted log prefix after a successful checkpoint.
    /// With this off, checkpoints are written but the log only grows.
    pub compact: bool,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self {
            every_persists: None,
            compact: true,
        }
    }
}

/// One chunk image recovered by log replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredChunk {
    /// Array the chunk belongs to (allocation order, so deterministic
    /// across a restart that allocates the same arrays in the same order).
    pub array: ArrayId,
    /// Global chunk index within the array.
    pub chunk: ChunkId,
    /// Persist epoch stamped on the winning record.
    pub epoch: u64,
    /// The chunk's words as of its last acknowledged flush.
    pub data: Vec<u64>,
}

/// Counters a store exposes for `NodeStats` overlay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended (one per persisted flush).
    pub persists: u64,
    /// Log records scanned during replay on open (including superseded
    /// ones). Bounded by compaction: after a checkpoint truncates the log,
    /// a reopen replays only the suffix appended since the previous
    /// checkpoint, not the store's full persist history.
    pub replayed_records: u64,
    /// Distinct chunks recovered on open (checkpoint image overlaid with
    /// the log suffix, latest epoch per chunk).
    pub recovered_chunks: u64,
    /// Current log size in bytes, including any unsynced write buffer.
    pub log_bytes: u64,
    /// Size of the newest durable checkpoint in bytes (0 when none).
    pub checkpoint_bytes: u64,
    /// Checkpoints completed by this incarnation (periodic + on-demand).
    pub compactions: u64,
    /// Log records dropped by compaction truncation (they were covered by
    /// a durable checkpoint).
    pub truncated_records: u64,
}

/// A per-node durable chunk store: the persistence seam under the runtime.
///
/// Implementations must be thread-safe — every runtime thread of the node
/// persists through the same store.
pub trait ChunkStore: Send + Sync {
    /// Durably record `data` as the image of `(array, chunk)` at persist
    /// epoch `epoch`. Whether the record is synced before return is the
    /// policy's choice; [`ChunkStore::sync`] forces it.
    fn persist(&self, array: ArrayId, chunk: ChunkId, epoch: u64, data: &[u64]) -> io::Result<()>;

    /// Flush buffered records to stable storage.
    fn sync(&self) -> io::Result<()>;

    /// The chunk images recovered when the store was opened, sorted by
    /// `(array, chunk)` for deterministic replay order.
    fn recovered(&self) -> Vec<RecoveredChunk>;

    /// Monotonic counters for stats overlay.
    fn stats(&self) -> StoreStats;

    /// Write a full-image checkpoint now (and compact the log when the
    /// store is configured to). Default: no-op for backends that do not
    /// checkpoint.
    fn checkpoint(&self) -> io::Result<()> {
        Ok(())
    }

    /// Checkpoint only if the periodic threshold has been reached; polled
    /// by the runtime at batch points (eviction scans, epoch closes).
    /// Returns whether a checkpoint ran.
    fn maybe_checkpoint(&self) -> io::Result<bool> {
        Ok(false)
    }
}

/// Log file magic: `b"DACS"` ("DArray Chunk Store").
const MAGIC: u32 = 0x5343_4144;
/// Checkpoint sidecar magic: `b"DACK"` ("DArray ChecKpoint").
const CKPT_MAGIC: u32 = 0x4B43_4144;
/// Format version; bumped on incompatible record changes.
const VERSION: u32 = 1;
/// Per-record fixed header: array(4) chunk(4) nwords(4) pad(4) epoch(8).
const REC_HEADER_BYTES: usize = 24;
/// Log file header: magic(4) version(4).
const LOG_HEADER_BYTES: u64 = 8;

/// CRC-32 (IEEE 802.3, reflected), table-less bitwise implementation — the
/// store must not pull in a checksum dependency.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

struct LogInner {
    file: File,
    /// Buffered bytes not yet written to the file (Writeback policy).
    buf: Vec<u8>,
    /// Bytes currently in the log file (buffer excluded).
    file_len: u64,
    /// Records currently in the log file or buffer.
    file_recs: u64,
    /// Newest full image of every chunk persisted so far (recovery image
    /// overlaid with post-open persists): the checkpoint source.
    live: HashMap<(ArrayId, ChunkId), (u64, Vec<u64>)>,
    /// Byte offset in the current log file up to which the *newest durable
    /// checkpoint* already covers every record. The next compaction may
    /// drop bytes `[LOG_HEADER_BYTES, ckpt_mark)` — and no more, so the
    /// newest-but-one checkpoint plus the log always reconstructs every
    /// acked write even if the newest checkpoint file is torn.
    ckpt_mark: u64,
    /// Records in the log before `ckpt_mark`.
    recs_before_mark: u64,
    /// Size of the newest checkpoint file (0 when none).
    ckpt_bytes: u64,
    /// Records persisted since the last checkpoint (periodic trigger).
    persists_since_ckpt: u64,
    /// Completed checkpoints this incarnation.
    compactions: u64,
    /// Log records dropped by compaction truncation.
    truncated_records: u64,
}

/// The shipped [`ChunkStore`]: one append-only CRC-framed log file plus a
/// checkpoint sidecar (`<log>.ckpt`, previous generation `<log>.ckpt.prev`).
pub struct LogChunkStore {
    path: PathBuf,
    sync_every_record: bool,
    ckpt_cfg: CheckpointConfig,
    inner: Mutex<LogInner>,
    /// Snapshot of the recovery image at open time; later persists append
    /// to the log but do not alter what *this* open recovered.
    recovered: Vec<RecoveredChunk>,
    persists: AtomicU64,
    replayed_records: u64,
}

/// Sidecar paths derived from the log path: `node0.log` →
/// `node0.ckpt` / `node0.ckpt.prev` / `node0.ckpt.tmp` / `node0.log.tmp`.
fn sidecar_paths(log: &Path) -> (PathBuf, PathBuf, PathBuf, PathBuf) {
    (
        log.with_extension("ckpt"),
        log.with_extension("ckpt.prev"),
        log.with_extension("ckpt.tmp"),
        log.with_extension("log.tmp"),
    )
}

/// Best-effort fsync of the directory holding `path`, so renames inside it
/// are durable before we truncate anything that depends on them.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(d) = File::open(parent) {
                let _ = d.sync_all();
            }
        }
    }
}

impl LogChunkStore {
    /// Open (or create) the log at `path` with default checkpoint knobs
    /// (no periodic checkpoints; explicit checkpoints compact the log).
    pub fn open(path: &Path, policy: DurabilityPolicy) -> io::Result<Self> {
        Self::open_with(path, policy, CheckpointConfig::default())
    }

    /// Open (or create) the log at `path`, replaying any existing state:
    /// the newest intact checkpoint sidecar first (a torn or CRC-corrupt
    /// one falls back to the previous generation, then to nothing), then
    /// the log records on top, latest epoch per chunk winning. A torn log
    /// tail — an incomplete or CRC-corrupt final record left by a crash
    /// mid-append — is truncated away; everything before it is kept.
    ///
    /// `policy` must not be [`DurabilityPolicy::None`] (config validation
    /// rejects that combination before a store is ever opened).
    pub fn open_with(
        path: &Path,
        policy: DurabilityPolicy,
        ckpt_cfg: CheckpointConfig,
    ) -> io::Result<Self> {
        debug_assert_ne!(policy, DurabilityPolicy::None);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let (ckpt, ckpt_prev, ckpt_tmp, log_tmp) = sidecar_paths(path);
        // A crash can leave half-written scratch files behind; they are
        // never part of the recovery contract.
        let _ = std::fs::remove_file(&ckpt_tmp);
        let _ = std::fs::remove_file(&log_tmp);

        // Checkpoint base: newest intact generation wins; a torn or
        // CRC-bad newest checkpoint is deleted (it has no value and must
        // not be rotated over the good previous generation later) and the
        // previous one is used instead. With neither, the log alone is
        // the recovery source — correct because compaction only ever
        // truncates records a durable checkpoint covers.
        let mut ckpt_bytes = 0u64;
        let mut index: HashMap<(ArrayId, ChunkId), (u64, Vec<u64>)> = HashMap::new();
        for p in [&ckpt, &ckpt_prev] {
            let Ok(bytes) = std::fs::read(p) else {
                continue;
            };
            match decode_checkpoint(&bytes) {
                Some(chunks) => {
                    ckpt_bytes = bytes.len() as u64;
                    for rec in chunks {
                        index.insert((rec.array, rec.chunk), (rec.epoch, rec.data));
                    }
                    break;
                }
                None => {
                    // Torn/corrupt generation: fall through to the older
                    // one (or to log-only recovery).
                    let _ = std::fs::remove_file(p);
                }
            }
        }

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut body = Vec::new();
        file.read_to_end(&mut body)?;

        let mut replayed_records = 0u64;
        let valid_len = if body.is_empty() {
            // Fresh log: write the file header.
            let mut hdr = Vec::with_capacity(8);
            hdr.extend_from_slice(&MAGIC.to_le_bytes());
            hdr.extend_from_slice(&VERSION.to_le_bytes());
            file.write_all(&hdr)?;
            8
        } else {
            if body.len() < 8
                || u32::from_le_bytes(body[0..4].try_into().unwrap()) != MAGIC
                || u32::from_le_bytes(body[4..8].try_into().unwrap()) != VERSION
            {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: not a darray chunk log (bad magic/version)",
                        path.display()
                    ),
                ));
            }
            let mut pos = 8usize;
            // Scan records until EOF or the first torn/corrupt frame.
            while let Some((consumed, array, chunk, epoch, data)) = decode_record(&body[pos..]) {
                let e = index.entry((array, chunk)).or_insert((0, Vec::new()));
                // Later records supersede earlier ones (and the checkpoint
                // base); epoch ties go to the later record too.
                if epoch >= e.0 || e.1.is_empty() {
                    *e = (epoch, data);
                }
                replayed_records += 1;
                pos += consumed;
            }
            pos
        };
        if valid_len < body.len().max(8) {
            // Torn tail: a crash interrupted the final append.
            file.set_len(valid_len as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;

        let mut recovered: Vec<RecoveredChunk> = index
            .iter()
            .map(|(&(array, chunk), &(epoch, ref data))| RecoveredChunk {
                array,
                chunk,
                epoch,
                data: data.clone(),
            })
            .collect();
        recovered.sort_by_key(|r| (r.array, r.chunk));
        Ok(Self {
            path: path.to_path_buf(),
            sync_every_record: policy == DurabilityPolicy::Writethrough,
            ckpt_cfg,
            inner: Mutex::new(LogInner {
                file,
                buf: Vec::new(),
                file_len: valid_len as u64,
                file_recs: replayed_records,
                live: index,
                // Conservative: claim the on-disk checkpoint covers none
                // of the current log, so the first compaction of this
                // incarnation truncates nothing. (The alternative —
                // trusting a persisted mark — would have to survive every
                // crash interleaving; claiming zero coverage is always
                // safe and costs one extra checkpoint interval of log.)
                ckpt_mark: LOG_HEADER_BYTES,
                recs_before_mark: 0,
                ckpt_bytes,
                persists_since_ckpt: 0,
                compactions: 0,
                truncated_records: 0,
            }),
            recovered,
            persists: AtomicU64::new(0),
            replayed_records,
        })
    }

    /// The log file path (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The checkpoint sidecar path (diagnostics, chaos tests).
    pub fn checkpoint_path(&self) -> PathBuf {
        sidecar_paths(&self.path).0
    }

    /// The crash-safe snapshot → rotate → rename → truncate sequence, with
    /// the inner lock held. Invariant at every byte: either the newest
    /// checkpoint file is intact, or the previous generation plus the
    /// (not-yet-truncated) log reconstructs every acked write.
    fn checkpoint_locked(&self, g: &mut LogInner) -> io::Result<()> {
        let (ckpt, ckpt_prev, ckpt_tmp, log_tmp) = sidecar_paths(&self.path);

        // Phase 1 — flush: every buffered record reaches the log before
        // the snapshot claims to cover it.
        if !g.buf.is_empty() {
            let buf = std::mem::take(&mut g.buf);
            g.file.write_all(&buf)?;
            g.file_len += buf.len() as u64;
        }
        g.file.sync_data()?;

        // Phase 2 — snapshot: full live image into the temp sidecar,
        // CRC-framed and synced. A crash here leaves only scrap (cleaned
        // at the next open).
        let payload = encode_checkpoint(&g.live);
        {
            let mut f = File::create(&ckpt_tmp)?;
            f.write_all(&payload)?;
            f.sync_all()?;
        }

        // Phase 3 — rotate + rename: the old checkpoint becomes the
        // previous generation, then the temp becomes the newest — both
        // atomic. A crash between them leaves no `ckpt` but an intact
        // `ckpt.prev` and an untruncated log: complete.
        if ckpt.exists() {
            std::fs::rename(&ckpt, &ckpt_prev)?;
        }
        std::fs::rename(&ckpt_tmp, &ckpt)?;
        sync_parent_dir(&self.path);
        g.ckpt_bytes = payload.len() as u64;

        // Phase 4 — truncate: drop the log prefix covered by the
        // *previous* checkpoint (lag-by-one: the newest checkpoint's
        // coverage is only reclaimed by the NEXT compaction, so a torn
        // newest checkpoint can always fall back to prev + log). The
        // rewrite goes through a temp + atomic rename: a crash mid-way
        // leaves the old log intact.
        if self.ckpt_cfg.compact && g.ckpt_mark > LOG_HEADER_BYTES {
            let dropped = g.recs_before_mark;
            g.file.seek(SeekFrom::Start(g.ckpt_mark))?;
            let mut tail = Vec::new();
            g.file.read_to_end(&mut tail)?;
            {
                let mut f = File::create(&log_tmp)?;
                f.write_all(&MAGIC.to_le_bytes())?;
                f.write_all(&VERSION.to_le_bytes())?;
                f.write_all(&tail)?;
                f.sync_all()?;
            }
            std::fs::rename(&log_tmp, &self.path)?;
            sync_parent_dir(&self.path);
            // The old handle still points at the unlinked inode; reopen.
            let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
            file.seek(SeekFrom::End(0))?;
            g.file = file;
            g.file_len = LOG_HEADER_BYTES + tail.len() as u64;
            g.file_recs -= dropped;
            g.truncated_records += dropped;
        } else {
            g.file.seek(SeekFrom::End(0))?;
        }
        // The checkpoint just written covers everything currently in the
        // log; the next compaction may truncate up to here.
        g.ckpt_mark = g.file_len;
        g.recs_before_mark = g.file_recs;
        g.compactions += 1;
        g.persists_since_ckpt = 0;
        Ok(())
    }
}

/// Encode one record: `[len u32][crc u32][header][data]`, where `len`
/// covers header + data and `crc` covers the same bytes `len` frames.
fn encode_record(array: ArrayId, chunk: ChunkId, epoch: u64, data: &[u64]) -> Vec<u8> {
    let body_len = REC_HEADER_BYTES + data.len() * 8;
    let mut out = Vec::with_capacity(8 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // crc placeholder
    out.extend_from_slice(&array.to_le_bytes());
    out.extend_from_slice(&chunk.to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // pad (8-byte data alignment)
    out.extend_from_slice(&epoch.to_le_bytes());
    for w in data {
        out.extend_from_slice(&w.to_le_bytes());
    }
    let crc = crc32(&out[8..]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decode the record at the front of `buf`. Returns
/// `(bytes_consumed, array, chunk, epoch, data)` or `None` on a torn or
/// corrupt frame.
fn decode_record(buf: &[u8]) -> Option<(usize, ArrayId, ChunkId, u64, Vec<u64>)> {
    if buf.len() < 8 {
        return None;
    }
    let body_len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if body_len < REC_HEADER_BYTES || buf.len() < 8 + body_len {
        return None; // torn tail
    }
    let body = &buf[8..8 + body_len];
    if crc32(body) != crc {
        return None; // corrupt frame (torn overwrite)
    }
    let array = u32::from_le_bytes(body[0..4].try_into().unwrap());
    let chunk = u32::from_le_bytes(body[4..8].try_into().unwrap());
    let nwords = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
    let epoch = u64::from_le_bytes(body[16..24].try_into().unwrap());
    if body_len != REC_HEADER_BYTES + nwords * 8 {
        return None;
    }
    let mut data = Vec::with_capacity(nwords);
    for i in 0..nwords {
        let off = REC_HEADER_BYTES + i * 8;
        data.push(u64::from_le_bytes(body[off..off + 8].try_into().unwrap()));
    }
    Some((8 + body_len, array, chunk, epoch, data))
}

/// Encode a full checkpoint image:
/// `[CKPT_MAGIC][VERSION][payload_len u32][crc u32][payload]` where the
/// payload is `[nchunks u32][pad u32]` followed by one log-record body
/// (header + data, no per-record frame) per chunk, sorted by
/// `(array, chunk)` for deterministic bytes. One CRC covers the whole
/// payload: a checkpoint is valid in full or not at all.
fn encode_checkpoint(live: &HashMap<(ArrayId, ChunkId), (u64, Vec<u64>)>) -> Vec<u8> {
    let mut keys: Vec<&(ArrayId, ChunkId)> = live.keys().collect();
    keys.sort();
    let mut payload = Vec::new();
    payload.extend_from_slice(&(keys.len() as u32).to_le_bytes());
    payload.extend_from_slice(&0u32.to_le_bytes()); // pad
    for &&(array, chunk) in &keys {
        let (epoch, data) = &live[&(array, chunk)];
        payload.extend_from_slice(&array.to_le_bytes());
        payload.extend_from_slice(&chunk.to_le_bytes());
        payload.extend_from_slice(&(data.len() as u32).to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes()); // pad
        payload.extend_from_slice(&epoch.to_le_bytes());
        for w in data {
            payload.extend_from_slice(&w.to_le_bytes());
        }
    }
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode a checkpoint file. `None` on any defect — short file, bad
/// magic/version, length mismatch, CRC mismatch, malformed chunk table —
/// never a partial image: the caller falls back to an older generation.
fn decode_checkpoint(bytes: &[u8]) -> Option<Vec<RecoveredChunk>> {
    if bytes.len() < 16
        || u32::from_le_bytes(bytes[0..4].try_into().unwrap()) != CKPT_MAGIC
        || u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != VERSION
    {
        return None;
    }
    let payload_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if bytes.len() != 16 + payload_len {
        return None; // torn (or trailing garbage): reject whole
    }
    let payload = &bytes[16..];
    if crc32(payload) != crc {
        return None;
    }
    if payload.len() < 8 {
        return None;
    }
    let nchunks = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
    let mut pos = 8usize;
    let mut out = Vec::with_capacity(nchunks);
    for _ in 0..nchunks {
        if payload.len() < pos + REC_HEADER_BYTES {
            return None;
        }
        let body = &payload[pos..];
        let array = u32::from_le_bytes(body[0..4].try_into().unwrap());
        let chunk = u32::from_le_bytes(body[4..8].try_into().unwrap());
        let nwords = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
        let epoch = u64::from_le_bytes(body[16..24].try_into().unwrap());
        if payload.len() < pos + REC_HEADER_BYTES + nwords * 8 {
            return None;
        }
        let mut data = Vec::with_capacity(nwords);
        for i in 0..nwords {
            let off = REC_HEADER_BYTES + i * 8;
            data.push(u64::from_le_bytes(body[off..off + 8].try_into().unwrap()));
        }
        out.push(RecoveredChunk {
            array,
            chunk,
            epoch,
            data,
        });
        pos += REC_HEADER_BYTES + nwords * 8;
    }
    if pos != payload.len() {
        return None;
    }
    Some(out)
}

impl ChunkStore for LogChunkStore {
    fn persist(&self, array: ArrayId, chunk: ChunkId, epoch: u64, data: &[u64]) -> io::Result<()> {
        let rec = encode_record(array, chunk, epoch, data);
        let mut g = self.inner.lock();
        if self.sync_every_record {
            g.buf.extend_from_slice(&rec);
            let buf = std::mem::take(&mut g.buf);
            g.file.write_all(&buf)?;
            g.file.sync_data()?;
            g.file_len += buf.len() as u64;
        } else {
            g.buf.extend_from_slice(&rec);
        }
        g.file_recs += 1;
        g.persists_since_ckpt += 1;
        // Keep the checkpoint source current: newest epoch per chunk.
        let e = g.live.entry((array, chunk)).or_insert((0, Vec::new()));
        if epoch >= e.0 || e.1.is_empty() {
            *e = (epoch, data.to_vec());
        }
        self.persists.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        let mut g = self.inner.lock();
        if !g.buf.is_empty() {
            let buf = std::mem::take(&mut g.buf);
            g.file.write_all(&buf)?;
            g.file_len += buf.len() as u64;
        }
        g.file.sync_data()
    }

    fn recovered(&self) -> Vec<RecoveredChunk> {
        self.recovered.clone()
    }

    fn stats(&self) -> StoreStats {
        let g = self.inner.lock();
        StoreStats {
            persists: self.persists.load(Ordering::Relaxed),
            replayed_records: self.replayed_records,
            recovered_chunks: self.recovered.len() as u64,
            log_bytes: g.file_len + g.buf.len() as u64,
            checkpoint_bytes: g.ckpt_bytes,
            compactions: g.compactions,
            truncated_records: g.truncated_records,
        }
    }

    fn checkpoint(&self) -> io::Result<()> {
        let mut g = self.inner.lock();
        self.checkpoint_locked(&mut g)
    }

    fn maybe_checkpoint(&self) -> io::Result<bool> {
        let mut g = self.inner.lock();
        match self.ckpt_cfg.every_persists {
            Some(k) if g.persists_since_ckpt >= k => {
                self.checkpoint_locked(&mut g)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "darray-store-test-{}-{name}.log",
            std::process::id()
        ));
        cleanup(&p);
        p
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_file(p);
        let (ckpt, prev, tmp, ltmp) = sidecar_paths(p);
        for f in [ckpt, prev, tmp, ltmp] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn persist_reopen_recovers_latest_image() {
        let p = temp_log("latest");
        {
            let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
            s.persist(0, 3, 1, &[1, 2, 3]).unwrap();
            s.persist(0, 3, 2, &[4, 5, 6]).unwrap();
            s.persist(1, 0, 1, &[9]).unwrap();
            assert_eq!(s.stats().persists, 3);
            assert!(s.recovered().is_empty(), "fresh log recovered nothing");
        }
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        let rec = s.recovered();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec[0].array, 0);
        assert_eq!(rec[0].chunk, 3);
        assert_eq!(rec[0].epoch, 2);
        assert_eq!(rec[0].data, vec![4, 5, 6], "later record wins");
        assert_eq!(rec[1].data, vec![9]);
        let st = s.stats();
        assert_eq!(st.replayed_records, 3);
        assert_eq!(st.recovered_chunks, 2);
        cleanup(&p);
    }

    #[test]
    fn writeback_buffers_until_sync() {
        let p = temp_log("writeback");
        {
            let s = LogChunkStore::open(&p, DurabilityPolicy::Writeback).unwrap();
            s.persist(0, 0, 1, &[7]).unwrap();
            // Unsynced: nothing has reached the file past the header yet.
            assert_eq!(std::fs::metadata(&p).unwrap().len(), 8, "header only");
            s.sync().unwrap();
            assert!(std::fs::metadata(&p).unwrap().len() > 8);
        }
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writeback).unwrap();
        assert_eq!(s.recovered().len(), 1);
        cleanup(&p);
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let p = temp_log("torn");
        {
            let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
            s.persist(0, 0, 1, &[1, 1]).unwrap();
            s.persist(0, 1, 1, &[2, 2]).unwrap();
        }
        // Chop the final record mid-frame: a crash mid-append.
        let full = std::fs::metadata(&p).unwrap().len();
        let f = OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(full - 5).unwrap();
        drop(f);
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        let rec = s.recovered();
        assert_eq!(rec.len(), 1, "only the intact record survives");
        assert_eq!(rec[0].chunk, 0);
        let one_record = 8 + (REC_HEADER_BYTES + 2 * 8) as u64;
        assert_eq!(
            std::fs::metadata(&p).unwrap().len(),
            full - one_record,
            "tail truncated to the last intact frame"
        );
        // The truncated log keeps appending cleanly.
        s.persist(0, 1, 2, &[3, 3]).unwrap();
        drop(s);
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        assert_eq!(s.recovered().len(), 2);
        cleanup(&p);
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let p = temp_log("crc");
        {
            let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
            s.persist(0, 0, 1, &[1]).unwrap();
            s.persist(0, 1, 1, &[2]).unwrap();
        }
        // Flip a data byte inside the second record.
        let mut body = std::fs::read(&p).unwrap();
        let last = body.len() - 1;
        body[last] ^= 0xFF;
        std::fs::write(&p, &body).unwrap();
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        assert_eq!(s.recovered().len(), 1, "replay stops at the corrupt frame");
        cleanup(&p);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let p = temp_log("magic");
        std::fs::write(&p, b"not a chunk log").unwrap();
        assert!(LogChunkStore::open(&p, DurabilityPolicy::Writethrough).is_err());
        cleanup(&p);
    }

    #[test]
    fn policy_names() {
        assert_eq!(DurabilityPolicy::None.name(), "none");
        assert_eq!(DurabilityPolicy::Writeback.name(), "writeback");
        assert_eq!(DurabilityPolicy::Writethrough.name(), "writethrough");
    }

    #[test]
    fn checkpoint_recovers_without_log_records() {
        let p = temp_log("ckpt-basic");
        {
            let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
            s.persist(0, 0, 1, &[10, 11]).unwrap();
            s.persist(0, 1, 1, &[20, 21]).unwrap();
            s.persist(0, 0, 2, &[12, 13]).unwrap();
            s.checkpoint().unwrap();
            let st = s.stats();
            assert_eq!(st.compactions, 1);
            assert!(st.checkpoint_bytes > 0);
        }
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        let rec = s.recovered();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec[0].data, vec![12, 13], "latest image in the checkpoint");
        assert_eq!(rec[1].data, vec![20, 21]);
        assert_eq!(
            s.stats().recovered_chunks,
            2,
            "checkpoint chunks count as recovered"
        );
        cleanup(&p);
    }

    #[test]
    fn second_compaction_truncates_the_log_prefix() {
        let p = temp_log("ckpt-truncate");
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        for e in 1..=10u64 {
            s.persist(0, 0, e, &[e]).unwrap();
        }
        s.checkpoint().unwrap();
        // Lag-by-one: the first checkpoint covers the 10 records but the
        // log keeps them until the *next* compaction (so a torn newest
        // checkpoint can always fall back to prev + log).
        assert_eq!(s.stats().truncated_records, 0);
        for e in 11..=15u64 {
            s.persist(0, 0, e, &[e]).unwrap();
        }
        s.checkpoint().unwrap();
        let st = s.stats();
        assert_eq!(st.compactions, 2);
        assert_eq!(st.truncated_records, 10, "first checkpoint's prefix drops");
        drop(s);
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        let st = s.stats();
        assert_eq!(
            st.replayed_records, 5,
            "replay is the post-truncation suffix, not the full history"
        );
        assert_eq!(s.recovered()[0].data, vec![15]);
        assert_eq!(s.recovered()[0].epoch, 15);
        cleanup(&p);
    }

    #[test]
    fn bounded_replay_after_compaction() {
        // The acceptance bound: reopen replays O(live chunks + suffix),
        // never O(total persists).
        let p = temp_log("ckpt-bounded");
        let s = LogChunkStore::open_with(
            &p,
            DurabilityPolicy::Writethrough,
            CheckpointConfig {
                every_persists: Some(8),
                compact: true,
            },
        )
        .unwrap();
        let mut persists = 0u64;
        for round in 0..50u64 {
            for c in 0..4u32 {
                s.persist(0, c, round + 1, &[round, c as u64]).unwrap();
                persists += 1;
            }
            s.maybe_checkpoint().unwrap();
        }
        assert_eq!(persists, 200);
        assert!(s.stats().compactions >= 20);
        assert!(s.stats().truncated_records > 150);
        drop(s);
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        let st = s.stats();
        let live = 4u64;
        let suffix_bound = 2 * 8; // two checkpoint intervals (lag-by-one)
        assert!(
            st.replayed_records <= live + suffix_bound,
            "replayed {} records for {} persists (bound {})",
            st.replayed_records,
            persists,
            live + suffix_bound
        );
        assert_eq!(st.recovered_chunks, live);
        assert_eq!(s.recovered()[0].epoch, 50);
        cleanup(&p);
    }

    #[test]
    fn torn_checkpoint_falls_back_to_previous_generation() {
        let p = temp_log("ckpt-torn");
        let (ckpt, prev, _, _) = sidecar_paths(&p);
        {
            let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
            for e in 1..=6u64 {
                s.persist(0, 0, e, &[e]).unwrap();
            }
            s.checkpoint().unwrap(); // generation 1
            s.persist(0, 1, 1, &[77]).unwrap();
            s.checkpoint().unwrap(); // generation 2; gen 1 rotates to .prev
            s.persist(0, 2, 1, &[88]).unwrap();
        }
        assert!(ckpt.exists() && prev.exists());
        // Tear the newest checkpoint mid-frame (simulating a non-atomic
        // rename or sector loss).
        let len = std::fs::metadata(&ckpt).unwrap().len();
        let f = OpenOptions::new().write(true).open(&ckpt).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        let rec = s.recovered();
        // prev (gen 1: chunk 0) + untruncated log suffix (chunk 1 record
        // survived compaction lag; chunk 2 record appended after) covers
        // everything.
        assert_eq!(rec.len(), 3, "fallback recovery is complete: {rec:?}");
        assert_eq!(rec[0].data, vec![6]);
        assert_eq!(rec[1].data, vec![77]);
        assert_eq!(rec[2].data, vec![88]);
        assert!(
            !ckpt.exists(),
            "the torn generation is deleted, not rotated"
        );
        cleanup(&p);
    }

    #[test]
    fn torn_checkpoint_with_no_previous_generation_uses_the_log() {
        let p = temp_log("ckpt-torn-nofallback");
        let (ckpt, prev, _, _) = sidecar_paths(&p);
        {
            let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
            s.persist(0, 0, 1, &[5]).unwrap();
            s.checkpoint().unwrap();
        }
        assert!(!prev.exists());
        std::fs::write(&ckpt, b"DACKgarbage").unwrap();
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        // Lag-by-one means the log still holds the record.
        assert_eq!(s.recovered().len(), 1);
        assert_eq!(s.recovered()[0].data, vec![5]);
        cleanup(&p);
    }

    #[test]
    fn stale_scratch_files_are_cleaned_at_open() {
        let p = temp_log("ckpt-scratch");
        let (_, _, ckpt_tmp, log_tmp) = sidecar_paths(&p);
        {
            let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
            s.persist(0, 0, 1, &[1]).unwrap();
        }
        std::fs::write(&ckpt_tmp, b"half a snapshot").unwrap();
        std::fs::write(&log_tmp, b"half a rewrite").unwrap();
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        assert_eq!(s.recovered().len(), 1);
        assert!(!ckpt_tmp.exists() && !log_tmp.exists());
        cleanup(&p);
    }

    #[test]
    fn maybe_checkpoint_honors_the_interval() {
        let p = temp_log("ckpt-interval");
        let s = LogChunkStore::open_with(
            &p,
            DurabilityPolicy::Writethrough,
            CheckpointConfig {
                every_persists: Some(3),
                compact: true,
            },
        )
        .unwrap();
        s.persist(0, 0, 1, &[1]).unwrap();
        assert!(!s.maybe_checkpoint().unwrap(), "below the interval");
        s.persist(0, 0, 2, &[2]).unwrap();
        s.persist(0, 0, 3, &[3]).unwrap();
        assert!(s.maybe_checkpoint().unwrap(), "interval reached");
        assert!(!s.maybe_checkpoint().unwrap(), "counter reset");
        assert_eq!(s.stats().compactions, 1);
        // Disabled interval never auto-fires.
        drop(s);
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        s.persist(0, 0, 4, &[4]).unwrap();
        assert!(!s.maybe_checkpoint().unwrap());
        cleanup(&p);
    }

    #[test]
    fn writeback_checkpoint_flushes_the_buffer_first() {
        let p = temp_log("ckpt-writeback");
        {
            let s = LogChunkStore::open(&p, DurabilityPolicy::Writeback).unwrap();
            s.persist(0, 0, 1, &[42]).unwrap();
            // Buffered only; the checkpoint must flush before snapshotting.
            s.checkpoint().unwrap();
        }
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writeback).unwrap();
        assert_eq!(s.recovered().len(), 1);
        assert_eq!(s.recovered()[0].data, vec![42]);
        cleanup(&p);
    }

    #[test]
    fn log_bytes_tracks_file_and_buffer() {
        let p = temp_log("ckpt-bytes");
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writeback).unwrap();
        assert_eq!(s.stats().log_bytes, 8, "fresh log is just the header");
        s.persist(0, 0, 1, &[1]).unwrap();
        let rec_len = (8 + REC_HEADER_BYTES + 8) as u64;
        assert_eq!(s.stats().log_bytes, 8 + rec_len, "buffered bytes counted");
        s.sync().unwrap();
        assert_eq!(s.stats().log_bytes, 8 + rec_len);
        assert_eq!(std::fs::metadata(&p).unwrap().len(), 8 + rec_len);
        cleanup(&p);
    }

    #[test]
    fn compaction_disabled_keeps_the_log_whole() {
        let p = temp_log("ckpt-nocompact");
        let s = LogChunkStore::open_with(
            &p,
            DurabilityPolicy::Writethrough,
            CheckpointConfig {
                every_persists: None,
                compact: false,
            },
        )
        .unwrap();
        for e in 1..=5u64 {
            s.persist(0, 0, e, &[e]).unwrap();
        }
        s.checkpoint().unwrap();
        s.checkpoint().unwrap();
        let st = s.stats();
        assert_eq!(st.compactions, 2);
        assert_eq!(st.truncated_records, 0, "no truncation with compact off");
        drop(s);
        let s = LogChunkStore::open(&p, DurabilityPolicy::Writethrough).unwrap();
        assert_eq!(s.stats().replayed_records, 5, "full log still replayed");
        cleanup(&p);
    }
}
