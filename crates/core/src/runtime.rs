//! The runtime layer (§3.1): one event loop per runtime thread, handling
//! local requests from application threads, coherence RPCs from remote
//! nodes, cache management with watermark eviction, prefetching, and the
//! home-side directory state machine of the extended protocol (Figure 9).
//!
//! ## Deferred drains
//!
//! Every transition that removes rights from application threads follows
//! Figure 5: set `delay_flag`, install the new state, wait for references
//! to drain, clear the flag. A naive runtime would block its message loop
//! while waiting; instead, drains whose reference count is still nonzero
//! are *deferred* — the runtime keeps serving messages and polls the
//! refcount between them. This keeps the runtime live even when an
//! application thread holds a Pin for a long time.

use std::sync::Arc;

use dsim::{Ctx, Mailbox};
use rdma_fabric::NodeId;

use crate::cache::CacheRegion;
use crate::comm::CommHandle;
use crate::dentry::{Dentry, LINE_HOME, LINE_NONE};
use crate::directory::{DirReq, ReqKind, Source, Transient};
use crate::lock::LockSource;
use crate::msg::{ArrayId, ChunkId, LocalKind, LocalReq, LockKind, Rpc, RtMsg};
use crate::op::OpId;
use crate::shared::{ArrayShared, ClusterShared};
use crate::state::{DirState, LocalState};
use crate::stats::NodeStats;
use crate::trace::trace_chunk;

/// "No operator" tag.
pub(crate) const NOTAG: u32 = u32::MAX;

/// Continuation run after a deferred drain completes.
enum Cont {
    /// A home-dentry drain gating a directory transition finished.
    HomeDrained,
    /// Invalidate a Shared copy and acknowledge to `reply_to`.
    InvalidateDone { line: u32, reply_to: NodeId },
    /// Write Dirty data back and invalidate (recall or eviction).
    WritebackInvalidate { line: u32 },
    /// Write Dirty data back but keep a Shared copy.
    DowngradeDone { line: u32 },
    /// Flush combined operands and invalidate (recall or eviction).
    FlushInvalidate { line: u32, op: u32 },
    /// Drop a Shared copy silently (eviction).
    EvictShared { line: u32 },
    /// After dropping a Shared copy, request an upgrade.
    UpgradeSend { line: u32, kind: UpgKind },
    /// After flushing an Operated copy, request different rights.
    FlushThenSend {
        line: u32,
        old_op: u32,
        kind: UpgKind,
    },
}

#[derive(Clone, Copy)]
enum UpgKind {
    Read,
    Write,
    Operate(u32),
}

struct Deferred {
    array: ArrayId,
    chunk: ChunkId,
    cont: Cont,
}

/// One runtime thread: owns a cache region and the protocol state of every
/// chunk with `chunk % runtime_threads == rt_idx`.
pub(crate) struct RuntimeThread {
    pub node: NodeId,
    pub rt_idx: usize,
    pub shared: Arc<ClusterShared>,
    pub comm: CommHandle,
    pub cache: Arc<CacheRegion>,
    pub mailbox: Mailbox<RtMsg>,
    deferred: Vec<Deferred>,
    ready: Vec<(ArrayId, ChunkId, Cont)>,
    /// Last read-miss chunk, for sequential-pattern prefetch detection.
    last_miss: Option<(ArrayId, ChunkId)>,
}

impl RuntimeThread {
    pub(crate) fn new(
        node: NodeId,
        rt_idx: usize,
        shared: Arc<ClusterShared>,
        comm: CommHandle,
        cache: Arc<CacheRegion>,
        mailbox: Mailbox<RtMsg>,
    ) -> Self {
        Self {
            node,
            rt_idx,
            shared,
            comm,
            cache,
            mailbox,
            deferred: Vec::new(),
            ready: Vec::new(),
            last_miss: None,
        }
    }

    fn stats(&self) -> &NodeStats {
        &self.shared.stats[self.node]
    }

    /// Word offset of a cacheline within the node's cache region.
    #[inline]
    fn line_off(&self, line: u32) -> usize {
        line as usize * self.shared.cfg.cache.line_words
    }

    /// The event loop (runs until `RtMsg::Shutdown`).
    pub(crate) fn run(mut self, ctx: &mut Ctx) {
        loop {
            let msg = if self.deferred.is_empty() {
                self.mailbox.recv(ctx)
            } else {
                match self.mailbox.try_recv(ctx) {
                    Some(m) => m,
                    None => {
                        ctx.spin_hint(50);
                        self.poll_deferred();
                        self.drain_ready(ctx);
                        continue;
                    }
                }
            };
            match msg {
                RtMsg::Shutdown => break,
                RtMsg::Local(req) => {
                    ctx.charge(self.shared.cfg.cost.local_req_handle_ns);
                    NodeStats::bump(&self.stats().local_handled);
                    self.handle_local(ctx, req);
                }
                RtMsg::Net { src, array, rpc } => {
                    ctx.charge(self.shared.cfg.cost.rpc_handle_ns);
                    NodeStats::bump(&self.stats().rpcs_handled);
                    self.handle_rpc(ctx, src, array, rpc);
                }
                RtMsg::Retry { array, chunk } => {
                    let arr = self.shared.array(array);
                    {
                        let mut de = arr.per_node[self.node].dir[chunk as usize].lock();
                        if de.transient == Transient::GraceWait {
                            de.transient = Transient::None;
                        }
                    }
                    self.dir_progress(ctx, array, chunk);
                }
                RtMsg::PeerDown { node } => self.handle_peer_down(ctx, node),
            }
            self.poll_deferred();
            self.drain_ready(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Drain machinery
    // ------------------------------------------------------------------

    /// Begin a Figure-5 drain towards `new_state`; `cont` runs once all
    /// references are gone (immediately, in the common case).
    fn start_drain(
        &mut self,
        arr: &ArrayShared,
        chunk: ChunkId,
        new_state: LocalState,
        tag: u32,
        cont: Cont,
    ) {
        let d = &arr.per_node[self.node].dentries[chunk as usize];
        d.begin_drain(new_state, tag);
        if d.drained() {
            d.end_drain();
            self.ready.push((arr.id, chunk, cont));
        } else {
            self.deferred.push(Deferred {
                array: arr.id,
                chunk,
                cont,
            });
        }
    }

    fn poll_deferred(&mut self) {
        let mut i = 0;
        while i < self.deferred.len() {
            let (aid, chunk) = (self.deferred[i].array, self.deferred[i].chunk);
            let arr = self.shared.array(aid);
            let d = &arr.per_node[self.node].dentries[chunk as usize];
            if d.drained() {
                d.end_drain();
                let df = self.deferred.swap_remove(i);
                self.ready.push((df.array, df.chunk, df.cont));
            } else {
                i += 1;
            }
        }
    }

    fn drain_ready(&mut self, ctx: &mut Ctx) {
        while let Some((aid, chunk, cont)) = self.ready.pop() {
            self.run_cont(ctx, aid, chunk, cont);
        }
    }

    fn run_cont(&mut self, ctx: &mut Ctx, aid: ArrayId, chunk: ChunkId, cont: Cont) {
        let arr = self.shared.array(aid);
        let home = arr.layout.home_of_chunk(chunk as usize);
        let words = arr.layout.chunk_size();
        let cost = self.shared.cfg.cost.clone();
        let d = &arr.per_node[self.node].dentries[chunk as usize];
        trace_chunk!(
            chunk,
            "t={} node{} CONT {}",
            ctx.now(),
            self.node,
            match &cont {
                Cont::HomeDrained => "HomeDrained",
                Cont::InvalidateDone { .. } => "InvalidateDone",
                Cont::WritebackInvalidate { .. } => "WritebackInvalidate",
                Cont::DowngradeDone { .. } => "DowngradeDone",
                Cont::FlushInvalidate { .. } => "FlushInvalidate",
                Cont::EvictShared { .. } => "EvictShared",
                Cont::UpgradeSend { .. } => "UpgradeSend",
                Cont::FlushThenSend { .. } => "FlushThenSend",
            }
        );
        match cont {
            Cont::HomeDrained => {
                {
                    let mut de = arr.per_node[self.node].dir[chunk as usize].lock();
                    debug_assert_eq!(de.transient, Transient::HomeDrain);
                    de.transient = Transient::None;
                    if let Some(req) = de.current.take() {
                        de.pending.push_front(req);
                    }
                }
                self.dir_progress(ctx, aid, chunk);
            }
            Cont::InvalidateDone { line, reply_to } => {
                d.set_line(LINE_NONE);
                self.cache.free(line);
                self.comm
                    .send(ctx, reply_to, aid, Rpc::InvalidateAck { chunk });
                NodeStats::bump(&self.stats().invalidations);
                d.wake_waiters(ctx);
            }
            Cont::WritebackInvalidate { line } => {
                let data = self.read_line(ctx, &arr, line, words, &cost);
                d.set_line(LINE_NONE);
                self.cache.free(line);
                let off = arr.layout.chunk_home_offset(chunk as usize);
                self.comm.write_send(
                    ctx,
                    home,
                    &arr.subarrays[home],
                    off,
                    data,
                    aid,
                    Rpc::WritebackNotice {
                        chunk,
                        downgrade: false,
                    },
                );
                NodeStats::bump(&self.stats().writebacks);
                d.wake_waiters(ctx);
            }
            Cont::DowngradeDone { line } => {
                let data = self.read_line(ctx, &arr, line, words, &cost);
                let off = arr.layout.chunk_home_offset(chunk as usize);
                self.comm.write_send(
                    ctx,
                    home,
                    &arr.subarrays[home],
                    off,
                    data,
                    aid,
                    Rpc::WritebackNotice {
                        chunk,
                        downgrade: true,
                    },
                );
                NodeStats::bump(&self.stats().writebacks);
                d.wake_waiters(ctx);
            }
            Cont::FlushInvalidate { line, op } => {
                let data = self.read_line(ctx, &arr, line, words, &cost);
                d.set_line(LINE_NONE);
                self.cache.free(line);
                self.comm
                    .send(ctx, home, aid, Rpc::OperandFlush { chunk, op, data });
                NodeStats::bump(&self.stats().operand_flushes);
                d.wake_waiters(ctx);
            }
            Cont::EvictShared { line } => {
                d.set_line(LINE_NONE);
                self.cache.free(line);
                self.comm.send(ctx, home, aid, Rpc::EvictNotice { chunk });
                d.wake_waiters(ctx);
            }
            Cont::UpgradeSend { line, kind } => {
                // If the home died while the drain was pending, an upgrade
                // request would never be answered: reset to Invalid instead
                // of stranding the chunk in a Filling state.
                if self.shared.is_peer_down(self.node, home) {
                    d.set_line(LINE_NONE);
                    self.cache.free(line);
                    d.promote_to(LocalState::Invalid, NOTAG);
                    d.wake_waiters(ctx);
                    return;
                }
                self.comm.send(ctx, home, aid, Rpc::EvictNotice { chunk });
                self.send_upgrade(ctx, &arr, chunk, home, line, kind);
            }
            Cont::FlushThenSend { line, old_op, kind } => {
                if self.shared.is_peer_down(self.node, home) {
                    // The combined operands have nowhere to go (fail-stop:
                    // data homed on a crashed node is lost).
                    d.set_line(LINE_NONE);
                    self.cache.free(line);
                    d.promote_to(LocalState::Invalid, NOTAG);
                    d.wake_waiters(ctx);
                    return;
                }
                let data = self.read_line(ctx, &arr, line, words, &cost);
                self.comm.send(
                    ctx,
                    home,
                    aid,
                    Rpc::OperandFlush {
                        chunk,
                        op: old_op,
                        data,
                    },
                );
                NodeStats::bump(&self.stats().operand_flushes);
                self.send_upgrade(ctx, &arr, chunk, home, line, kind);
            }
        }
    }

    fn send_upgrade(
        &mut self,
        ctx: &mut Ctx,
        arr: &ArrayShared,
        chunk: ChunkId,
        home: NodeId,
        line: u32,
        kind: UpgKind,
    ) {
        let dst_off = self.line_off(line) as u64;
        let rpc = match kind {
            UpgKind::Read => Rpc::ReadReq { chunk, dst_off },
            UpgKind::Write => Rpc::WriteReq { chunk, dst_off },
            UpgKind::Operate(op) => Rpc::OperateReq { chunk, op },
        };
        self.comm.send(ctx, home, arr.id, rpc);
    }

    fn read_line(
        &self,
        ctx: &mut Ctx,
        _arr: &ArrayShared,
        line: u32,
        words: usize,
        cost: &rdma_fabric::CostModel,
    ) -> Vec<u64> {
        let off = self.line_off(line);
        ctx.charge(cost.memcpy(words));
        self.shared.cache_regions[self.node].read_vec(off, words)
    }

    // ------------------------------------------------------------------
    // Local requests (interface layer -> runtime, Figure 2)
    // ------------------------------------------------------------------

    fn handle_local(&mut self, ctx: &mut Ctx, req: LocalReq) {
        let arr = self.shared.array(req.array);
        match req.kind {
            LocalKind::Read { chunk } => {
                self.local_data_req(ctx, &arr, chunk, ReqKind::Read, req.waiter)
            }
            LocalKind::Write { chunk } => {
                self.local_data_req(ctx, &arr, chunk, ReqKind::Write, req.waiter)
            }
            LocalKind::Operate { chunk, op } => {
                self.local_data_req(ctx, &arr, chunk, ReqKind::Operate(op), req.waiter)
            }
            LocalKind::LockAcquire { index, kind } => {
                self.local_lock_acquire(ctx, &arr, index, kind, req.waiter)
            }
            LocalKind::LockRelease { index, kind } => {
                self.local_lock_release(ctx, &arr, index, kind, req.waiter)
            }
        }
    }

    fn rights_satisfied(d: &Dentry, kind: ReqKind) -> bool {
        let s = d.state();
        match kind {
            ReqKind::Read => s.readable(),
            ReqKind::Write => s.writable(),
            ReqKind::Operate(op) => {
                s == LocalState::Exclusive || (s == LocalState::Operated && d.op_tag() == op)
            }
        }
    }

    fn local_data_req(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        kind: ReqKind,
        waiter: dsim::WaitCell,
    ) {
        let d = &arr.per_node[self.node].dentries[chunk as usize];
        // Re-check: the state may have changed between the app thread's miss
        // and us dequeuing the request.
        if !d.delay_set() && Self::rights_satisfied(d, kind) {
            waiter.notify(ctx);
            return;
        }
        if arr.layout.home_of_chunk(chunk as usize) == self.node {
            let source = Source::Local(waiter);
            self.home_request(ctx, arr.id, chunk, DirReq { source, kind });
        } else {
            self.cache_request(ctx, arr, chunk, kind, waiter);
        }
    }

    /// Local request for a *remote* chunk: the cache fill path.
    fn cache_request(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        kind: ReqKind,
        waiter: dsim::WaitCell,
    ) {
        let d = &arr.per_node[self.node].dentries[chunk as usize];
        // A deferred transition on this chunk is pending: queue behind it.
        if self
            .deferred
            .iter()
            .any(|df| df.array == arr.id && df.chunk == chunk)
        {
            d.push_waiter(waiter);
            return;
        }
        let home = arr.layout.home_of_chunk(chunk as usize);
        let state = d.state();
        // The chunk's home is dead: never start a fill that cannot complete.
        // If a fill is already in flight, the PeerDown reset (queued behind
        // this request) will wake the waiter; otherwise wake it now so the
        // application thread re-checks and observes `NodeUnavailable`.
        if self.shared.is_peer_down(self.node, home) {
            if state.in_flight() {
                d.push_waiter(waiter);
            } else {
                waiter.notify(ctx);
            }
            return;
        }
        if crate::trace::array_matches(arr.id) {
            trace_chunk!(
                chunk,
                "t={} node{} CACHE_REQ state={:?} kind={:?}",
                ctx.now(),
                self.node,
                state,
                kind
            );
        }
        match state {
            s if s.in_flight() => d.push_waiter(waiter),
            LocalState::Exclusive => waiter.notify(ctx),
            LocalState::Shared => match kind {
                ReqKind::Read => waiter.notify(ctx),
                ReqKind::Write => {
                    d.push_waiter(waiter);
                    let line = d.line();
                    self.start_drain(
                        arr,
                        chunk,
                        LocalState::FillingExclusive,
                        NOTAG,
                        Cont::UpgradeSend {
                            line,
                            kind: UpgKind::Write,
                        },
                    );
                }
                ReqKind::Operate(op) => {
                    d.push_waiter(waiter);
                    let line = d.line();
                    self.start_drain(
                        arr,
                        chunk,
                        LocalState::FillingOperated,
                        op,
                        Cont::UpgradeSend {
                            line,
                            kind: UpgKind::Operate(op),
                        },
                    );
                }
            },
            LocalState::Operated => {
                let tag = d.op_tag();
                if kind == ReqKind::Operate(tag) {
                    waiter.notify(ctx);
                    return;
                }
                d.push_waiter(waiter);
                let line = d.line();
                let (target, new_tag, upg) = match kind {
                    ReqKind::Read => (LocalState::FillingShared, NOTAG, UpgKind::Read),
                    ReqKind::Write => (LocalState::FillingExclusive, NOTAG, UpgKind::Write),
                    ReqKind::Operate(op) => (LocalState::FillingOperated, op, UpgKind::Operate(op)),
                };
                self.start_drain(
                    arr,
                    chunk,
                    target,
                    new_tag,
                    Cont::FlushThenSend {
                        line,
                        old_op: tag,
                        kind: upg,
                    },
                );
            }
            LocalState::Invalid => {
                d.push_waiter(waiter);
                let line = self.alloc_line(ctx, arr, chunk);
                d.set_line(line);
                let dst_off = self.line_off(line) as u64;
                match kind {
                    ReqKind::Read => {
                        d.set_transient(LocalState::FillingShared);
                        self.comm
                            .send(ctx, home, arr.id, Rpc::ReadReq { chunk, dst_off });
                        // Prefetch only when the miss continues a sequential
                        // pattern — random access (e.g. hash probing) would
                        // only churn the cache with doomed Shared copies.
                        let sequential = self.last_miss == Some((arr.id, chunk.wrapping_sub(1)))
                            || self.last_miss == Some((arr.id, chunk));
                        self.last_miss = Some((arr.id, chunk));
                        if sequential {
                            self.prefetch(ctx, arr, chunk);
                        }
                    }
                    ReqKind::Write => {
                        d.set_transient(LocalState::FillingExclusive);
                        self.comm
                            .send(ctx, home, arr.id, Rpc::WriteReq { chunk, dst_off });
                    }
                    ReqKind::Operate(op) => {
                        d.promote_to(LocalState::FillingOperated, op);
                        self.comm
                            .send(ctx, home, arr.id, Rpc::OperateReq { chunk, op });
                    }
                }
            }
            LocalState::FillingShared
            | LocalState::FillingExclusive
            | LocalState::FillingOperated => unreachable!("covered by in_flight arm"),
        }
    }

    /// Issue read prefetches for sequentially-next chunks (slow path only,
    /// §4.2 "Cache prefetch").
    fn prefetch(&mut self, ctx: &mut Ctx, arr: &Arc<ArrayShared>, chunk: ChunkId) {
        let k = self.shared.cfg.cache.prefetch_lines;
        if k == 0 {
            return;
        }
        let num_chunks = arr.layout.num_chunks() as ChunkId;
        for nc in chunk + 1..=(chunk + k as ChunkId) {
            if nc >= num_chunks {
                break;
            }
            if arr.layout.home_of_chunk(nc as usize) == self.node {
                continue;
            }
            if self.shared.rt_index(nc) != self.rt_idx {
                continue;
            }
            if self.cache.below_low() {
                break; // never force evictions on behalf of a prefetch
            }
            let d = &arr.per_node[self.node].dentries[nc as usize];
            if d.state() != LocalState::Invalid || d.delay_set() {
                continue;
            }
            let Some(line) = self.cache.alloc(arr.id, nc) else {
                break;
            };
            d.set_line(line);
            d.set_transient(LocalState::FillingShared);
            let dst_off = self.line_off(line) as u64;
            let home = arr.layout.home_of_chunk(nc as usize);
            self.comm
                .send(ctx, home, arr.id, Rpc::ReadReq { chunk: nc, dst_off });
            NodeStats::bump(&self.stats().prefetches);
        }
    }

    // ------------------------------------------------------------------
    // Cache allocation & eviction (Figure 7)
    // ------------------------------------------------------------------

    fn alloc_line(&mut self, ctx: &mut Ctx, arr: &Arc<ArrayShared>, chunk: ChunkId) -> u32 {
        let mut spins: u64 = 0;
        loop {
            if self.cache.below_low() {
                self.reclaim(ctx);
            }
            if let Some(line) = self.cache.alloc(arr.id, chunk) {
                ctx.charge(self.shared.cfg.cost.cacheline_alloc_ns);
                return line;
            }
            self.reclaim(ctx);
            if self.cache.free_count() == 0 {
                // Everything is pinned or in flight; wait for references to
                // drop (bounded, to turn misuse into a diagnostic).
                ctx.spin_hint(200);
                self.poll_deferred();
                self.drain_ready(ctx);
                spins += 1;
                assert!(
                    spins < 5_000_000,
                    "cache exhausted on node {}: all {} lines pinned or in flight",
                    self.node,
                    self.cache.capacity()
                );
            }
        }
    }

    /// Scan this thread's cache region from its scanning pointer, evicting
    /// idle lines until the free count exceeds the high watermark.
    fn reclaim(&mut self, ctx: &mut Ctx) {
        let cap = self.cache.capacity();
        let mut scanned = 0;
        while self.cache.below_high() && scanned < cap {
            scanned += 1;
            ctx.charge(self.shared.cfg.cost.evict_scan_ns);
            let line = self.cache.scan_next();
            let Some((aid, c)) = self.cache.owner(line) else {
                continue;
            };
            let arr = self.shared.array(aid);
            let d = &arr.per_node[self.node].dentries[c as usize];
            if d.delay_set() || d.refcnt() > 0 {
                continue; // accessed or mid-transition: not evictable
            }
            match d.state() {
                LocalState::Shared => {
                    self.start_drain(
                        &arr,
                        c,
                        LocalState::Invalid,
                        NOTAG,
                        Cont::EvictShared { line },
                    );
                    NodeStats::bump(&self.stats().evictions);
                }
                LocalState::Exclusive => {
                    self.start_drain(
                        &arr,
                        c,
                        LocalState::Invalid,
                        NOTAG,
                        Cont::WritebackInvalidate { line },
                    );
                    NodeStats::bump(&self.stats().evictions);
                }
                LocalState::Operated => {
                    let op = d.op_tag();
                    self.start_drain(
                        &arr,
                        c,
                        LocalState::Invalid,
                        NOTAG,
                        Cont::FlushInvalidate { line, op },
                    );
                    NodeStats::bump(&self.stats().evictions);
                }
                _ => {}
            }
        }
        self.drain_ready(ctx);
    }

    // ------------------------------------------------------------------
    // Remote protocol messages
    // ------------------------------------------------------------------

    fn handle_rpc(&mut self, ctx: &mut Ctx, src: NodeId, aid: ArrayId, rpc: Rpc) {
        // Fail-stop: once a peer is declared down its bookkeeping has been
        // settled by `handle_peer_down`; straggler messages from it (already
        // queued when the declaration landed) must not resurrect it.
        if src != self.node && self.shared.is_peer_down(self.node, src) {
            return;
        }
        let arr = self.shared.array(aid);
        match rpc {
            Rpc::ReadReq { chunk, dst_off } => self.home_request(
                ctx,
                aid,
                chunk,
                DirReq {
                    source: Source::Remote { node: src, dst_off },
                    kind: ReqKind::Read,
                },
            ),
            Rpc::WriteReq { chunk, dst_off } => self.home_request(
                ctx,
                aid,
                chunk,
                DirReq {
                    source: Source::Remote { node: src, dst_off },
                    kind: ReqKind::Write,
                },
            ),
            Rpc::OperateReq { chunk, op } => self.home_request(
                ctx,
                aid,
                chunk,
                DirReq {
                    source: Source::Remote {
                        node: src,
                        dst_off: 0,
                    },
                    kind: ReqKind::Operate(op),
                },
            ),
            Rpc::EvictNotice { chunk } => self.home_evict_notice(ctx, &arr, chunk, src),
            Rpc::WritebackNotice { chunk, downgrade } => {
                self.home_writeback(ctx, &arr, chunk, src, downgrade)
            }
            Rpc::OperandFlush { chunk, op, data } => {
                self.home_flush(ctx, &arr, chunk, src, op, data)
            }
            Rpc::FillShared { chunk } => self.fill_done(ctx, &arr, chunk, LocalState::Shared),
            Rpc::FillExclusive { chunk } => self.fill_done(ctx, &arr, chunk, LocalState::Exclusive),
            Rpc::GrantOperated { chunk, op } => self.grant_done(ctx, &arr, chunk, op),
            Rpc::InvalidateReq { chunk } => self.invalidate_req(ctx, &arr, chunk, src),
            Rpc::InvalidateAck { chunk } => self.home_inv_ack(ctx, &arr, chunk, src),
            Rpc::RecallDirty { chunk } => self.recall_dirty(ctx, &arr, chunk),
            Rpc::DowngradeDirty { chunk } => self.downgrade_dirty(ctx, &arr, chunk),
            Rpc::RecallOperated { chunk, op } => self.recall_operated(ctx, &arr, chunk, op),
            Rpc::LockAcquire { id, kind, .. } => self.rpc_lock_acquire(ctx, &arr, id, kind, src),
            Rpc::LockGrant { id, kind, .. } => self.rpc_lock_grant(ctx, &arr, id, kind),
            Rpc::LockRelease { id, kind, .. } => self.rpc_lock_release(ctx, &arr, id, kind),
        }
    }

    /// A fill completed: the data was RDMA-written into our cacheline before
    /// this notification (RC FIFO ordering).
    fn fill_done(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        new: LocalState,
    ) {
        let d = &arr.per_node[self.node].dentries[chunk as usize];
        let expected = match new {
            LocalState::Shared => LocalState::FillingShared,
            LocalState::Exclusive => LocalState::FillingExclusive,
            _ => unreachable!(),
        };
        debug_assert_eq!(d.state(), expected, "unexpected fill on chunk {chunk}");
        trace_chunk!(chunk, "t={} node{} FILL {:?}", ctx.now(), self.node, new);
        if d.state() == expected {
            d.promote_to(new, NOTAG);
            NodeStats::bump(&self.stats().fills);
            d.wake_waiters(ctx);
        }
    }

    /// An Operated grant arrived: initialize the operand buffer to the
    /// operator's identity (no data travels for grants).
    fn grant_done(&mut self, ctx: &mut Ctx, arr: &Arc<ArrayShared>, chunk: ChunkId, op: u32) {
        let d = &arr.per_node[self.node].dentries[chunk as usize];
        trace_chunk!(chunk, "t={} node{} GRANT op={}", ctx.now(), self.node, op);
        debug_assert_eq!(d.state(), LocalState::FillingOperated);
        let words = arr.layout.chunk_size();
        let line = d.line();
        let identity = self.shared.registry.identity(OpId(op));
        self.shared.cache_regions[self.node].fill(self.line_off(line), words, identity);
        ctx.charge(self.shared.cfg.cost.memcpy(words));
        d.promote_to(LocalState::Operated, op);
        NodeStats::bump(&self.stats().fills);
        d.wake_waiters(ctx);
    }

    fn invalidate_req(
        &mut self,
        _ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        src: NodeId,
    ) {
        let d = &arr.per_node[self.node].dentries[chunk as usize];
        if d.state() == LocalState::Shared && !d.delay_set() {
            let line = d.line();
            self.start_drain(
                arr,
                chunk,
                LocalState::Invalid,
                NOTAG,
                Cont::InvalidateDone {
                    line,
                    reply_to: src,
                },
            );
        }
        // else: our copy is already gone or on its way out — an EvictNotice
        // (or upgrade drop) from us is already in flight on the same FIFO
        // link and will satisfy the home's ack set. Sending an extra ack
        // here would be a *stale* ack that could corrupt a later
        // invalidation epoch.
    }

    fn recall_dirty(&mut self, _ctx: &mut Ctx, arr: &Arc<ArrayShared>, chunk: ChunkId) {
        let d = &arr.per_node[self.node].dentries[chunk as usize];
        if d.state() == LocalState::Exclusive && !d.delay_set() {
            let line = d.line();
            self.start_drain(
                arr,
                chunk,
                LocalState::Invalid,
                NOTAG,
                Cont::WritebackInvalidate { line },
            );
        }
        // else: a voluntary writeback is already in flight (FIFO guarantees
        // the home sees it).
    }

    fn downgrade_dirty(&mut self, _ctx: &mut Ctx, arr: &Arc<ArrayShared>, chunk: ChunkId) {
        let d = &arr.per_node[self.node].dentries[chunk as usize];
        if d.state() == LocalState::Exclusive && !d.delay_set() {
            let line = d.line();
            self.start_drain(
                arr,
                chunk,
                LocalState::Shared,
                NOTAG,
                Cont::DowngradeDone { line },
            );
        }
    }

    fn recall_operated(&mut self, _ctx: &mut Ctx, arr: &Arc<ArrayShared>, chunk: ChunkId, op: u32) {
        let d = &arr.per_node[self.node].dentries[chunk as usize];
        if d.state() == LocalState::Operated && !d.delay_set() && d.op_tag() == op {
            let line = d.line();
            self.start_drain(
                arr,
                chunk,
                LocalState::Invalid,
                NOTAG,
                Cont::FlushInvalidate { line, op },
            );
        }
        // else: nothing to flush — a voluntary flush of this operator is
        // already in flight on the same FIFO link (eviction or operator
        // change always flushes before leaving the Operated state) and will
        // satisfy the home's flush set. Replying with an extra empty flush
        // would be a *stale* message that could remove us from a LATER
        // Operated epoch's sharer set (observed in property testing as a
        // lost operand).
        let _ = op;
    }

    // ------------------------------------------------------------------
    // Home-side directory engine
    // ------------------------------------------------------------------

    fn home_request(&mut self, ctx: &mut Ctx, aid: ArrayId, chunk: ChunkId, req: DirReq) {
        {
            let arr = self.shared.array(aid);
            let mut de = arr.per_node[self.node].dir[chunk as usize].lock();
            de.pending.push_back(req);
        }
        self.dir_progress(ctx, aid, chunk);
    }

    fn dir_progress(&mut self, ctx: &mut Ctx, aid: ArrayId, chunk: ChunkId) {
        let arr = self.shared.array(aid);
        loop {
            let req = {
                let mut de = arr.per_node[self.node].dir[chunk as usize].lock();
                if !de.transient.is_none() {
                    return;
                }
                match de.pending.pop_front() {
                    Some(r) => r,
                    None => return,
                }
            };
            if !self.service(ctx, &arr, chunk, req) {
                return;
            }
        }
    }

    /// Service one directory request. Returns true if the chunk is still
    /// stable (keep servicing the queue), false if a transient began.
    fn service(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        req: DirReq,
    ) -> bool {
        let me = self.node;
        ctx.charge(self.shared.cfg.cost.dir_update_ns);
        let mut de = arr.per_node[me].dir[chunk as usize].lock();
        // Minimum-hold grace: if servicing this request would revoke rights
        // granted moments ago, let the grantee use them first. Without this,
        // a contended chunk's recall can arrive at the grantee before its
        // application thread performs a single access (observed as a write
        // livelock on a falsely-shared flag chunk).
        let grace = self.shared.cfg.grant_grace_ns;
        let revokes = match (&de.state, req.kind) {
            (DirState::Unshared, _) => false,
            (DirState::Shared { .. }, ReqKind::Read) => false,
            (DirState::Shared { sharers }, _) => !sharers.is_empty(),
            (DirState::Dirty { .. }, _) => true,
            (DirState::Operated { op, .. }, ReqKind::Operate(o2)) if op.0 == o2 => false,
            (DirState::Operated { sharers, .. }, _) => !sharers.is_empty(),
        };
        if revokes && grace > 0 && ctx.now() < de.granted_at + grace {
            let resume_at = de.granted_at + grace;
            de.pending.push_front(req);
            de.transient = Transient::GraceWait;
            drop(de);
            let mb = self.shared.rt_mailbox(self.node, chunk).clone();
            mb.send_at(
                ctx,
                RtMsg::Retry {
                    array: arr.id,
                    chunk,
                },
                resume_at,
            );
            return false;
        }
        if crate::trace::array_matches(arr.id) {
            trace_chunk!(
                chunk,
                "t={} node{} SERVICE state={:?} kind={:?} src={}",
                ctx.now(),
                me,
                de.state,
                req.kind,
                match &req.source {
                    crate::directory::Source::Local(_) => "local".to_string(),
                    crate::directory::Source::Remote { node, .. } => format!("remote{node}"),
                }
            );
        }
        let d = &arr.per_node[me].dentries[chunk as usize];
        match (&de.state, req.kind) {
            // ---------------- Read ----------------
            (DirState::Unshared, ReqKind::Read) => match req.source {
                Source::Local(w) => {
                    w.notify(ctx);
                    true
                }
                Source::Remote { node, dst_off } => {
                    de.state = DirState::Shared {
                        sharers: vec![node],
                    };
                    de.transient = Transient::HomeDrain;
                    de.current = Some(DirReq {
                        source: Source::Remote { node, dst_off },
                        kind: ReqKind::Read,
                    });
                    drop(de);
                    self.start_drain(arr, chunk, LocalState::Shared, NOTAG, Cont::HomeDrained);
                    false
                }
            },
            (DirState::Shared { .. }, ReqKind::Read) => match req.source {
                Source::Local(w) => {
                    w.notify(ctx);
                    true
                }
                Source::Remote { node, dst_off } => {
                    de.add_sharer(node);
                    de.granted_at = ctx.now();
                    drop(de);
                    self.send_fill(ctx, arr, chunk, node, dst_off, false);
                    true
                }
            },
            (DirState::Dirty { owner }, ReqKind::Read) => {
                let owner = *owner;
                de.transient = Transient::AwaitWriteback { from: owner };
                de.current = Some(req);
                drop(de);
                self.comm
                    .send(ctx, owner, arr.id, Rpc::DowngradeDirty { chunk });
                false
            }

            // ---------------- Write ----------------
            (DirState::Unshared, ReqKind::Write) => match req.source {
                Source::Local(w) => {
                    de.granted_at = ctx.now();
                    w.notify(ctx);
                    true
                }
                Source::Remote { node, dst_off } => {
                    de.state = DirState::Dirty { owner: node };
                    de.transient = Transient::HomeDrain;
                    de.current = Some(DirReq {
                        source: Source::Remote { node, dst_off },
                        kind: ReqKind::Write,
                    });
                    drop(de);
                    self.start_drain(arr, chunk, LocalState::Invalid, NOTAG, Cont::HomeDrained);
                    false
                }
            },
            (DirState::Shared { sharers }, ReqKind::Write) if sharers.is_empty() => {
                match req.source {
                    Source::Local(w) => {
                        // Figure 6: R -> R/W/O at home is a pure promotion.
                        de.state = DirState::Unshared;
                        de.granted_at = ctx.now();
                        d.promote_to(LocalState::Exclusive, NOTAG);
                        w.notify(ctx);
                        true
                    }
                    Source::Remote { node, dst_off } => {
                        de.state = DirState::Dirty { owner: node };
                        de.transient = Transient::HomeDrain;
                        de.current = Some(DirReq {
                            source: Source::Remote { node, dst_off },
                            kind: ReqKind::Write,
                        });
                        drop(de);
                        self.start_drain(arr, chunk, LocalState::Invalid, NOTAG, Cont::HomeDrained);
                        false
                    }
                }
            }
            (DirState::Shared { sharers }, ReqKind::Write) => {
                let targets = sharers.clone();
                de.transient = Transient::AwaitInvAcks {
                    waiting: targets.clone(),
                };
                de.current = Some(req);
                drop(de);
                for n in targets {
                    self.comm.send(ctx, n, arr.id, Rpc::InvalidateReq { chunk });
                }
                false
            }
            (DirState::Dirty { owner }, ReqKind::Write) => {
                let owner = *owner;
                if let Source::Remote { node, dst_off } = req.source {
                    if node == owner {
                        // Resume after our own HomeDrain: grant the fill.
                        de.granted_at = ctx.now();
                        drop(de);
                        self.send_fill(ctx, arr, chunk, node, dst_off, true);
                        return true;
                    }
                    de.transient = Transient::AwaitWriteback { from: owner };
                    de.current = Some(DirReq {
                        source: Source::Remote { node, dst_off },
                        kind: ReqKind::Write,
                    });
                    drop(de);
                    self.comm
                        .send(ctx, owner, arr.id, Rpc::RecallDirty { chunk });
                    false
                } else {
                    de.transient = Transient::AwaitWriteback { from: owner };
                    de.current = Some(req);
                    drop(de);
                    self.comm
                        .send(ctx, owner, arr.id, Rpc::RecallDirty { chunk });
                    false
                }
            }

            // ---------------- Operate ----------------
            (DirState::Operated { op, .. }, ReqKind::Operate(op2)) if op.0 == op2 => {
                match req.source {
                    Source::Local(w) => {
                        w.notify(ctx);
                        true
                    }
                    Source::Remote { node, .. } => {
                        de.add_sharer(node);
                        de.granted_at = ctx.now();
                        drop(de);
                        self.comm
                            .send(ctx, node, arr.id, Rpc::GrantOperated { chunk, op: op2 });
                        true
                    }
                }
            }
            (DirState::Unshared, ReqKind::Operate(op)) => match req.source {
                Source::Local(w) => {
                    // Exclusive subsumes Operate at home.
                    w.notify(ctx);
                    true
                }
                Source::Remote { node, dst_off } => {
                    de.state = DirState::Operated {
                        op: OpId(op),
                        sharers: vec![node],
                    };
                    de.transient = Transient::HomeDrain;
                    de.current = Some(DirReq {
                        source: Source::Remote { node, dst_off },
                        kind: ReqKind::Operate(op),
                    });
                    drop(de);
                    self.start_drain(arr, chunk, LocalState::Operated, op, Cont::HomeDrained);
                    false
                }
            },
            (DirState::Shared { sharers }, ReqKind::Operate(op)) if sharers.is_empty() => {
                let init_sharers = match &req.source {
                    Source::Local(_) => vec![],
                    Source::Remote { node, .. } => vec![*node],
                };
                de.state = DirState::Operated {
                    op: OpId(op),
                    sharers: init_sharers,
                };
                de.transient = Transient::HomeDrain;
                de.current = Some(req);
                drop(de);
                self.start_drain(arr, chunk, LocalState::Operated, op, Cont::HomeDrained);
                false
            }
            (DirState::Shared { sharers }, ReqKind::Operate(_)) => {
                let targets = sharers.clone();
                de.transient = Transient::AwaitInvAcks {
                    waiting: targets.clone(),
                };
                de.current = Some(req);
                drop(de);
                for n in targets {
                    self.comm.send(ctx, n, arr.id, Rpc::InvalidateReq { chunk });
                }
                false
            }
            (DirState::Dirty { owner }, ReqKind::Operate(_)) => {
                let owner = *owner;
                de.transient = Transient::AwaitWriteback { from: owner };
                de.current = Some(req);
                drop(de);
                self.comm
                    .send(ctx, owner, arr.id, Rpc::RecallDirty { chunk });
                false
            }
            // Operated chunk asked for Read/Write/different op: recall all
            // operand caches and reduce, then retry from Unshared.
            (DirState::Operated { op, sharers }, _) => {
                let op0 = op.0;
                let targets = sharers.clone();
                if targets.is_empty() {
                    // Only the home node was operating: Figure 6 promotion.
                    de.state = DirState::Unshared;
                    d.promote_to(LocalState::Exclusive, NOTAG);
                    de.pending.push_front(req);
                    true
                } else {
                    de.transient = Transient::AwaitFlushes {
                        op: op0,
                        waiting: targets.clone(),
                    };
                    de.current = Some(req);
                    drop(de);
                    for n in targets {
                        self.comm
                            .send(ctx, n, arr.id, Rpc::RecallOperated { chunk, op: op0 });
                    }
                    false
                }
            }
        }
    }

    /// RDMA-write the chunk's data into the requester's cacheline and notify.
    fn send_fill(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        node: NodeId,
        dst_off: u64,
        exclusive: bool,
    ) {
        let words = arr.layout.chunk_size();
        let off = arr.layout.chunk_home_offset(chunk as usize);
        let data = arr.subarrays[self.node].read_vec(off, words);
        let rpc = if exclusive {
            Rpc::FillExclusive { chunk }
        } else {
            Rpc::FillShared { chunk }
        };
        self.comm.write_send(
            ctx,
            node,
            &self.shared.cache_regions[node],
            dst_off as usize,
            data,
            arr.id,
            rpc,
        );
    }

    fn finish_transient(&mut self, ctx: &mut Ctx, arr: &Arc<ArrayShared>, chunk: ChunkId) {
        {
            let mut de = arr.per_node[self.node].dir[chunk as usize].lock();
            de.transient = Transient::None;
            if let Some(cur) = de.current.take() {
                de.pending.push_front(cur);
            }
        }
        self.dir_progress(ctx, arr.id, chunk);
    }

    fn home_inv_ack(&mut self, ctx: &mut Ctx, arr: &Arc<ArrayShared>, chunk: ChunkId, src: NodeId) {
        let finished = {
            let mut de = arr.per_node[self.node].dir[chunk as usize].lock();
            if matches!(de.transient, Transient::AwaitInvAcks { .. }) {
                de.remove_sharer(src);
                de.transient_remove(src)
            } else {
                false // stale ack (an EvictNotice already accounted for it)
            }
        };
        if finished {
            self.finish_transient(ctx, arr, chunk);
        }
    }

    fn home_evict_notice(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        src: NodeId,
    ) {
        let me = self.node;
        let mut de = arr.per_node[me].dir[chunk as usize].lock();
        match &de.transient {
            Transient::AwaitInvAcks { .. } => {
                de.remove_sharer(src);
                if de.transient_remove(src) {
                    drop(de);
                    self.finish_transient(ctx, arr, chunk);
                }
            }
            _ => {
                if matches!(de.state, DirState::Shared { .. }) && de.remove_sharer(src) {
                    // Last sharer gone: home regains exclusivity
                    // (Figure 6 promotion).
                    de.state = DirState::Unshared;
                    arr.per_node[me].dentries[chunk as usize]
                        .promote_to(LocalState::Exclusive, NOTAG);
                }
            }
        }
    }

    fn home_writeback(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        src: NodeId,
        downgrade: bool,
    ) {
        let me = self.node;
        let mut de = arr.per_node[me].dir[chunk as usize].lock();
        let d = &arr.per_node[me].dentries[chunk as usize];
        let expected = matches!(&de.transient, Transient::AwaitWriteback { from } if *from == src);
        if expected {
            if downgrade {
                de.state = DirState::Shared { sharers: vec![src] };
                d.promote_to(LocalState::Shared, NOTAG);
            } else {
                de.state = DirState::Unshared;
                d.promote_to(LocalState::Exclusive, NOTAG);
            }
            drop(de);
            self.finish_transient(ctx, arr, chunk);
        } else if matches!(de.state, DirState::Dirty { owner } if owner == src) {
            // Voluntary eviction writeback.
            de.state = DirState::Unshared;
            d.promote_to(LocalState::Exclusive, NOTAG);
        }
        // else: stale notice (e.g. the transient already completed via a
        // different path); the data write is idempotent.
    }

    fn home_flush(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        src: NodeId,
        op: u32,
        data: Vec<u64>,
    ) {
        let me = self.node;
        if crate::trace::traced_chunk() == Some(chunk) {
            let de = arr.per_node[me].dir[chunk as usize].lock();
            trace_chunk!(
                chunk,
                "t={} node{} FLUSH from {} op={} empty={} transient={:?} state={:?}",
                ctx.now(),
                me,
                src,
                op,
                data.is_empty(),
                de.transient,
                de.state
            );
        }
        // Reduce first — operand data must never be lost. Concurrent local
        // applies CAS into the same words, so the reduction CASes too.
        if !data.is_empty() {
            let words = arr.layout.chunk_size();
            debug_assert_eq!(data.len(), words);
            let off = arr.layout.chunk_home_offset(chunk as usize);
            let sub = &arr.subarrays[me];
            let reg = &self.shared.registry;
            let opid = OpId(op);
            let identity = reg.identity(opid);
            let cost = &self.shared.cfg.cost;
            let mut applied = 0u64;
            for (i, &operand) in data.iter().enumerate() {
                if operand == identity {
                    continue; // common case: untouched element
                }
                applied += 1;
                loop {
                    let cur = sub.load(off + i);
                    let new = reg.combine(opid, cur, operand);
                    if sub.compare_exchange(off + i, cur, new).is_ok() {
                        break;
                    }
                }
            }
            ctx.charge(cost.memcpy(words) + applied * cost.op_apply_ns);
        }
        let mut de = arr.per_node[me].dir[chunk as usize].lock();
        let d = &arr.per_node[me].dentries[chunk as usize];
        match &de.transient {
            // Epoch check: only a flush of the operator being recalled may
            // shrink the waiting set — a crossing flush of an older operator
            // must not be miscounted against the current epoch.
            Transient::AwaitFlushes { op: top, .. } if *top == op => {
                de.remove_sharer(src);
                if de.transient_remove(src) {
                    de.state = DirState::Unshared;
                    d.promote_to(LocalState::Exclusive, NOTAG);
                    drop(de);
                    self.finish_transient(ctx, arr, chunk);
                }
            }
            _ => {
                if matches!(&de.state, DirState::Operated { op: cur, .. } if cur.0 == op) {
                    // Voluntary eviction flush of the current epoch: the home
                    // keeps the Operated state (it may still be combining
                    // locally); the next Read/Write promotes lazily.
                    de.remove_sharer(src);
                }
                // Flushes of other epochs were already reduced above; their
                // bookkeeping was settled when their epoch closed.
            }
        }
    }

    // ------------------------------------------------------------------
    // Distributed locks
    // ------------------------------------------------------------------

    fn deliver_grant(
        &mut self,
        ctx: &mut Ctx,
        arr: &ArrayShared,
        id: u64,
        kind: LockKind,
        src: LockSource,
    ) {
        NodeStats::bump(&self.stats().locks_granted);
        match src {
            LockSource::Local(w) => w.notify(ctx),
            LockSource::Remote(n) => {
                let chunk = (id as usize / arr.layout.chunk_size()) as ChunkId;
                self.comm
                    .send(ctx, n, arr.id, Rpc::LockGrant { chunk, id, kind });
            }
        }
    }

    fn local_lock_acquire(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        index: u64,
        kind: LockKind,
        waiter: dsim::WaitCell,
    ) {
        let home = arr.layout.home_of(index as usize);
        if home == self.node {
            let granted = arr.per_node[self.node].lock_table.lock().acquire(
                index,
                kind,
                LockSource::Local(waiter),
            );
            if let Some(src) = granted {
                self.deliver_grant(ctx, arr, index, kind, src);
            }
        } else if self.shared.is_peer_down(self.node, home) {
            // The lock's home is dead: wake the waiter so the application
            // thread re-checks and observes `NodeUnavailable`.
            waiter.notify(ctx);
        } else {
            arr.per_node[self.node]
                .lock_waiters
                .lock()
                .entry((index, kind))
                .or_default()
                .push_back(waiter);
            let chunk = (index as usize / arr.layout.chunk_size()) as ChunkId;
            self.comm.send(
                ctx,
                home,
                arr.id,
                Rpc::LockAcquire {
                    chunk,
                    id: index,
                    kind,
                },
            );
        }
    }

    fn local_lock_release(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        index: u64,
        kind: LockKind,
        waiter: dsim::WaitCell,
    ) {
        let home = arr.layout.home_of(index as usize);
        if home == self.node {
            let woken = arr.per_node[self.node]
                .lock_table
                .lock()
                .release(index, kind);
            for (src, k) in woken {
                self.deliver_grant(ctx, arr, index, k, src);
            }
        } else {
            let chunk = (index as usize / arr.layout.chunk_size()) as ChunkId;
            self.comm.send(
                ctx,
                home,
                arr.id,
                Rpc::LockRelease {
                    chunk,
                    id: index,
                    kind,
                },
            );
        }
        // Releases complete locally; the wire release is one-way.
        waiter.notify(ctx);
    }

    fn rpc_lock_acquire(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        id: u64,
        kind: LockKind,
        src: NodeId,
    ) {
        let granted =
            arr.per_node[self.node]
                .lock_table
                .lock()
                .acquire(id, kind, LockSource::Remote(src));
        if let Some(s) = granted {
            self.deliver_grant(ctx, arr, id, kind, s);
        }
    }

    fn rpc_lock_release(&mut self, ctx: &mut Ctx, arr: &Arc<ArrayShared>, id: u64, kind: LockKind) {
        let woken = arr.per_node[self.node].lock_table.lock().release(id, kind);
        for (src, k) in woken {
            self.deliver_grant(ctx, arr, id, k, src);
        }
    }

    fn rpc_lock_grant(&mut self, ctx: &mut Ctx, arr: &Arc<ArrayShared>, id: u64, kind: LockKind) {
        let w = {
            let mut lw = arr.per_node[self.node].lock_waiters.lock();
            let popped = lw.get_mut(&(id, kind)).and_then(|q| q.pop_front());
            if lw.get(&(id, kind)).is_some_and(|q| q.is_empty()) {
                lw.remove(&(id, kind));
            }
            match popped {
                Some(w) => w,
                None => {
                    drop(lw);
                    self.lock_grant_invariant_violated(arr, id, kind);
                }
            }
        };
        w.notify(ctx);
    }

    /// A `LockGrant` arrived for an element no local thread is waiting on.
    /// This is a protocol-invariant violation (grants are only ever sent in
    /// response to an acquire we registered a waiter for, on a FIFO link):
    /// report everything a debugger would want before aborting, instead of
    /// the bare `expect` this used to be.
    #[cold]
    #[inline(never)]
    fn lock_grant_invariant_violated(&self, arr: &ArrayShared, id: u64, kind: LockKind) -> ! {
        let chunk = id as usize / arr.layout.chunk_size();
        let home = arr.layout.home_of(id as usize);
        let waiting: Vec<(u64, LockKind, usize)> = arr.per_node[self.node]
            .lock_waiters
            .lock()
            .iter()
            .map(|((i, k), q)| (*i, *k, q.len()))
            .collect();
        let de = arr.per_node[home].dir[chunk].lock();
        panic!(
            "protocol invariant violated: node {} (rt {}) received LockGrant for element {id} \
             kind {kind:?} of array {} with no registered waiter; chunk {chunk} homed on node \
             {home}; home directory state {:?} transient {:?} with {} pending request(s); \
             local waiters registered: {waiting:?}",
            self.node,
            self.rt_idx,
            arr.id,
            de.state,
            de.transient,
            de.pending.len(),
        );
    }

    // ------------------------------------------------------------------
    // Peer failure (fail-stop recovery)
    // ------------------------------------------------------------------

    /// The node's reliability agent declared `dead` unreachable. Settle every
    /// piece of protocol state this runtime thread owns that involves the
    /// dead peer so nothing waits on it forever:
    ///
    /// * requester side (chunks homed on `dead`): abort in-flight fills and
    ///   wake their waiters — the application observes `NodeUnavailable`.
    ///   Valid cached copies are *kept*: they remain readable/writable
    ///   locally (graceful degradation; writebacks to the dead home are
    ///   silently dropped).
    /// * home side (chunks homed here): remove `dead` from sharer sets and
    ///   transient wait-sets, reclaim Dirty ownership it held (its
    ///   un-written-back data is lost — fail-stop), drop its queued
    ///   requests, and resume the directory engine.
    /// * locks: wake local waiters for locks homed on `dead` (they re-check
    ///   and error out). Locks *held by* the dead node are NOT broken — see
    ///   "Fault model and recovery" in DESIGN.md.
    fn handle_peer_down(&mut self, ctx: &mut Ctx, dead: NodeId) {
        let arrays: Vec<Arc<ArrayShared>> = self.shared.arrays.read().clone();
        for arr in &arrays {
            for c in 0..arr.layout.num_chunks() as ChunkId {
                if self.shared.rt_index(c) != self.rt_idx {
                    continue;
                }
                let home = arr.layout.home_of_chunk(c as usize);
                if home == dead {
                    self.abort_fill_from_dead(ctx, arr, c);
                } else if home == self.node {
                    self.home_forget_peer(ctx, arr, c, dead);
                }
            }
            // Wake local waiters for locks homed on the dead node. Drained
            // under the mutex, notified after releasing it.
            let woken: Vec<dsim::WaitCell> = {
                let mut lw = arr.per_node[self.node].lock_waiters.lock();
                let keys: Vec<(u64, LockKind)> = lw
                    .keys()
                    .filter(|(id, _)| arr.layout.home_of(*id as usize) == dead)
                    .copied()
                    .collect();
                keys.into_iter()
                    .flat_map(|k| lw.remove(&k).unwrap_or_default())
                    .collect()
            };
            for w in woken {
                w.notify(ctx);
            }
        }
    }

    /// Requester-side reset of a chunk homed on a dead node.
    fn abort_fill_from_dead(&mut self, ctx: &mut Ctx, arr: &Arc<ArrayShared>, chunk: ChunkId) {
        let d = &arr.per_node[self.node].dentries[chunk as usize];
        if !d.state().in_flight() || d.delay_set() {
            // Stable states keep working locally; a delayed (draining) chunk
            // is cleaned up by its continuation's own peer-down check.
            return;
        }
        let line = d.line();
        if line != LINE_NONE && line != LINE_HOME {
            self.cache.free(line);
        }
        d.set_line(LINE_NONE);
        d.promote_to(LocalState::Invalid, NOTAG);
        d.wake_waiters(ctx);
    }

    /// Home-side directory cleanup: erase a dead peer from this chunk's
    /// bookkeeping and resume the engine if it was waiting on the peer.
    fn home_forget_peer(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        dead: NodeId,
    ) {
        let me = self.node;
        let finished =
            {
                let mut de = arr.per_node[me].dir[chunk as usize].lock();
                let d = &arr.per_node[me].dentries[chunk as usize];
                // Requests the dead node queued must not be serviced: a fill sent
                // to it would be dropped, but granting would corrupt the sharer
                // set with a node that can never evict or acknowledge.
                de.pending
                    .retain(|r| !matches!(r.source, Source::Remote { node, .. } if node == dead));
                if de.current.as_ref().is_some_and(
                    |r| matches!(r.source, Source::Remote { node, .. } if node == dead),
                ) {
                    de.current = None;
                }
                match &de.transient {
                    Transient::AwaitWriteback { from } if *from == dead => {
                        // The dirty data died with the peer (fail-stop): the home
                        // copy becomes authoritative again.
                        de.state = DirState::Unshared;
                        d.promote_to(LocalState::Exclusive, NOTAG);
                        true
                    }
                    Transient::AwaitInvAcks { .. } => {
                        de.remove_sharer(dead);
                        de.transient_remove(dead)
                    }
                    Transient::AwaitFlushes { .. } => {
                        de.remove_sharer(dead);
                        if de.transient_remove(dead) {
                            // Same completion as the last flush arriving.
                            de.state = DirState::Unshared;
                            d.promote_to(LocalState::Exclusive, NOTAG);
                            true
                        } else {
                            false
                        }
                    }
                    _ => {
                        match &de.state {
                            DirState::Dirty { owner } if *owner == dead => {
                                de.state = DirState::Unshared;
                                d.promote_to(LocalState::Exclusive, NOTAG);
                            }
                            DirState::Shared { .. } => {
                                let emptied = de.remove_sharer(dead);
                                if emptied {
                                    de.state = DirState::Unshared;
                                    d.promote_to(LocalState::Exclusive, NOTAG);
                                }
                            }
                            DirState::Operated { .. } => {
                                // Its combined operands are lost (fail-stop); the
                                // home stays Operated and promotes lazily.
                                de.remove_sharer(dead);
                            }
                            _ => {}
                        }
                        false
                    }
                }
            };
        if finished {
            self.finish_transient(ctx, arr, chunk);
        }
    }
}
