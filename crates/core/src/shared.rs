//! Shared state of a running cluster: the array registry, memory regions,
//! runtime mailboxes and per-node bookkeeping that the interface layer,
//! runtime layer and communication layer all reference.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dsim::{Mailbox, WaitCell};
use parking_lot::{Mutex, RwLock};
use rdma_fabric::{MemoryRegion, NicStatsSnapshot, NodeId, Transport, TransportStats};

use crate::cache::CacheRegion;
use crate::comm::RelMsg;
use crate::config::ClusterConfig;
use crate::dentry::{Dentry, LINE_HOME, LINE_NONE};
use crate::error::{DArrayError, UnavailableKind};
use crate::layout::Layout;
use crate::membership::{MembershipView, PeerHealth};
use crate::msg::{ArrayId, ChunkId, LockKind, NetMsg, Rpc, RtMsg};
use crate::op::OpRegistry;
use crate::placement::Placement;
use crate::protocol::locks::LockTable;
use crate::protocol::HomeMachine;
use crate::state::LocalState;
use crate::stats::NodeStats;
use crate::store::ChunkStore;

/// Per-(array, node) protocol state.
pub(crate) struct ArrayNode {
    /// One dentry per global chunk: the node's local rights + refcount.
    pub dentries: Vec<Dentry>,
    /// One home-side directory machine per global chunk (only the home
    /// node's machine for a chunk is ever driven). Each chunk is serviced
    /// by exactly one runtime thread, so the mutex is uncontended; it
    /// exists for interior mutability.
    pub home: Vec<Mutex<HomeMachine<WaitCell>>>,
    /// Home lock table for elements this node owns.
    pub lock_table: Mutex<LockTable<WaitCell>>,
    /// Local waiters for grants from remote lock tables, FIFO per (id, kind).
    pub lock_waiters: Mutex<HashMap<(u64, LockKind), VecDeque<WaitCell>>>,
    /// Locks held by application threads of this node, for `unlock(index)`
    /// (kind + recursion count for multiple local readers).
    pub held: Mutex<HashMap<u64, (LockKind, u32)>>,
}

/// Cluster-global state of one distributed array.
pub(crate) struct ArrayShared {
    pub id: ArrayId,
    pub layout: Layout,
    /// Each node's registered subarray region (its partition, chunk-padded;
    /// in elastic mode every node materializes a full-size region so any
    /// chunk can be re-homed anywhere).
    pub subarrays: Vec<MemoryRegion>,
    pub per_node: Vec<ArrayNode>,
    /// Elastic mode: chunk homes may move at runtime (DESIGN.md §15).
    pub elastic: bool,
    /// `home_map[node][chunk]`: node's current belief about the chunk's
    /// home, packed `(mig_epoch << 32) | home` and advanced monotonically
    /// with `fetch_max` so duplicate / reordered `HomeMoved` notices are
    /// harmless. Empty unless `elastic`.
    home_map: Vec<Vec<AtomicU64>>,
}

impl ArrayShared {
    /// `durable` makes every home machine gate dirty-data acknowledgements
    /// on a durable-store persist (DESIGN.md §14); false keeps the protocol
    /// bit-identical to the persistence-free build. `elastic` sizes every
    /// subarray to hold the whole array and activates the per-node home
    /// maps so chunks can be re-homed live.
    pub(crate) fn new(id: ArrayId, layout: Layout, durable: bool, elastic: bool) -> Self {
        let nodes = layout.nodes();
        let chunks = layout.num_chunks();
        let subarrays: Vec<MemoryRegion> = (0..nodes)
            .map(|n| {
                MemoryRegion::new(if elastic {
                    chunks * layout.chunk_size()
                } else {
                    layout.subarray_words(n)
                })
            })
            .collect();
        let per_node = (0..nodes)
            .map(|n| {
                let dentries = (0..chunks)
                    .map(|c| {
                        if layout.home_of_chunk(c) == n {
                            Dentry::new(LocalState::Exclusive, LINE_HOME)
                        } else {
                            Dentry::new(LocalState::Invalid, LINE_NONE)
                        }
                    })
                    .collect();
                let home = (0..chunks)
                    .map(|_| {
                        let mut m = HomeMachine::new();
                        m.set_durable(durable);
                        Mutex::new(m)
                    })
                    .collect();
                ArrayNode {
                    dentries,
                    home,
                    lock_table: Mutex::new(LockTable::default()),
                    lock_waiters: Mutex::new(HashMap::new()),
                    held: Mutex::new(HashMap::new()),
                }
            })
            .collect();
        let home_map = if elastic {
            (0..nodes)
                .map(|_| {
                    (0..chunks)
                        .map(|c| AtomicU64::new(layout.home_of_chunk(c) as u64))
                        .collect()
                })
                .collect()
        } else {
            Vec::new()
        };
        Self {
            id,
            layout,
            subarrays,
            per_node,
            elastic,
            home_map,
        }
    }

    /// The chunk's authoritative home as `node` currently believes it.
    /// Static clusters answer straight from the layout.
    #[inline]
    pub(crate) fn home_on(&self, node: NodeId, chunk: usize) -> NodeId {
        if self.elastic {
            (self.home_map[node][chunk].load(Ordering::Acquire) & 0xFFFF_FFFF) as NodeId
        } else {
            self.layout.home_of_chunk(chunk)
        }
    }

    /// The migration fence epoch under which `node` last saw the chunk's
    /// home move (0 = never moved).
    #[inline]
    pub(crate) fn home_epoch_on(&self, node: NodeId, chunk: usize) -> u64 {
        if self.elastic {
            self.home_map[node][chunk].load(Ordering::Acquire) >> 32
        } else {
            0
        }
    }

    /// Record on `node`'s map that the chunk's home moved to `new_home`
    /// under migration fence `epoch`. Monotone: stale or duplicate notices
    /// lose the `fetch_max`. Returns true iff the map actually advanced.
    pub(crate) fn note_home(
        &self,
        node: NodeId,
        chunk: usize,
        new_home: NodeId,
        epoch: u64,
    ) -> bool {
        debug_assert!(self.elastic);
        debug_assert!(epoch < (1 << 32) && new_home < (1 << 32));
        let packed = (epoch << 32) | new_home as u64;
        self.home_map[node][chunk].fetch_max(packed, Ordering::AcqRel) < packed
    }

    /// Word offset of `chunk`'s slot in a subarray region. Elastic regions
    /// are full-size, so the slot is the same on every node — which is what
    /// lets the image move without re-registering memory.
    #[inline]
    pub(crate) fn chunk_off(&self, chunk: usize) -> usize {
        if self.elastic {
            chunk * self.layout.chunk_size()
        } else {
            self.layout.chunk_home_offset(chunk)
        }
    }
}

/// Receiver-side state of one reliable link (`me <- src`): the in-order
/// delivery cursor and the out-of-order buffer. Owned by `me`'s Rx thread
/// in steady state (the mutex is uncontended); kept in shared state so
/// [`crate::Cluster::restart_peer`] can reset a link when a restarted peer
/// is re-admitted — the death dropped unacked frames, and without a reset
/// the receiver would wait forever on the resulting sequence gap.
#[derive(Default)]
pub(crate) struct RxLink {
    /// Next sequence number to deliver from this source.
    pub next_expected: u64,
    /// Frames that arrived ahead of the cursor, keyed by sequence.
    pub reorder: BTreeMap<u64, (ArrayId, Rpc)>,
}

impl RxLink {
    /// Forget the old incarnation's stream: the link restarts from seq 0.
    pub fn reset(&mut self) {
        self.next_expected = 0;
        self.reorder.clear();
    }
}

/// Everything shared across the cluster.
pub(crate) struct ClusterShared {
    pub cfg: ClusterConfig,
    /// The cluster-wide chunk→runtime-thread mapping, shared by the
    /// runtime executor, the comm Rx dispatch and bring-up pool sizing.
    pub placement: Placement,
    pub registry: Arc<OpRegistry>,
    /// Per-node network endpoint, behind the backend-agnostic transport
    /// trait (simulated NIC or real sockets — DESIGN.md §13).
    pub transports: Vec<Arc<dyn Transport<NetMsg>>>,
    pub arrays: RwLock<Vec<Arc<ArrayShared>>>,
    /// Per-node cache data region (all runtime threads' lines).
    pub cache_regions: Vec<MemoryRegion>,
    /// Per-node, per-runtime-thread cacheline pools.
    pub cache_pools: Vec<Vec<Arc<CacheRegion>>>,
    /// Per-node, per-runtime-thread request mailboxes.
    pub rt_mailboxes: Vec<Vec<Mailbox<RtMsg>>>,
    pub stats: Vec<Arc<NodeStats>>,
    /// Per-node reliability-agent mailbox (`Some` iff `cfg.fault` is set).
    pub rel_mailboxes: Vec<Option<Mailbox<RelMsg>>>,
    /// `rx_links[me][src]`: receiver-side reliable-channel state of the
    /// link `me <- src`. Only populated (non-trivially) in fault mode.
    pub rx_links: Vec<Vec<Mutex<RxLink>>>,
    /// Per-node durable chunk store (`Some` iff `cfg.durability.policy` is
    /// not `None`). Home machines with `durable` set emit `PersistChunk`
    /// actions that the runtime resolves against this store.
    pub stores: Vec<Option<Arc<dyn ChunkStore>>>,
    /// `membership[me]`: node `me`'s epoch-numbered lease membership view
    /// of every peer (Alive / Suspected / Dead). Each node holds its own
    /// independent view — failure *observation* is local, exactly as on
    /// real hardware — but promotion to Dead requires a quorum poll run by
    /// the node's reliability agent (DESIGN.md §12).
    pub membership: Vec<MembershipView>,
    /// First protocol-invariant violation observed by any runtime thread.
    /// Poisons the cluster: `try_*` APIs surface it as
    /// [`crate::DArrayError::ProtocolInvariant`] instead of aborting the
    /// process.
    pub protocol_fault: ProtocolFault,
}

/// Sticky record of the first protocol-invariant violation. The flag is a
/// cheap relaxed atomic so the application fast path can check it without
/// touching the mutex.
#[derive(Default)]
pub(crate) struct ProtocolFault {
    set: AtomicBool,
    msg: Mutex<Option<String>>,
}

impl ProtocolFault {
    /// Record a violation (first writer wins; later ones are dropped).
    pub(crate) fn record(&self, diagnostic: String) {
        let mut g = self.msg.lock();
        if g.is_none() {
            *g = Some(diagnostic);
        }
        self.set.store(true, Ordering::Release);
    }

    /// The recorded diagnostic, if any. One atomic load when healthy.
    pub(crate) fn get(&self) -> Option<String> {
        if !self.set.load(Ordering::Relaxed) {
            return None;
        }
        self.msg.lock().clone()
    }
}

impl ClusterShared {
    pub(crate) fn array(&self, id: ArrayId) -> Arc<ArrayShared> {
        self.arrays.read()[id as usize].clone()
    }

    /// Runtime thread responsible for `chunk` of `array` (same index on
    /// every node). Rotated round-robin — see [`crate::placement`].
    #[inline]
    pub(crate) fn rt_index(&self, array: ArrayId, chunk: ChunkId) -> usize {
        self.placement.rt_index(array, chunk)
    }

    /// Mailbox of the runtime thread owning `chunk` of `array` on `node`.
    pub(crate) fn rt_mailbox(
        &self,
        node: NodeId,
        array: ArrayId,
        chunk: ChunkId,
    ) -> &Mailbox<RtMsg> {
        &self.rt_mailboxes[node][self.rt_index(array, chunk)]
    }

    /// Raw simulated-NIC statistics of a node (re-exported for benchmarks).
    /// All-zero when the node's transport is not backed by the simulated
    /// NIC; use [`ClusterShared::transport_stats`] for backend-agnostic
    /// counters.
    pub(crate) fn nic_stats(&self, node: NodeId) -> NicStatsSnapshot {
        self.transports[node].nic_stats().unwrap_or_default()
    }

    /// Backend-agnostic transport counters of a node.
    pub(crate) fn transport_stats(&self, node: NodeId) -> TransportStats {
        self.transports[node].stats()
    }

    /// Has `me`'s membership view confirmed `peer` dead? Suspected peers
    /// are *not* down: suspicion is revocable and must stay invisible to
    /// the protocol layers.
    #[inline]
    pub(crate) fn is_peer_down(&self, me: NodeId, peer: NodeId) -> bool {
        self.membership[me].is_dead(peer)
    }

    /// Build the [`DArrayError::NodeUnavailable`] that `me` should surface
    /// for an operation targeting `peer`, stamped with the current
    /// membership epoch and the suspected-vs-confirmed distinction.
    pub(crate) fn unavailable_error(&self, me: NodeId, peer: NodeId) -> DArrayError {
        let view = &self.membership[me];
        let kind = match view.health(peer) {
            PeerHealth::Dead => UnavailableKind::ConfirmedDead,
            _ => UnavailableKind::Suspected,
        };
        DArrayError::NodeUnavailable {
            node: peer,
            epoch: view.epoch(),
            kind,
        }
    }
}

/// Resolve the (region, word offset) where element data lives.
#[inline]
pub(crate) fn data_location<'a>(
    shared: &'a ClusterShared,
    arr: &'a ArrayShared,
    node: NodeId,
    line: u32,
    chunk: usize,
    offset_in_chunk: usize,
) -> (&'a MemoryRegion, usize) {
    if line == LINE_HOME {
        (&arr.subarrays[node], arr.chunk_off(chunk) + offset_in_chunk)
    } else {
        debug_assert_ne!(line, LINE_NONE);
        (
            &shared.cache_regions[node],
            // Cachelines are spaced by the cluster-wide line size, which may
            // exceed this array's chunk size.
            line as usize * shared.cfg.cache.line_words + offset_in_chunk,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_shared_initializes_home_rights() {
        let layout = Layout::even(2048, 2, 512);
        let a = ArrayShared::new(0, layout, false, false);
        // Node 0 owns chunks 0,1; node 1 owns 2,3.
        assert_eq!(a.per_node[0].dentries[0].state(), LocalState::Exclusive);
        assert_eq!(a.per_node[0].dentries[0].line(), LINE_HOME);
        assert_eq!(a.per_node[0].dentries[2].state(), LocalState::Invalid);
        assert_eq!(a.per_node[1].dentries[2].state(), LocalState::Exclusive);
        assert_eq!(a.per_node[1].dentries[0].state(), LocalState::Invalid);
        assert_eq!(a.subarrays[0].len(), 1024);
    }

    #[test]
    fn elastic_home_map_is_monotone_under_epochs() {
        let layout = Layout::even_prefix(2048, 3, 2, 512);
        let a = ArrayShared::new(0, layout, false, true);
        // Full-size subarrays on every node, shared slot offsets.
        assert_eq!(a.subarrays[2].len(), 4 * 512);
        assert_eq!(a.chunk_off(3), 3 * 512);
        assert_eq!(a.home_on(0, 3), 1);
        // A move under epoch 5 wins; a stale notice under epoch 2 loses.
        assert!(a.note_home(0, 3, 2, 5));
        assert_eq!(a.home_on(0, 3), 2);
        assert_eq!(a.home_epoch_on(0, 3), 5);
        assert!(!a.note_home(0, 3, 1, 2));
        assert_eq!(a.home_on(0, 3), 2);
        // A duplicate of the same notice is a no-op, not an error.
        assert!(!a.note_home(0, 3, 2, 5));
    }

    #[test]
    fn protocol_fault_is_sticky_and_first_writer_wins() {
        let f = ProtocolFault::default();
        assert_eq!(f.get(), None);
        f.record("first violation".to_string());
        f.record("second violation".to_string());
        assert_eq!(f.get().as_deref(), Some("first violation"));
    }
}
