//! Configuration of a DArray cluster.

use std::path::PathBuf;

use rdma_fabric::{CostModel, FaultPlan, NetConfig};

use crate::error::ConfigError;
use crate::store::DurabilityPolicy;

/// Default chunk granularity: "the directory tracks the state of data ... at
/// the chunk granularity (512 elements by default)" (§3.1).
pub const DEFAULT_CHUNK_SIZE: usize = 512;

/// Cache layer configuration (§4.2).
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total cachelines per node (split evenly among runtime threads, each
    /// of which owns an independent cache region with its own scanning
    /// pointer, Figure 7).
    pub capacity_lines: usize,
    /// Reclamation starts when the fraction of free cachelines in a region
    /// drops below this (paper default 30 %).
    pub low_watermark: f64,
    /// Reclamation stops once the free fraction exceeds this (paper default
    /// 50 %).
    pub high_watermark: f64,
    /// Cachelines to prefetch ahead of a sequential read miss, issued from
    /// the slow path only (§4.2 "Cache prefetch"). 0 disables.
    pub prefetch_lines: usize,
    /// Words (8-byte slots) per cacheline. Every array's `chunk_size` must
    /// be ≤ this; defaults to [`DEFAULT_CHUNK_SIZE`].
    pub line_words: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity_lines: 1024,
            low_watermark: 0.30,
            high_watermark: 0.50,
            prefetch_lines: 2,
            line_words: DEFAULT_CHUNK_SIZE,
        }
    }
}

/// Fault injection and recovery parameters. Attaching one to
/// [`ClusterConfig::fault`] does two things: the fabric is built with the
/// embedded [`FaultPlan`] (jitter, stalls, drops, crashes, partitions,
/// asymmetric loss — all seeded), and the communication layer switches to
/// **reliable delivery**: every protocol RPC is sequence-numbered,
/// acknowledged, retransmitted with exponential backoff on timeout, and
/// duplicate-suppressed at the receiver. A peer that exhausts `max_retries`
/// is *Suspected* — not dead — and the node polls the rest of the cluster;
/// only a quorum of confirmations (DESIGN.md §12) promotes the suspect to
/// Dead, after which operations targeting it return
/// [`crate::DArrayError::NodeUnavailable`].
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// The seeded fault schedule handed to the fabric. A benign plan
    /// (`FaultPlan::new(seed)`) enables the reliability machinery without
    /// injecting any faults — useful for replay tests.
    pub plan: FaultPlan,
    /// Initial retransmit timeout for a reliable RPC, ns. Doubled on every
    /// retry of the same message. Should comfortably exceed the fault-free
    /// round trip (≈ 2 µs) plus the worst stall window in the plan.
    pub rpc_timeout_ns: dsim::VTime,
    /// Retransmissions attempted before the peer is suspected.
    pub max_retries: u32,
    /// Lease freshness window, ns: a peer heard from within the last
    /// `lease_ns` is considered alive by the local lease oracle. Drives
    /// both self-refutation (retries exhausted toward a peer that is still
    /// talking to us means the loss is one-way) and the votes this node
    /// casts about other nodes' suspects.
    pub lease_ns: dsim::VTime,
    /// Idle heartbeat interval, ns: the reliability agent sends an explicit
    /// `Heartbeat` to any peer it has not transmitted to for this long, so
    /// leases stay fresh on idle links. Leases piggyback on all other
    /// traffic; heartbeats only fill the gaps. Must be below `lease_ns`.
    pub heartbeat_ns: dsim::VTime,
    /// Interval between quorum poll rounds while a peer is Suspected, ns.
    pub suspect_poll_ns: dsim::VTime,
    /// Poll rounds after which silent electorate members that are
    /// themselves Suspected or Dead in the local view abstain, allowing a
    /// degenerate quorum among the remaining reachable voters (needed for
    /// convergence when multiple nodes die together).
    pub suspect_poll_rounds: u32,
}

impl FaultConfig {
    /// Reliability defaults around `plan`: 200 µs initial timeout, 6
    /// retries (≈ 25 ms of virtual time before a peer is suspected),
    /// 500 µs leases renewed by 100 µs idle heartbeats, and quorum polls
    /// every 100 µs with abstention allowed after 3 rounds.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            rpc_timeout_ns: 200_000,
            max_retries: 6,
            lease_ns: 500_000,
            heartbeat_ns: 100_000,
            suspect_poll_ns: 100_000,
            suspect_poll_rounds: 3,
        }
    }
}

/// Which network backend carries the cluster's traffic (DESIGN.md §13).
///
/// The protocol machines, runtime executor and communication threads are
/// backend-agnostic: they speak only the `rdma_fabric::Transport` trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// The dsim-simulated RDMA NIC (default): deterministic virtual time,
    /// calibrated latency/bandwidth model, fault injection.
    #[default]
    Sim,
    /// Real OS TCP sockets with length-prefixed frames (one-sided WRITE
    /// emulated as a tagged frame applied into the registered region).
    /// Requires the `tcp-transport` cargo feature. Virtual time still
    /// exists but no longer models the wire: latency is whatever the OS
    /// delivers, so timings are not comparable with `Sim` runs — protocol
    /// transition *counts* are (see the parity suite).
    Tcp,
}

/// Knobs for the TCP transport backend. Present (and validated) regardless
/// of the `tcp-transport` feature so that configuration handling does not
/// change shape with the feature set.
#[derive(Debug, Clone)]
pub struct TcpTransportConfig {
    /// Largest one-sided WRITE carried by one frame, in 8-byte words;
    /// larger writes are split into consecutive frames (per-stream FIFO
    /// keeps them ordered ahead of the notification message).
    pub max_frame_words: usize,
    /// Virtual nanoseconds charged per empty receive poll, standing in for
    /// the CQ-poll cost the simulated NIC charges.
    pub poll_ns: dsim::VTime,
    /// Static listen addresses (`ip:port`), one per node. `None` (default)
    /// binds ephemeral loopback ports, which cannot collide across
    /// concurrently running clusters.
    pub addrs: Option<Vec<String>>,
    /// Pump threads per node: the fixed event-loop pool that multiplexes
    /// all of the node's links (nonblocking sockets + `poll(2)`). The pool
    /// size is independent of cluster size — never one thread per link —
    /// and a node never spawns more pumps than it has links. Must be at
    /// least 1; the default of 2 splits Rx/Tx load without oversubscribing
    /// test machines.
    pub pump_threads: usize,
}

impl Default for TcpTransportConfig {
    fn default() -> Self {
        Self {
            max_frame_words: 4096,
            poll_ns: 200,
            addrs: None,
            pump_threads: 2,
        }
    }
}

/// Doorbell-batching knobs, applied uniformly to every transport backend
/// (DESIGN.md §13 "Async pump"). On TCP these steer the egress-ring
/// mechanics (frames per writev-style flush, completion signaling); on the
/// simulated backend they steer the equivalent accounting over the NIC's
/// link-busy windows (and `flush_every_frames` overrides the simulated
/// `NetConfig::signal_interval`), so `BENCH` json reports the same
/// batching counters whichever backend ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Most frames one egress flush may carry. 1 disables coalescing;
    /// 0 is rejected by validation.
    pub send_batch_max: usize,
    /// Selective signaling: count one completion every N-th flushed frame.
    /// `None` (default) keeps each backend's native policy — the simulated
    /// NIC's `signal_interval`, one completion per flush on TCP. `Some(0)`
    /// is rejected by validation.
    pub flush_every_frames: Option<u64>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            send_batch_max: 16,
            flush_every_frames: None,
        }
    }
}

/// Per-node durable chunk store configuration (DESIGN.md §14). With a
/// policy other than [`DurabilityPolicy::None`], each node opens an
/// append-only log under `dir` at bring-up (`node<N>.log`), replays it
/// crash-safely, overlays the recovered chunk images onto its home
/// subarrays, and every home machine gates dirty-data acknowledgements on
/// a persist of the new image (persist-before-ack).
#[derive(Debug, Clone, Default)]
pub struct DurabilityConfig {
    /// When (and whether) persisted records are fsynced. The default
    /// `None` disables durability entirely and keeps the protocol
    /// bit-identical to the persistence-free build.
    pub policy: DurabilityPolicy,
    /// Directory holding the per-node logs. Required (and created if
    /// absent) when `policy` is not `None`; ignored otherwise.
    pub dir: Option<PathBuf>,
    /// Take a full-image checkpoint of each node's store once this many
    /// records have been persisted since the last one (polled at the
    /// runtime's batch points: eviction scans, epoch closes). `None`
    /// (default) disables periodic checkpoints; explicit
    /// `Cluster::checkpoint_all` calls still work. Requires a durable
    /// `policy`; `Some(0)` is rejected by validation.
    pub checkpoint_every_persists: Option<u64>,
    /// Truncate the compacted log prefix after each successful checkpoint
    /// (DESIGN.md §14, "Compaction and checkpointing"): reopen then
    /// replays the checkpoint image plus the short log suffix instead of
    /// the full persist history. `false` (default) keeps the append-only
    /// log whole; setting it requires a durable `policy`.
    pub compact: bool,
}

impl DurabilityConfig {
    /// Durability enabled?
    pub fn enabled(&self) -> bool {
        self.policy != DurabilityPolicy::None
    }

    /// The store-level checkpoint knobs this configuration selects.
    pub(crate) fn checkpoint_config(&self) -> crate::store::CheckpointConfig {
        crate::store::CheckpointConfig {
            every_persists: self.checkpoint_every_persists,
            compact: self.compact,
        }
    }
}

/// Which application-thread data access path to use; the lock-based path is
/// the strawman of §4.1, kept for the ablation benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Reference-counted lock-free path (the paper's design, Figure 4).
    LockFree,
    /// Per-chunk mutex on every access (the strawman).
    LockBased,
}

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Runtime threads per node. Chunks (and their cache regions) are
    /// statically partitioned among them, so each chunk's protocol state is
    /// handled by exactly one runtime thread. Defaults to 2 (the winning
    /// setting of the Figure 12 sweep — see `BENCH_fig12.json`); the
    /// `DARRAY_RUNTIME_THREADS` environment variable overrides the default
    /// (CI uses it to keep the single-thread configuration exercised).
    pub runtime_threads: usize,
    /// Spawn dedicated Tx threads that post verbs on behalf of the runtime
    /// (§4.5 "Dedicated networking threads"). When false, the runtime posts
    /// inline and the posting cost is charged to it directly; an Rx thread
    /// per node always exists.
    pub tx_threads: bool,
    /// Application-thread access path.
    pub access_path: AccessPath,
    /// Override the CPU cost charged per fast-path access (ns). `None`
    /// charges [`rdma_fabric::CostModel::darray_fast_path`]. The GAM
    /// baseline sets this to its hash-probe cost (its per-chunk lock is
    /// charged separately by the lock itself).
    pub fast_path_cost_ns: Option<dsim::VTime>,
    /// Network model parameters.
    pub net: NetConfig,
    /// CPU cost model.
    pub cost: CostModel,
    /// Cache layer parameters.
    pub cache: CacheConfig,
    /// Minimum hold (grace) window, ns: after the directory grants a chunk,
    /// requests that would revoke the grantee's rights wait this long.
    /// Without it, back-to-back contenders can recall a chunk before the
    /// grantee's application thread performs even one access (grant
    /// starvation / livelock — a classic directory-protocol hazard).
    pub grant_grace_ns: dsim::VTime,
    /// Fault injection + reliable delivery; `None` (the default) keeps the
    /// original fault-free fast path bit-identically.
    pub fault: Option<FaultConfig>,
    /// Network backend selection.
    pub transport: TransportKind,
    /// TCP backend knobs (used when `transport` is [`TransportKind::Tcp`]).
    pub tcp: TcpTransportConfig,
    /// Doorbell-batching knobs, applied uniformly to Sim and TCP.
    pub batch: BatchConfig,
    /// Per-node durable chunk store; the default (policy `None`) keeps the
    /// protocol bit-identical to the persistence-free build.
    pub durability: DurabilityConfig,
    /// Elastic membership (DESIGN.md §15). When set, every array keeps a
    /// per-node chunk→home map that migration commits advance under
    /// monotone epochs, `Cluster::join_peer` can bring spare nodes into a
    /// live cluster, and `Cluster::migrate_chunk` re-homes chunks without
    /// stopping traffic. The default `false` keeps the fixed partition map
    /// and is bit-identical to the pre-elastic build.
    pub elastic: bool,
    /// Nodes that are *active* at bring-up; the remaining
    /// `initial_nodes..nodes` are spares in `Joining` state: they run the
    /// full service stack but home no chunks and hold no votes until
    /// [`crate::Cluster::join_peer`] admits them. `None` (default) starts
    /// every node active. Requires `elastic`.
    pub initial_nodes: Option<usize>,
}

/// Library default for [`ClusterConfig::runtime_threads`]: 2, unless the
/// `DARRAY_RUNTIME_THREADS` environment variable names another positive
/// count. The env hook exists so CI (and curious users) can run the whole
/// suite under a non-default thread count without touching code; invalid
/// values fall back to the built-in default rather than failing here —
/// `try_validate` still rejects zero if set explicitly on the struct.
pub fn default_runtime_threads() -> usize {
    match std::env::var("DARRAY_RUNTIME_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => 2,
        },
        Err(_) => 2,
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 1,
            runtime_threads: default_runtime_threads(),
            tx_threads: false,
            access_path: AccessPath::LockFree,
            fast_path_cost_ns: None,
            net: NetConfig::default(),
            cost: CostModel::default(),
            cache: CacheConfig::default(),
            grant_grace_ns: 1_000,
            fault: None,
            transport: TransportKind::Sim,
            tcp: TcpTransportConfig::default(),
            batch: BatchConfig::default(),
            durability: DurabilityConfig::default(),
            elastic: false,
            initial_nodes: None,
        }
    }
}

impl ClusterConfig {
    /// Convenience: `n` nodes, defaults otherwise.
    pub fn with_nodes(n: usize) -> Self {
        Self {
            nodes: n,
            ..Default::default()
        }
    }

    /// Fast-test configuration: near-zero network latency.
    pub fn test_config(n: usize) -> Self {
        Self {
            nodes: n,
            net: NetConfig::instant(),
            ..Default::default()
        }
    }

    /// Check every invariant, returning a structured error instead of
    /// panicking. Called by [`ClusterConfig::validate`] and `Cluster::new`.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.nodes == 0 {
            return Err(ConfigError::NoNodes);
        }
        if self.runtime_threads == 0 {
            return Err(ConfigError::NoRuntimeThreads);
        }
        if self.cache.capacity_lines < self.runtime_threads {
            return Err(ConfigError::CacheTooSmall {
                capacity_lines: self.cache.capacity_lines,
                runtime_threads: self.runtime_threads,
            });
        }
        let (low, high) = (self.cache.low_watermark, self.cache.high_watermark);
        if !(0.0..=1.0).contains(&low) || !(0.0..=1.0).contains(&high) || low > high {
            return Err(ConfigError::BadWatermarks { low, high });
        }
        if self.cache.line_words == 0 {
            return Err(ConfigError::ZeroLineWords);
        }
        if self.net.bytes_per_us == 0 {
            return Err(ConfigError::ZeroBandwidth);
        }
        if let Some(f) = &self.fault {
            if f.rpc_timeout_ns == 0 {
                return Err(ConfigError::ZeroRpcTimeout);
            }
            if f.max_retries == 0 {
                return Err(ConfigError::ZeroMaxRetries);
            }
            if f.lease_ns == 0 {
                return Err(ConfigError::ZeroLease);
            }
            if f.heartbeat_ns == 0 || f.suspect_poll_ns == 0 || f.suspect_poll_rounds == 0 {
                return Err(ConfigError::ZeroSuspectTimers);
            }
            if f.heartbeat_ns >= f.lease_ns {
                return Err(ConfigError::HeartbeatExceedsLease {
                    heartbeat_ns: f.heartbeat_ns,
                    lease_ns: f.lease_ns,
                });
            }
        }
        if self.batch.send_batch_max == 0 {
            return Err(ConfigError::ZeroSendBatch);
        }
        if self.batch.flush_every_frames == Some(0) {
            return Err(ConfigError::ZeroFlushInterval);
        }
        if self.transport == TransportKind::Tcp {
            if !cfg!(feature = "tcp-transport") {
                return Err(ConfigError::TcpFeatureDisabled);
            }
            if self.tcp.max_frame_words == 0 {
                return Err(ConfigError::ZeroFrameWords);
            }
            if self.tcp.poll_ns == 0 {
                return Err(ConfigError::ZeroTransportPoll);
            }
            if self.tcp.pump_threads == 0 {
                return Err(ConfigError::ZeroPumpThreads);
            }
            if let Some(addrs) = &self.tcp.addrs {
                if addrs.len() != self.nodes {
                    return Err(ConfigError::TransportAddrCount {
                        expected: self.nodes,
                        got: addrs.len(),
                    });
                }
                let mut parsed: Vec<std::net::SocketAddr> = Vec::with_capacity(addrs.len());
                for addr in addrs {
                    let sa: std::net::SocketAddr = addr
                        .parse()
                        .map_err(|_| ConfigError::TransportAddrInvalid { addr: addr.clone() })?;
                    if parsed.contains(&sa) {
                        return Err(ConfigError::TransportAddrCollision { addr: addr.clone() });
                    }
                    parsed.push(sa);
                }
            }
            if let Some(f) = &self.fault {
                // The reliability channel itself is fine over TCP (it is
                // just more traffic), but injected faults are simulated-
                // fabric behavior and cannot be imposed on OS sockets.
                if !f.plan.is_benign() {
                    return Err(ConfigError::TransportFaultInjection);
                }
            }
        }
        if self.durability.enabled() && self.durability.dir.is_none() {
            return Err(ConfigError::DurabilityDirMissing {
                policy: self.durability.policy.name(),
            });
        }
        if self.durability.checkpoint_every_persists == Some(0) {
            // A zero interval would checkpoint after every persist: each
            // ack would pay a full-image snapshot. Degenerate, rejected.
            return Err(ConfigError::ZeroCheckpointInterval);
        }
        if !self.durability.enabled()
            && (self.durability.checkpoint_every_persists.is_some() || self.durability.compact)
        {
            return Err(ConfigError::CheckpointWithoutDurability);
        }
        if let Some(active) = self.initial_nodes {
            if !self.elastic {
                return Err(ConfigError::InitialNodesWithoutElastic);
            }
            if active == 0 || active > self.nodes {
                return Err(ConfigError::BadInitialNodes {
                    initial_nodes: active,
                    nodes: self.nodes,
                });
            }
        }
        if self.durability.enabled() {
            // Incarnation guard: both the node count and the chunk→
            // runtime-thread placement are part of the recovery contract
            // (the even partition tiles chunks across nodes, each replayed
            // persist sequence is resumed by the chunk's owning thread,
            // and the cache pools are tiled per thread), so a log
            // directory written under one shape must not be replayed
            // under another. The first incarnation records its shape
            // (`Cluster::try_new`); later ones are validated against it
            // here.
            if let Some(dir) = &self.durability.dir {
                let meta = read_incarnation_meta(dir);
                if let Some(recorded) = meta.runtime_threads {
                    if recorded != self.runtime_threads {
                        return Err(ConfigError::RuntimeThreadsChanged {
                            recorded,
                            configured: self.runtime_threads,
                        });
                    }
                }
                if let Some(recorded) = meta.nodes {
                    if recorded != self.nodes {
                        return Err(ConfigError::ClusterNodesChanged {
                            recorded,
                            configured: self.nodes,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Panicking wrapper over [`ClusterConfig::try_validate`].
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("invalid ClusterConfig: {e}");
        }
    }

    /// Check that an array with `chunk_size` can live in this cluster's
    /// cachelines.
    pub(crate) fn try_validate_array(&self, chunk_size: usize) -> Result<(), ConfigError> {
        if chunk_size > self.cache.line_words {
            return Err(ConfigError::LineWordsBelowChunk {
                line_words: self.cache.line_words,
                chunk_size,
            });
        }
        Ok(())
    }
}

/// Name of the incarnation-metadata file a durable cluster writes into its
/// log directory, binding the directory to the cluster shape that produced
/// it (see the incarnation guard in [`ClusterConfig::try_validate`]).
pub(crate) const CLUSTER_META: &str = "cluster.meta";

/// The cluster shape recorded by the incarnation that first used a
/// durability directory. Either field may be absent (older-format files
/// recorded only `runtime_threads`); the guard only fires on a *recorded*
/// mismatch, never on absence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct IncarnationMeta {
    pub runtime_threads: Option<usize>,
    pub nodes: Option<usize>,
}

/// Read the shape recorded by the incarnation that first used `dir`. A
/// missing or unparsable file means "no prior incarnation".
pub(crate) fn read_incarnation_meta(dir: &std::path::Path) -> IncarnationMeta {
    let Ok(text) = std::fs::read_to_string(dir.join(CLUSTER_META)) else {
        return IncarnationMeta::default();
    };
    IncarnationMeta {
        runtime_threads: text
            .lines()
            .find_map(|l| l.strip_prefix("runtime_threads=")?.trim().parse().ok()),
        nodes: text
            .lines()
            .find_map(|l| l.strip_prefix("nodes=")?.trim().parse().ok()),
    }
}

/// Record the cluster shape for `dir`'s first incarnation. Later calls are
/// no-ops: the original record is the contract, and `try_validate` has
/// already checked the running configuration against it.
pub(crate) fn write_incarnation_meta(
    dir: &std::path::Path,
    runtime_threads: usize,
    nodes: usize,
) -> std::io::Result<()> {
    let path = dir.join(CLUSTER_META);
    if path.exists() {
        return Ok(());
    }
    std::fs::write(
        path,
        format!("runtime_threads={runtime_threads}\nnodes={nodes}\n"),
    )
}

/// Per-array options passed at construction (Figure 3's constructor).
#[derive(Debug, Clone, Default)]
pub struct ArrayOptions {
    /// Elements per chunk; defaults to [`DEFAULT_CHUNK_SIZE`].
    pub chunk_size: Option<usize>,
    /// Custom partition: `partition_offset[i]` is the first element owned by
    /// node `i` (must be non-decreasing, start at 0, and will be rounded up
    /// to chunk boundaries). `None` means an even partition.
    pub partition_offset: Option<Vec<usize>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        ClusterConfig::default().validate();
        ClusterConfig::with_nodes(12).validate();
        ClusterConfig::test_config(3).validate();
    }

    #[test]
    fn default_runtime_threads_is_multi_threaded() {
        // The Figure 12 sweep picked 2 as the library default; CI's
        // DARRAY_RUNTIME_THREADS matrix leg relies on the env override.
        // (Read the env here too so the test stays truthful under that
        // very matrix leg.)
        let expected = std::env::var("DARRAY_RUNTIME_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok().filter(|&n| n > 0))
            .unwrap_or(2);
        assert_eq!(ClusterConfig::default().runtime_threads, expected);
        assert_eq!(default_runtime_threads(), expected);
    }

    #[test]
    fn degenerate_cache_capacity_cases() {
        // capacity == threads is the legal minimum: one line per pool.
        let mut c = ClusterConfig {
            runtime_threads: 4,
            ..Default::default()
        };
        c.cache.capacity_lines = 4;
        assert_eq!(c.try_validate(), Ok(()));
        // capacity < threads would leave a pool with zero lines: rejected,
        // never silently over-allocated.
        c.cache.capacity_lines = 3;
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::CacheTooSmall {
                capacity_lines: 3,
                runtime_threads: 4,
            })
        );
        // Zero capacity is degenerate even single-threaded.
        let mut c = ClusterConfig {
            runtime_threads: 1,
            ..Default::default()
        };
        c.cache.capacity_lines = 0;
        assert!(matches!(
            c.try_validate(),
            Err(ConfigError::CacheTooSmall { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        ClusterConfig {
            nodes: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "watermark")]
    fn inverted_watermarks_rejected() {
        let mut c = ClusterConfig::default();
        c.cache.low_watermark = 0.9;
        c.cache.high_watermark = 0.2;
        c.validate();
    }

    #[test]
    fn try_validate_reports_structured_errors() {
        let ok = ClusterConfig::default();
        assert_eq!(ok.try_validate(), Ok(()));

        let mut c = ClusterConfig::default();
        c.net.bytes_per_us = 0;
        assert_eq!(c.try_validate(), Err(ConfigError::ZeroBandwidth));

        let mut c = ClusterConfig::default();
        c.cache.line_words = 0;
        assert_eq!(c.try_validate(), Err(ConfigError::ZeroLineWords));

        let mut c = ClusterConfig {
            runtime_threads: 4,
            ..Default::default()
        };
        c.cache.capacity_lines = 3;
        assert!(matches!(
            c.try_validate(),
            Err(ConfigError::CacheTooSmall { .. })
        ));

        let mut c = ClusterConfig {
            fault: Some(FaultConfig::new(FaultPlan::new(1))),
            ..Default::default()
        };
        assert_eq!(c.try_validate(), Ok(()));
        c.fault.as_mut().unwrap().rpc_timeout_ns = 0;
        assert_eq!(c.try_validate(), Err(ConfigError::ZeroRpcTimeout));
        c.fault = Some(FaultConfig {
            max_retries: 0,
            ..FaultConfig::new(FaultPlan::new(1))
        });
        assert_eq!(c.try_validate(), Err(ConfigError::ZeroMaxRetries));
        c.fault = Some(FaultConfig {
            lease_ns: 0,
            ..FaultConfig::new(FaultPlan::new(1))
        });
        assert_eq!(c.try_validate(), Err(ConfigError::ZeroLease));
        c.fault = Some(FaultConfig {
            suspect_poll_rounds: 0,
            ..FaultConfig::new(FaultPlan::new(1))
        });
        assert_eq!(c.try_validate(), Err(ConfigError::ZeroSuspectTimers));
        c.fault = Some(FaultConfig {
            heartbeat_ns: 600_000,
            lease_ns: 500_000,
            ..FaultConfig::new(FaultPlan::new(1))
        });
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::HeartbeatExceedsLease {
                heartbeat_ns: 600_000,
                lease_ns: 500_000
            })
        );
    }

    #[test]
    fn batching_knobs_are_validated() {
        // The batching knobs apply to every backend, so they are checked
        // even on the simulated transport.
        let mut c = ClusterConfig::default();
        c.batch.send_batch_max = 0;
        assert_eq!(c.try_validate(), Err(ConfigError::ZeroSendBatch));

        let mut c = ClusterConfig::default();
        c.batch.flush_every_frames = Some(0);
        assert_eq!(c.try_validate(), Err(ConfigError::ZeroFlushInterval));

        // 1 (no coalescing / signal every frame) is the legal minimum.
        let mut c = ClusterConfig::default();
        c.batch.send_batch_max = 1;
        c.batch.flush_every_frames = Some(1);
        assert_eq!(c.try_validate(), Ok(()));
    }

    #[test]
    fn transport_knobs_are_validated() {
        // Sim transport ignores the TCP knobs entirely.
        let mut c = ClusterConfig::default();
        c.tcp.max_frame_words = 0;
        c.tcp.pump_threads = 0;
        assert_eq!(c.try_validate(), Ok(()));

        let tcp_base = || ClusterConfig {
            nodes: 2,
            transport: TransportKind::Tcp,
            ..Default::default()
        };

        if !cfg!(feature = "tcp-transport") {
            assert_eq!(
                tcp_base().try_validate(),
                Err(ConfigError::TcpFeatureDisabled)
            );
            return;
        }

        assert_eq!(tcp_base().try_validate(), Ok(()));

        let mut c = tcp_base();
        c.tcp.max_frame_words = 0;
        assert_eq!(c.try_validate(), Err(ConfigError::ZeroFrameWords));

        let mut c = tcp_base();
        c.tcp.poll_ns = 0;
        assert_eq!(c.try_validate(), Err(ConfigError::ZeroTransportPoll));

        let mut c = tcp_base();
        c.tcp.pump_threads = 0;
        assert_eq!(c.try_validate(), Err(ConfigError::ZeroPumpThreads));

        let mut c = tcp_base();
        c.tcp.addrs = Some(vec!["127.0.0.1:9000".to_string()]);
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::TransportAddrCount {
                expected: 2,
                got: 1
            })
        );

        let mut c = tcp_base();
        c.tcp.addrs = Some(vec![
            "127.0.0.1:9000".to_string(),
            "not-an-addr".to_string(),
        ]);
        assert!(matches!(
            c.try_validate(),
            Err(ConfigError::TransportAddrInvalid { .. })
        ));

        let mut c = tcp_base();
        c.tcp.addrs = Some(vec![
            "127.0.0.1:9000".to_string(),
            "127.0.0.1:9000".to_string(),
        ]);
        assert!(matches!(
            c.try_validate(),
            Err(ConfigError::TransportAddrCollision { .. })
        ));

        // Reliable delivery over TCP is fine with a benign plan...
        let mut c = tcp_base();
        c.fault = Some(FaultConfig::new(FaultPlan::new(7)));
        assert_eq!(c.try_validate(), Ok(()));
        // ...but injected faults belong to the simulated fabric.
        let mut c = tcp_base();
        let mut plan = FaultPlan::new(7);
        plan.drop_ppm = 1_000;
        c.fault = Some(FaultConfig::new(plan));
        assert_eq!(c.try_validate(), Err(ConfigError::TransportFaultInjection));
    }

    #[test]
    fn durability_requires_a_directory() {
        let mut c = ClusterConfig::default();
        c.durability.policy = DurabilityPolicy::Writethrough;
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::DurabilityDirMissing {
                policy: "writethrough"
            })
        );
        c.durability.dir = Some(PathBuf::from("/tmp/darray-logs"));
        assert_eq!(c.try_validate(), Ok(()));
        // Policy None ignores the directory entirely.
        let mut c = ClusterConfig::default();
        c.durability.dir = Some(PathBuf::from("/tmp/darray-logs"));
        assert_eq!(c.try_validate(), Ok(()));
        assert!(!c.durability.enabled());
    }

    #[test]
    fn checkpoint_knobs_are_validated() {
        let durable = || {
            let mut c = ClusterConfig::default();
            c.durability.policy = DurabilityPolicy::Writeback;
            c.durability.dir = Some(PathBuf::from("/tmp/darray-logs"));
            c
        };
        let mut c = durable();
        c.durability.checkpoint_every_persists = Some(64);
        c.durability.compact = true;
        assert_eq!(c.try_validate(), Ok(()));
        // A zero interval would snapshot the store on every ack.
        let mut c = durable();
        c.durability.checkpoint_every_persists = Some(0);
        assert_eq!(c.try_validate(), Err(ConfigError::ZeroCheckpointInterval));
        // Checkpoint knobs without a durable policy are degenerate: there
        // is no store to checkpoint.
        let mut c = ClusterConfig::default();
        c.durability.checkpoint_every_persists = Some(64);
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::CheckpointWithoutDurability)
        );
        let mut c = ClusterConfig::default();
        c.durability.compact = true;
        assert_eq!(
            c.try_validate(),
            Err(ConfigError::CheckpointWithoutDurability)
        );
    }

    #[test]
    fn incarnation_guard_rejects_changed_shape() {
        let dir =
            std::env::temp_dir().join(format!("darray-config-incarnation-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let base = |threads: usize, nodes: usize| {
            let mut c = ClusterConfig {
                nodes,
                runtime_threads: threads,
                ..Default::default()
            };
            c.durability.policy = DurabilityPolicy::Writethrough;
            c.durability.dir = Some(dir.clone());
            c
        };
        // No meta yet: any shape validates.
        assert_eq!(base(2, 3).try_validate(), Ok(()));
        write_incarnation_meta(&dir, 2, 3).unwrap();
        assert_eq!(base(2, 3).try_validate(), Ok(()));
        assert_eq!(
            base(4, 3).try_validate(),
            Err(ConfigError::RuntimeThreadsChanged {
                recorded: 2,
                configured: 4
            })
        );
        assert_eq!(
            base(2, 5).try_validate(),
            Err(ConfigError::ClusterNodesChanged {
                recorded: 3,
                configured: 5
            })
        );
        // Old-format meta (runtime_threads only): the node-count guard
        // never fires on absence.
        std::fs::write(dir.join(CLUSTER_META), "runtime_threads=2\n").unwrap();
        assert_eq!(base(2, 7).try_validate(), Ok(()));
        assert_eq!(
            base(1, 7).try_validate(),
            Err(ConfigError::RuntimeThreadsChanged {
                recorded: 2,
                configured: 1
            })
        );
        // Later writes never clobber the first incarnation's record.
        write_incarnation_meta(&dir, 9, 9).unwrap();
        assert_eq!(
            read_incarnation_meta(&dir),
            IncarnationMeta {
                runtime_threads: Some(2),
                nodes: None
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn membership_defaults_are_ordered() {
        let f = FaultConfig::new(FaultPlan::new(0));
        assert!(f.heartbeat_ns < f.lease_ns, "leases outlive heartbeat gaps");
        assert!(f.suspect_poll_rounds > 0);
    }

    #[test]
    fn array_chunk_must_fit_a_cacheline() {
        let c = ClusterConfig::default();
        assert_eq!(c.try_validate_array(512), Ok(()));
        assert!(matches!(
            c.try_validate_array(513),
            Err(ConfigError::LineWordsBelowChunk {
                line_words: 512,
                chunk_size: 513
            })
        ));
    }

    #[test]
    fn paper_defaults_are_encoded() {
        let c = CacheConfig::default();
        assert_eq!(c.low_watermark, 0.30);
        assert_eq!(c.high_watermark, 0.50);
        assert_eq!(DEFAULT_CHUNK_SIZE, 512);
    }
}
