//! Configuration of a DArray cluster.

use rdma_fabric::{CostModel, NetConfig};

/// Default chunk granularity: "the directory tracks the state of data ... at
/// the chunk granularity (512 elements by default)" (§3.1).
pub const DEFAULT_CHUNK_SIZE: usize = 512;

/// Cache layer configuration (§4.2).
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total cachelines per node (split evenly among runtime threads, each
    /// of which owns an independent cache region with its own scanning
    /// pointer, Figure 7).
    pub capacity_lines: usize,
    /// Reclamation starts when the fraction of free cachelines in a region
    /// drops below this (paper default 30 %).
    pub low_watermark: f64,
    /// Reclamation stops once the free fraction exceeds this (paper default
    /// 50 %).
    pub high_watermark: f64,
    /// Cachelines to prefetch ahead of a sequential read miss, issued from
    /// the slow path only (§4.2 "Cache prefetch"). 0 disables.
    pub prefetch_lines: usize,
    /// Words (8-byte slots) per cacheline. Every array's `chunk_size` must
    /// be ≤ this; defaults to [`DEFAULT_CHUNK_SIZE`].
    pub line_words: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity_lines: 1024,
            low_watermark: 0.30,
            high_watermark: 0.50,
            prefetch_lines: 2,
            line_words: DEFAULT_CHUNK_SIZE,
        }
    }
}

/// Which application-thread data access path to use; the lock-based path is
/// the strawman of §4.1, kept for the ablation benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Reference-counted lock-free path (the paper's design, Figure 4).
    LockFree,
    /// Per-chunk mutex on every access (the strawman).
    LockBased,
}

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Runtime threads per node. Chunks (and their cache regions) are
    /// statically partitioned among them, so each chunk's protocol state is
    /// handled by exactly one runtime thread.
    pub runtime_threads: usize,
    /// Spawn dedicated Tx threads that post verbs on behalf of the runtime
    /// (§4.5 "Dedicated networking threads"). When false, the runtime posts
    /// inline and the posting cost is charged to it directly; an Rx thread
    /// per node always exists.
    pub tx_threads: bool,
    /// Application-thread access path.
    pub access_path: AccessPath,
    /// Override the CPU cost charged per fast-path access (ns). `None`
    /// charges [`rdma_fabric::CostModel::darray_fast_path`]. The GAM
    /// baseline sets this to its hash-probe cost (its per-chunk lock is
    /// charged separately by the lock itself).
    pub fast_path_cost_ns: Option<dsim::VTime>,
    /// Network model parameters.
    pub net: NetConfig,
    /// CPU cost model.
    pub cost: CostModel,
    /// Cache layer parameters.
    pub cache: CacheConfig,
    /// Minimum hold (grace) window, ns: after the directory grants a chunk,
    /// requests that would revoke the grantee's rights wait this long.
    /// Without it, back-to-back contenders can recall a chunk before the
    /// grantee's application thread performs even one access (grant
    /// starvation / livelock — a classic directory-protocol hazard).
    pub grant_grace_ns: dsim::VTime,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 1,
            runtime_threads: 1,
            tx_threads: false,
            access_path: AccessPath::LockFree,
            fast_path_cost_ns: None,
            net: NetConfig::default(),
            cost: CostModel::default(),
            cache: CacheConfig::default(),
            grant_grace_ns: 1_000,
        }
    }
}

impl ClusterConfig {
    /// Convenience: `n` nodes, defaults otherwise.
    pub fn with_nodes(n: usize) -> Self {
        Self {
            nodes: n,
            ..Default::default()
        }
    }

    /// Fast-test configuration: near-zero network latency.
    pub fn test_config(n: usize) -> Self {
        Self {
            nodes: n,
            net: NetConfig::instant(),
            ..Default::default()
        }
    }

    /// Sanity-check invariants; called by `Cluster::new`.
    pub fn validate(&self) {
        assert!(self.nodes > 0, "cluster needs at least one node");
        assert!(self.runtime_threads > 0, "need at least one runtime thread");
        assert!(
            self.cache.capacity_lines >= self.runtime_threads,
            "each runtime thread needs at least one cacheline"
        );
        assert!(
            (0.0..=1.0).contains(&self.cache.low_watermark)
                && (0.0..=1.0).contains(&self.cache.high_watermark),
            "watermarks are fractions"
        );
        assert!(
            self.cache.low_watermark <= self.cache.high_watermark,
            "low watermark must not exceed high watermark"
        );
    }
}

/// Per-array options passed at construction (Figure 3's constructor).
#[derive(Debug, Clone, Default)]
pub struct ArrayOptions {
    /// Elements per chunk; defaults to [`DEFAULT_CHUNK_SIZE`].
    pub chunk_size: Option<usize>,
    /// Custom partition: `partition_offset[i]` is the first element owned by
    /// node `i` (must be non-decreasing, start at 0, and will be rounded up
    /// to chunk boundaries). `None` means an even partition.
    pub partition_offset: Option<Vec<usize>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        ClusterConfig::default().validate();
        ClusterConfig::with_nodes(12).validate();
        ClusterConfig::test_config(3).validate();
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        ClusterConfig {
            nodes: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "watermark")]
    fn inverted_watermarks_rejected() {
        let mut c = ClusterConfig::default();
        c.cache.low_watermark = 0.9;
        c.cache.high_watermark = 0.2;
        c.validate();
    }

    #[test]
    fn paper_defaults_are_encoded() {
        let c = CacheConfig::default();
        assert_eq!(c.low_watermark, 0.30);
        assert_eq!(c.high_watermark, 0.50);
        assert_eq!(DEFAULT_CHUNK_SIZE, 512);
    }
}
