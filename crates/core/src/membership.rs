//! Quorum-backed lease membership (DESIGN.md §12).
//!
//! Each node owns one [`MembershipView`]: its local, epoch-numbered opinion
//! of every peer's health. The view is the **sole** source of `PeerDown`
//! events — the runtime and protocol layers never act on a raw retry
//! exhaustion. The lifecycle per peer is
//!
//! ```text
//!   Joining --admit()--> Alive --suspect()--> Suspected --confirm_dead()--> Dead
//!                          ^                       |             (monotone)
//!                          +------readmit()--------+       (refuted suspicion)
//! ```
//!
//! * **Leases.** `note_heard` stamps the virtual time of every message
//!   received from a peer (piggybacked on all traffic; explicit heartbeats
//!   cover idle links). `lease_fresh` is the local liveness oracle: it
//!   drives self-refutation (the suspect is talking to *us*, so the loss
//!   is one-way) and the votes this node casts about other suspects.
//! * **Suspicion.** Exhausted retries move a peer to *Suspected* — a
//!   revocable state. The reliability agent parks the peer's outstanding
//!   queue and polls the other nodes; only a majority of the electorate
//!   (every node except the suspect, the suspector counting itself)
//!   promotes Suspected to Dead.
//! * **Epochs.** Every confirmed death increments the view `epoch` and
//!   stamps it as the peer's `death_epoch`. `RtMsg::PeerDown` carries the
//!   stamp, and consumers fence events whose epoch does not match the
//!   current view — a stale declaration can never re-kill a peer.
//!
//! * **Joining.** Elastic bring-up (DESIGN.md §15) provisions nodes that
//!   are not yet members: their status starts *Joining* instead of Alive.
//!   A joiner is invisible to the protocol layers — it homes no chunks,
//!   abstains from suspect electorates (only `Alive` voters count), and
//!   cannot itself be suspected. `admit` promotes Joining → Alive under a
//!   burned view epoch, exactly as `restart` re-admits a dead identity, so
//!   every consumer can fence pre-admission stragglers.
//!
//! Transitions are only ever performed by the node's single reliability
//! agent thread, so plain release stores suffice; readers (application
//! threads checking `is_dead`, the Rx thread refreshing leases) use relaxed
//! loads, mirroring the old `peer_down` flag matrix.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use dsim::VTime;
use rdma_fabric::NodeId;

/// Health of a peer as seen by one node's membership view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerHealth {
    /// Reachable as far as this node knows.
    Alive,
    /// Retries exhausted; a quorum poll is in flight. Revocable.
    Suspected,
    /// A quorum confirmed the death. Permanent (fail-stop).
    Dead,
    /// Provisioned but not yet admitted (elastic bring-up, DESIGN.md §15):
    /// homes no chunks, abstains from quorum polls, cannot be suspected.
    Joining,
}

const ALIVE: u8 = 0;
const SUSPECTED: u8 = 1;
const DEAD: u8 = 2;
const JOINING: u8 = 3;

/// One node's epoch-numbered opinion of every peer (see module docs).
pub(crate) struct MembershipView {
    /// Per-peer health (`ALIVE`/`SUSPECTED`/`DEAD`).
    status: Vec<AtomicU8>,
    /// Virtual time this node last heard *anything* from each peer.
    last_heard: Vec<AtomicU64>,
    /// Monotone view epoch; incremented by every confirmed death.
    epoch: AtomicU64,
    /// Epoch stamped on each peer's confirmed death (0 = not dead).
    death_epoch: Vec<AtomicU64>,
}

impl MembershipView {
    pub(crate) fn new(nodes: usize) -> Self {
        Self {
            status: (0..nodes).map(|_| AtomicU8::new(ALIVE)).collect(),
            last_heard: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            epoch: AtomicU64::new(0),
            death_epoch: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// A view for an elastic cluster where only the first `active` node
    /// slots are members at bring-up; the rest are provisioned but Joining
    /// (DESIGN.md §15). Every node — including a joiner looking at itself —
    /// holds the same initial opinion, so a joiner knows it is not yet a
    /// member and the members know to exclude it from quorum electorates.
    pub(crate) fn new_with_joining(nodes: usize, active: usize) -> Self {
        let v = Self::new(nodes);
        for peer in active..nodes {
            v.status[peer].store(JOINING, Ordering::Release);
        }
        v
    }

    /// Record receipt of a message from `peer` at `now` (lease renewal).
    pub(crate) fn note_heard(&self, peer: NodeId, now: VTime) {
        self.last_heard[peer].fetch_max(now, Ordering::Relaxed);
    }

    /// Last virtual time anything was heard from `peer`.
    pub(crate) fn last_heard(&self, peer: NodeId) -> VTime {
        self.last_heard[peer].load(Ordering::Relaxed)
    }

    /// Has `peer` been heard from within the last `lease_ns`?
    pub(crate) fn lease_fresh(&self, peer: NodeId, now: VTime, lease_ns: VTime) -> bool {
        now.saturating_sub(self.last_heard(peer)) <= lease_ns
    }

    /// Current health of `peer`.
    pub(crate) fn health(&self, peer: NodeId) -> PeerHealth {
        match self.status[peer].load(Ordering::Relaxed) {
            ALIVE => PeerHealth::Alive,
            SUSPECTED => PeerHealth::Suspected,
            JOINING => PeerHealth::Joining,
            _ => PeerHealth::Dead,
        }
    }

    /// Is `peer` provisioned but not yet admitted?
    #[inline]
    pub(crate) fn is_joining(&self, peer: NodeId) -> bool {
        self.status[peer].load(Ordering::Relaxed) == JOINING
    }

    /// Has a quorum confirmed `peer` dead?
    #[inline]
    pub(crate) fn is_dead(&self, peer: NodeId) -> bool {
        self.status[peer].load(Ordering::Relaxed) == DEAD
    }

    /// Current view epoch (number of confirmed deaths so far).
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Epoch at which `peer` was confirmed dead, if it was.
    pub(crate) fn death_epoch(&self, peer: NodeId) -> Option<u64> {
        match self.death_epoch[peer].load(Ordering::Relaxed) {
            0 => None,
            e => Some(e),
        }
    }

    /// Alive → Suspected. Returns false if the peer was not Alive.
    pub(crate) fn suspect(&self, peer: NodeId) -> bool {
        self.status[peer]
            .compare_exchange(ALIVE, SUSPECTED, Ordering::Release, Ordering::Relaxed)
            .is_ok()
    }

    /// Suspected → Alive (refuted suspicion). Returns false if the peer
    /// was not Suspected — in particular a Dead peer stays dead.
    pub(crate) fn readmit(&self, peer: NodeId) -> bool {
        self.status[peer]
            .compare_exchange(SUSPECTED, ALIVE, Ordering::Release, Ordering::Relaxed)
            .is_ok()
    }

    /// Suspected → Dead, stamping a fresh epoch. Returns the death epoch,
    /// or `None` if the peer was not Suspected (a declaration must go
    /// through suspicion; double-confirms are rejected).
    pub(crate) fn confirm_dead(&self, peer: NodeId) -> Option<u64> {
        if self.status[peer]
            .compare_exchange(SUSPECTED, DEAD, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        let e = self.epoch.fetch_add(1, Ordering::Release) + 1;
        self.death_epoch[peer].store(e, Ordering::Release);
        Some(e)
    }

    /// Dead → Alive, for a *restarted* identity (DESIGN.md §14): the node
    /// went down for real, recovered its durable state, and is rejoining
    /// cold. This is deliberately NOT `readmit` — a refuted suspicion
    /// means the peer never died and keeps its state; a restart admission
    /// means the peer's volatile state is gone and every consumer must
    /// treat it as a fresh identity. Burns a fresh view epoch (stamped on
    /// the returned value and carried by `RtMsg::PeerRestarted`) so
    /// straggling death declarations of the old incarnation are fenced as
    /// stale. Returns `None` if the peer was not Dead.
    pub(crate) fn restart(&self, peer: NodeId) -> Option<u64> {
        if self.status[peer]
            .compare_exchange(DEAD, ALIVE, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        self.death_epoch[peer].store(0, Ordering::Release);
        Some(self.epoch.fetch_add(1, Ordering::Release) + 1)
    }

    /// Joining → Alive: the members voted the provisioned node in
    /// (DESIGN.md §15). Burns a fresh view epoch — like [`Self::restart`],
    /// admission changes who the protocol may talk to, and stragglers
    /// stamped with an older epoch must be fenceable. Returns `None` if
    /// the peer was not Joining (double admissions are rejected, and an
    /// Alive/Suspected/Dead peer can never be "joined").
    pub(crate) fn admit(&self, peer: NodeId) -> Option<u64> {
        if self.status[peer]
            .compare_exchange(JOINING, ALIVE, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        Some(self.epoch.fetch_add(1, Ordering::Release) + 1)
    }
}

/// Majority threshold for declaring a suspect dead: the electorate is every
/// node except the suspect (the suspector counts its own observation), so
/// `nodes - 1` voters and a strict majority of them must confirm. A 2-node
/// cluster degenerates to the suspector deciding alone (electorate of 1);
/// 3 nodes need 2 confirmations.
pub(crate) fn quorum_needed(nodes: usize) -> usize {
    debug_assert!(nodes >= 2);
    (nodes - 1) / 2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_alive_suspected_dead_is_monotone() {
        let m = MembershipView::new(3);
        assert_eq!(m.health(2), PeerHealth::Alive);
        assert!(!m.is_dead(2));
        assert_eq!(m.confirm_dead(2), None, "death requires suspicion first");
        assert!(m.suspect(2));
        assert!(!m.suspect(2), "double suspicion rejected");
        assert_eq!(m.health(2), PeerHealth::Suspected);
        assert_eq!(m.confirm_dead(2), Some(1));
        assert_eq!(m.health(2), PeerHealth::Dead);
        assert!(m.is_dead(2));
        assert_eq!(m.confirm_dead(2), None, "double confirm rejected");
        assert!(!m.readmit(2), "the dead stay dead");
        assert!(!m.suspect(2));
    }

    #[test]
    fn refuted_suspicion_readmits() {
        let m = MembershipView::new(2);
        assert!(m.suspect(1));
        assert!(m.readmit(1));
        assert_eq!(m.health(1), PeerHealth::Alive);
        assert_eq!(m.epoch(), 0, "a refutation does not burn an epoch");
        assert_eq!(m.death_epoch(1), None);
        // The cycle can repeat.
        assert!(m.suspect(1));
        assert_eq!(m.confirm_dead(1), Some(1));
    }

    #[test]
    fn epochs_increase_per_confirmed_death() {
        let m = MembershipView::new(4);
        m.suspect(1);
        m.suspect(3);
        assert_eq!(m.confirm_dead(3), Some(1));
        assert_eq!(m.confirm_dead(1), Some(2));
        assert_eq!(m.epoch(), 2);
        assert_eq!(m.death_epoch(3), Some(1));
        assert_eq!(m.death_epoch(1), Some(2));
        assert_eq!(m.death_epoch(0), None);
    }

    #[test]
    fn restart_is_the_only_way_back_from_dead() {
        let m = MembershipView::new(3);
        assert_eq!(m.restart(2), None, "a live peer cannot restart");
        m.suspect(2);
        assert_eq!(m.restart(2), None, "a suspect is refuted, not restarted");
        assert_eq!(m.confirm_dead(2), Some(1));
        assert!(!m.readmit(2), "refutation path stays closed for the dead");
        assert_eq!(m.restart(2), Some(2), "restart burns a fresh epoch");
        assert_eq!(m.health(2), PeerHealth::Alive);
        assert_eq!(m.death_epoch(2), None, "death stamp cleared");
        assert_eq!(m.epoch(), 2);
        // The new incarnation can die (and restart) again.
        assert!(m.suspect(2));
        assert_eq!(m.confirm_dead(2), Some(3));
        assert_eq!(m.restart(2), Some(4));
    }

    #[test]
    fn leases_track_the_latest_receipt() {
        let m = MembershipView::new(2);
        assert!(m.lease_fresh(1, 0, 100), "fresh at time zero");
        assert!(m.lease_fresh(1, 100, 100));
        assert!(!m.lease_fresh(1, 101, 100));
        m.note_heard(1, 1_000);
        m.note_heard(1, 500); // stale stamp cannot roll the lease back
        assert_eq!(m.last_heard(1), 1_000);
        assert!(m.lease_fresh(1, 1_100, 100));
        assert!(!m.lease_fresh(1, 1_101, 100));
    }

    #[test]
    fn joining_is_admitted_under_a_burned_epoch() {
        let m = MembershipView::new_with_joining(4, 3);
        assert_eq!(m.health(0), PeerHealth::Alive);
        assert_eq!(m.health(2), PeerHealth::Alive);
        assert_eq!(m.health(3), PeerHealth::Joining);
        assert!(m.is_joining(3));
        assert!(!m.is_dead(3), "a joiner is not dead");
        assert!(!m.suspect(3), "a joiner cannot be suspected");
        assert_eq!(m.confirm_dead(3), None, "nor confirmed dead");
        assert_eq!(m.admit(3), Some(1), "admission burns a fresh epoch");
        assert_eq!(m.health(3), PeerHealth::Alive);
        assert!(!m.is_joining(3));
        assert_eq!(m.admit(3), None, "double admission rejected");
        assert_eq!(m.epoch(), 1);
        // An admitted member follows the ordinary lifecycle.
        assert!(m.suspect(3));
        assert_eq!(m.confirm_dead(3), Some(2));
        assert_eq!(m.admit(3), None, "a dead peer restarts, never re-joins");
        assert_eq!(m.restart(3), Some(3));
    }

    #[test]
    fn plain_view_has_no_joiners() {
        let m = MembershipView::new(3);
        for peer in 0..3 {
            assert!(!m.is_joining(peer));
            assert_eq!(m.health(peer), PeerHealth::Alive);
        }
        assert_eq!(m.admit(1), None, "nothing to admit in a static cluster");
    }

    #[test]
    fn quorum_is_a_majority_of_everyone_but_the_suspect() {
        assert_eq!(quorum_needed(2), 1, "suspector decides alone");
        assert_eq!(quorum_needed(3), 2, "the issue's 2-of-3");
        assert_eq!(quorum_needed(4), 2);
        assert_eq!(quorum_needed(5), 3);
    }
}
