//! Per-runtime-thread cache regions (Figure 7).
//!
//! "Each runtime thread has its own independent cache region and a
//! corresponding scanning pointer, which allows DArray to avoid data races
//! and increase concurrency. The cache eviction policy is governed by two
//! parameters: low watermark and high watermark." (§4.2)

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::msg::{ArrayId, ChunkId};

/// A point-in-time snapshot of one runtime thread's cache pool, for
/// observability of placement skew (which pools fill up, which evict).
/// Obtained via [`crate::Cluster::pool_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// First absolute line index of the pool within the node's region.
    pub base: u32,
    /// Total lines in the pool.
    pub lines: u32,
    /// Lines currently occupied (lines - free).
    pub occupied: u32,
    /// High-water mark of `occupied` over the pool's lifetime.
    pub peak_occupied: u32,
    /// Total successful line allocations.
    pub allocs: u64,
    /// Watermark-scan evictions charged to this pool's runtime thread.
    pub evictions: u64,
}

/// A contiguous range of cachelines owned by one runtime thread, with the
/// free list, scanning pointer and watermark bookkeeping.
///
/// The *data* of the cachelines lives in the node's cache `MemoryRegion`
/// (word offset = `line * chunk_size`); this structure only manages
/// allocation.
pub(crate) struct CacheRegion {
    /// First line index of this region (absolute within the node).
    base: u32,
    /// Number of lines in this region.
    lines: u32,
    /// Reclamation trigger: free-count strictly below this starts a scan.
    low: u32,
    /// Reclamation target: scanning stops once free-count reaches this.
    high: u32,
    /// Total successful allocations (relaxed; observability only).
    allocs: AtomicU64,
    /// Evictions charged to this pool by its runtime thread's watermark
    /// scan (relaxed; observability only).
    evictions: AtomicU64,
    /// High-water mark of occupied lines (relaxed; observability only).
    peak_occupied: AtomicU64,
    inner: Mutex<Inner>,
}

struct Inner {
    free: Vec<u32>,
    /// Scanning pointer: absolute line index of the next eviction candidate.
    scan: u32,
    /// Which (array, chunk) currently occupies each line of this region
    /// (indexed by `line - base`).
    owner: Vec<Option<(ArrayId, ChunkId)>>,
}

impl CacheRegion {
    pub(crate) fn new(base: u32, lines: u32, low_frac: f64, high_frac: f64) -> Self {
        assert!(lines > 0);
        let low = ((lines as f64 * low_frac).floor() as u32).min(lines);
        let high = ((lines as f64 * high_frac).ceil() as u32).clamp(low, lines);
        Self {
            base,
            lines,
            low,
            high,
            allocs: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            peak_occupied: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                free: (base..base + lines).rev().collect(),
                scan: base,
                owner: vec![None; lines as usize],
            }),
        }
    }

    /// Number of free lines.
    pub(crate) fn free_count(&self) -> u32 {
        self.inner.lock().free.len() as u32
    }

    /// True once allocation should trigger reclamation (free < low
    /// watermark).
    pub(crate) fn below_low(&self) -> bool {
        self.free_count() < self.low
    }

    /// True while reclamation should continue (free < high watermark).
    pub(crate) fn below_high(&self) -> bool {
        self.free_count() < self.high
    }

    /// Allocate a line for `(array, chunk)`. Returns `None` when empty (the
    /// caller reclaims and retries).
    pub(crate) fn alloc(&self, array: ArrayId, chunk: ChunkId) -> Option<u32> {
        let mut g = self.inner.lock();
        let line = g.free.pop()?;
        let slot = (line - self.base) as usize;
        debug_assert!(g.owner[slot].is_none());
        g.owner[slot] = Some((array, chunk));
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let occupied = (self.lines as usize - g.free.len()) as u64;
        self.peak_occupied.fetch_max(occupied, Ordering::Relaxed);
        Some(line)
    }

    /// Charge one watermark-scan eviction to this pool.
    pub(crate) fn note_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Observability snapshot of this pool.
    pub(crate) fn stats(&self) -> PoolStats {
        let free = self.free_count();
        PoolStats {
            base: self.base,
            lines: self.lines,
            occupied: self.lines - free,
            peak_occupied: self.peak_occupied.load(Ordering::Relaxed) as u32,
            allocs: self.allocs.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Return a line to the free list.
    pub(crate) fn free(&self, line: u32) {
        let mut g = self.inner.lock();
        let slot = (line - self.base) as usize;
        debug_assert!(g.owner[slot].is_some(), "double free of line {line}");
        g.owner[slot] = None;
        g.free.push(line);
    }

    /// Current occupant of `line`.
    pub(crate) fn owner(&self, line: u32) -> Option<(ArrayId, ChunkId)> {
        self.inner.lock().owner[(line - self.base) as usize]
    }

    /// Advance the scanning pointer (cyclic over this region) and return the
    /// line it passed over.
    pub(crate) fn scan_next(&self) -> u32 {
        let mut g = self.inner.lock();
        let line = g.scan;
        g.scan = if g.scan + 1 >= self.base + self.lines {
            self.base
        } else {
            g.scan + 1
        };
        line
    }

    /// Total lines in this region.
    pub(crate) fn capacity(&self) -> u32 {
        self.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let c = CacheRegion::new(10, 4, 0.3, 0.5);
        assert_eq!(c.free_count(), 4);
        let a = c.alloc(0, 1).unwrap();
        assert!((10..14).contains(&a));
        assert_eq!(c.owner(a), Some((0, 1)));
        assert_eq!(c.free_count(), 3);
        c.free(a);
        assert_eq!(c.owner(a), None);
        assert_eq!(c.free_count(), 4);
    }

    #[test]
    fn exhaustion_returns_none() {
        let c = CacheRegion::new(0, 2, 0.3, 0.5);
        assert!(c.alloc(0, 0).is_some());
        assert!(c.alloc(0, 1).is_some());
        assert!(c.alloc(0, 2).is_none());
    }

    #[test]
    fn watermarks_follow_paper_defaults() {
        // 100 lines, low 30 %, high 50 %.
        let c = CacheRegion::new(0, 100, 0.3, 0.5);
        assert!(!c.below_low());
        let mut held = Vec::new();
        for i in 0..71 {
            held.push(c.alloc(0, i).unwrap());
        }
        // 29 free < 30 -> below low; also below high (29 < 50).
        assert!(c.below_low());
        assert!(c.below_high());
        c.free(held.pop().unwrap());
        // 30 free: not below low anymore, still below high.
        assert!(!c.below_low());
        assert!(c.below_high());
        for _ in 0..20 {
            c.free(held.pop().unwrap());
        }
        // 50 free: reclamation target reached.
        assert!(!c.below_high());
    }

    #[test]
    fn scan_pointer_cycles_within_region() {
        let c = CacheRegion::new(5, 3, 0.3, 0.5);
        let seq: Vec<u32> = (0..7).map(|_| c.scan_next()).collect();
        assert_eq!(seq, vec![5, 6, 7, 5, 6, 7, 5]);
    }

    #[test]
    fn scan_partition_covers_every_line_exactly_once() {
        // Simulate the per-node pool layout: pools tiling 0..capacity with
        // uneven sizes (as Placement produces for capacity % threads != 0).
        // One full scan cycle of every pool must visit each line of the
        // node's region exactly once — no line scanned by two threads,
        // none by zero.
        let capacity = 10u32;
        let pools = [
            CacheRegion::new(0, 4, 0.3, 0.5),
            CacheRegion::new(4, 3, 0.3, 0.5),
            CacheRegion::new(7, 3, 0.3, 0.5),
        ];
        let mut visits = vec![0u32; capacity as usize];
        for p in &pools {
            for _ in 0..p.capacity() {
                visits[p.scan_next() as usize] += 1;
            }
        }
        assert!(
            visits.iter().all(|&v| v == 1),
            "scan coverage must be a partition: {visits:?}"
        );
    }

    #[test]
    fn pool_stats_track_occupancy_allocs_and_evictions() {
        let c = CacheRegion::new(8, 4, 0.3, 0.5);
        assert_eq!(
            c.stats(),
            PoolStats {
                base: 8,
                lines: 4,
                ..Default::default()
            }
        );
        let a = c.alloc(0, 0).unwrap();
        let b = c.alloc(0, 1).unwrap();
        let s = c.stats();
        assert_eq!((s.occupied, s.peak_occupied, s.allocs), (2, 2, 2));
        c.free(a);
        c.note_eviction();
        c.free(b);
        c.note_eviction();
        let s = c.stats();
        // Peak is a high-water mark; occupancy drops, the peak does not.
        assert_eq!((s.occupied, s.peak_occupied, s.evictions), (0, 2, 2));
        c.alloc(1, 7).unwrap();
        assert_eq!(c.stats().allocs, 3);
    }

    #[test]
    fn tiny_region_watermarks_are_sane() {
        let c = CacheRegion::new(0, 1, 0.3, 0.5);
        assert_eq!(c.capacity(), 1);
        assert!(!c.below_low()); // low watermark floors to 0
        let l = c.alloc(0, 0).unwrap();
        assert!(c.below_high());
        c.free(l);
    }
}
