//! The operator registry behind the **Operate** interface (§4.3).
//!
//! Applications register operators that are *associative and commutative*
//! (`val ⊕ arg1 ⊕ arg2 = val ⊕ (arg1 ⊕ arg2)`, Equation 1) together with an
//! identity element. The runtime uses the identity to initialize operand
//! cachelines in the Operated state and the combine function both for local
//! combining and for the home-node reduction.

use parking_lot::RwLock;

use crate::element::Element;

/// Identifier assigned by [`OpRegistry::register`]; passed to
/// [`crate::DArray::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

struct RegisteredOp {
    name: String,
    identity: u64,
    combine: Box<dyn Fn(u64, u64) -> u64 + Send + Sync>,
}

/// Cluster-wide operator registry. Registration typically happens during
/// application start-up (Figure 8, line 2); lookups on the combining fast
/// path are read-lock only.
#[derive(Default)]
pub struct OpRegistry {
    ops: RwLock<Vec<RegisteredOp>>,
}

impl OpRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an associative + commutative operator with its identity
    /// element and obtain an [`OpId`] (the paper's `registerOp`).
    ///
    /// The identity must satisfy `combine(identity, x) == x`; this is
    /// checked probabilistically in debug builds via the registry tests and
    /// by property tests in this module.
    pub fn register<T, F>(&self, name: &str, identity: T, combine: F) -> OpId
    where
        T: Element,
        F: Fn(T, T) -> T + Send + Sync + 'static,
    {
        let f =
            move |a: u64, b: u64| -> u64 { combine(T::from_bits(a), T::from_bits(b)).to_bits() };
        let mut ops = self.ops.write();
        let id = OpId(ops.len() as u32);
        ops.push(RegisteredOp {
            name: name.to_string(),
            identity: identity.to_bits(),
            combine: Box::new(f),
        });
        id
    }

    /// Combine two raw words under `op`.
    #[inline]
    pub fn combine(&self, op: OpId, a: u64, b: u64) -> u64 {
        let ops = self.ops.read();
        (ops[op.0 as usize].combine)(a, b)
    }

    /// The identity word of `op`.
    #[inline]
    pub fn identity(&self, op: OpId) -> u64 {
        self.ops.read()[op.0 as usize].identity
    }

    /// Registered operator name (diagnostics).
    pub fn name(&self, op: OpId) -> String {
        self.ops.read()[op.0 as usize].name.clone()
    }

    /// Number of registered operators.
    pub fn len(&self) -> usize {
        self.ops.read().len()
    }

    /// True if no operator has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Convenience constructors for the operators the paper uses.
impl OpRegistry {
    /// `write_add` over `f64` (PageRank's rank accumulation, Figure 8).
    pub fn register_add_f64(&self) -> OpId {
        self.register("write_add_f64", 0.0f64, |a, b| a + b)
    }

    /// `write_add` over `u64`.
    pub fn register_add_u64(&self) -> OpId {
        self.register("write_add_u64", 0u64, |a, b| a.wrapping_add(b))
    }

    /// `write_min` over `u64` (Connected Components' label propagation).
    pub fn register_min_u64(&self) -> OpId {
        self.register("write_min_u64", u64::MAX, |a, b| a.min(b))
    }

    /// `write_max` over `u64`.
    pub fn register_max_u64(&self) -> OpId {
        self.register("write_max_u64", 0u64, |a, b| a.max(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_sequential_ids() {
        let r = OpRegistry::new();
        let a = r.register_add_u64();
        let b = r.register_min_u64();
        assert_eq!(a, OpId(0));
        assert_eq!(b, OpId(1));
        assert_eq!(r.len(), 2);
        assert_eq!(r.name(a), "write_add_u64");
    }

    #[test]
    fn combine_applies_the_operator() {
        let r = OpRegistry::new();
        let add = r.register_add_u64();
        let min = r.register_min_u64();
        assert_eq!(r.combine(add, 2, 3), 5);
        assert_eq!(r.combine(min, 2, 3), 2);
    }

    #[test]
    fn identity_is_neutral() {
        let r = OpRegistry::new();
        let add = r.register_add_f64();
        let min = r.register_min_u64();
        let max = r.register_max_u64();
        for x in [0u64, 1, 7, u64::MAX / 2] {
            assert_eq!(r.combine(min, r.identity(min), x), x);
            assert_eq!(r.combine(max, r.identity(max), x), x);
        }
        let x = 3.25f64;
        assert_eq!(
            f64::from_bits(r.combine(add, r.identity(add), x.to_bits())),
            x
        );
    }

    #[test]
    fn typed_operator_roundtrips_through_bits() {
        let r = OpRegistry::new();
        let op = r.register("sub_abs", 0i64, |a: i64, b: i64| (a - b).abs());
        let out = r.combine(op, (-5i64).to_bits(), 3i64.to_bits());
        assert_eq!(i64::from_bits(out), 8);
    }

    #[test]
    fn equation_1_associativity_for_builtin_ops() {
        // val ⊕ arg1 ⊕ arg2 == val ⊕ (arg1 ⊕ arg2) for the shipped ops.
        let r = OpRegistry::new();
        let ops = [
            r.register_add_u64(),
            r.register_min_u64(),
            r.register_max_u64(),
        ];
        let vals = [0u64, 1, 99, 1 << 40, u64::MAX >> 1];
        for &op in &ops {
            for &v in &vals {
                for &a1 in &vals {
                    for &a2 in &vals {
                        let left = r.combine(op, r.combine(op, v, a1), a2);
                        let right = r.combine(op, v, r.combine(op, a1, a2));
                        assert_eq!(left, right);
                    }
                }
            }
        }
    }
}
