//! Communication layer (§3.1, §4.5): the adapter between runtime threads
//! and the simulated RNIC.
//!
//! An **Rx thread** per node polls the NIC's receive queue and routes each
//! protocol message to the runtime thread owning the message's chunk. **Tx
//! threads** are optional (`ClusterConfig::tx_threads`): when enabled,
//! runtime threads enqueue RDMA requests on the RDMA-request queue and a
//! dedicated Tx thread posts them (the paper's design, which reduces queue
//! pairs from n²·t to n²·c); when disabled, the runtime posts inline and
//! pays the posting cost itself.
//!
//! ## Reliable delivery (fault mode)
//!
//! When `ClusterConfig::fault` is set the fabric may jitter, stall, or drop
//! messages and crash whole nodes, so the layer switches to a reliable
//! channel run by one **reliability agent** thread per node:
//!
//! * Every outgoing protocol RPC is tagged with a per-(sender → receiver)
//!   **sequence number** and tracked until a cumulative ack covers it.
//! * The agent sleeps with [`Mailbox::recv_deadline`]; when the oldest
//!   unacked message's timer expires it **retransmits** the SEND with
//!   exponential backoff. One-sided WRITEs are *not* retransmitted: the
//!   fault model never drops them, and re-writing a buffer the receiver may
//!   already be using would corrupt it — only the notification SEND repeats,
//!   which is idempotent.
//! * The Rx thread delivers each link's messages **in sequence order**
//!   (buffering out-of-order arrivals), so the coherence protocol above
//!   keeps its RC-FIFO assumptions verbatim, and **suppresses duplicates**
//!   from retransmissions — re-acking them, since a duplicate usually means
//!   the previous ack was lost.
//! * A message retried past `FaultConfig::max_retries` declares the peer
//!   **down** (fail-stop): outstanding traffic to it is discarded and every
//!   runtime thread receives `RtMsg::PeerDown` to abort in-flight state.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use dsim::{Ctx, Mailbox, VTime};
use rdma_fabric::{MemoryRegion, Nic, NodeId};

use crate::msg::{ArrayId, NetMsg, Rpc, RtMsg};
use crate::shared::ClusterShared;
use crate::stats::NodeStats;

/// Wire size of a cumulative ack payload.
const ACK_BYTES: u64 = 8;

/// A work request on the RDMA-request queue (runtime → Tx thread).
pub(crate) enum TxReq {
    Send {
        dst: NodeId,
        array: ArrayId,
        rpc: Rpc,
    },
    WriteSend {
        dst: NodeId,
        region: MemoryRegion,
        offset: usize,
        data: Vec<u64>,
        array: ArrayId,
        rpc: Rpc,
    },
    Shutdown,
}

/// A work request for the reliability agent (runtime/Rx → agent).
pub(crate) enum RelMsg {
    /// Reliable two-sided SEND.
    Send {
        dst: NodeId,
        array: ArrayId,
        rpc: Rpc,
    },
    /// One-sided WRITE + reliable notification SEND.
    WriteSend {
        dst: NodeId,
        region: MemoryRegion,
        offset: usize,
        data: Vec<u64>,
        array: ArrayId,
        rpc: Rpc,
    },
    /// Cumulative ack from `from`, forwarded by the Rx thread.
    Ack {
        from: NodeId,
        seq: u64,
    },
    Shutdown,
}

/// Handle the runtime uses to emit network traffic, hiding whether a Tx
/// thread or the reliability agent is in between.
pub(crate) struct CommHandle {
    pub nic: Arc<Nic<NetMsg>>,
    pub tx: Option<Mailbox<TxReq>>,
    /// Reliability agent queue; takes precedence over `tx` for remote
    /// destinations when fault mode is on.
    pub rel: Option<Mailbox<RelMsg>>,
    pub node: NodeId,
}

impl CommHandle {
    /// Two-sided protocol message.
    pub(crate) fn send(&self, ctx: &mut Ctx, dst: NodeId, array: ArrayId, rpc: Rpc) {
        if let Some(rel) = &self.rel {
            if dst != self.node {
                rel.send(ctx, RelMsg::Send { dst, array, rpc }, 0);
                return;
            }
        }
        match &self.tx {
            Some(tx) => tx.send(ctx, TxReq::Send { dst, array, rpc }, 0),
            None => {
                let bytes = rpc.payload_bytes();
                self.nic.send(ctx, dst, NetMsg::Rpc { array, rpc }, bytes);
            }
        }
    }

    /// One-sided data WRITE followed by a notification message (RC FIFO
    /// guarantees the data lands first).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn write_send(
        &self,
        ctx: &mut Ctx,
        dst: NodeId,
        region: &MemoryRegion,
        offset: usize,
        data: Vec<u64>,
        array: ArrayId,
        rpc: Rpc,
    ) {
        if let Some(rel) = &self.rel {
            if dst != self.node {
                rel.send(
                    ctx,
                    RelMsg::WriteSend {
                        dst,
                        region: region.clone(),
                        offset,
                        data,
                        array,
                        rpc,
                    },
                    0,
                );
                return;
            }
        }
        match &self.tx {
            Some(tx) => tx.send(
                ctx,
                TxReq::WriteSend {
                    dst,
                    region: region.clone(),
                    offset,
                    data,
                    array,
                    rpc,
                },
                0,
            ),
            None => {
                let bytes = rpc.payload_bytes();
                self.nic.rdma_write_send(
                    ctx,
                    dst,
                    region,
                    offset,
                    data,
                    NetMsg::Rpc { array, rpc },
                    bytes,
                );
            }
        }
    }
}

/// Body of a Tx thread: drain the RDMA-request queue and post verbs.
pub(crate) fn tx_thread_main(ctx: &mut Ctx, nic: Arc<Nic<NetMsg>>, queue: Mailbox<TxReq>) {
    loop {
        match queue.recv(ctx) {
            TxReq::Send { dst, array, rpc } => {
                let bytes = rpc.payload_bytes();
                nic.send(ctx, dst, NetMsg::Rpc { array, rpc }, bytes);
            }
            TxReq::WriteSend {
                dst,
                region,
                offset,
                data,
                array,
                rpc,
            } => {
                let bytes = rpc.payload_bytes();
                nic.rdma_write_send(
                    ctx,
                    dst,
                    &region,
                    offset,
                    data,
                    NetMsg::Rpc { array, rpc },
                    bytes,
                );
            }
            TxReq::Shutdown => break,
        }
    }
}

/// An unacked reliable RPC awaiting its cumulative ack.
struct Pending {
    seq: u64,
    array: ArrayId,
    rpc: Rpc,
    deadline: VTime,
    retries: u32,
}

/// Body of the per-node reliability agent (fault mode only): posts every
/// outgoing RPC with a sequence number, tracks it until acked, retransmits
/// on timeout with exponential backoff, and declares peers down when the
/// retry budget is exhausted.
pub(crate) fn rel_thread_main(
    ctx: &mut Ctx,
    shared: Arc<ClusterShared>,
    node: NodeId,
    queue: Mailbox<RelMsg>,
) {
    let nic = shared.nics[node].clone();
    let fault = shared
        .cfg
        .fault
        .as_ref()
        .expect("reliability agent requires FaultConfig");
    let timeout = fault.rpc_timeout_ns;
    let max_retries = fault.max_retries;
    let nodes = shared.cfg.nodes;
    let stats = shared.stats[node].clone();
    let mut next_seq = vec![0u64; nodes];
    let mut outstanding: Vec<VecDeque<Pending>> = (0..nodes).map(|_| VecDeque::new()).collect();
    loop {
        // Only each queue's head timer matters: acks are cumulative, and a
        // head retransmit repairs the gap that blocks everything behind it.
        let next_deadline = outstanding
            .iter()
            .filter_map(|q| q.front().map(|p| p.deadline))
            .min();
        let msg = match next_deadline {
            Some(d) => queue.recv_deadline(ctx, d),
            None => Some(queue.recv(ctx)),
        };
        match msg {
            Some(RelMsg::Send { dst, array, rpc }) => {
                if shared.is_peer_down(node, dst) {
                    continue; // fail-stop: traffic to a dead peer is dropped
                }
                let seq = next_seq[dst];
                next_seq[dst] += 1;
                let bytes = rpc.payload_bytes();
                nic.send(
                    ctx,
                    dst,
                    NetMsg::SeqRpc {
                        seq,
                        array,
                        rpc: rpc.clone(),
                    },
                    bytes,
                );
                outstanding[dst].push_back(Pending {
                    seq,
                    array,
                    rpc,
                    deadline: ctx.now() + timeout,
                    retries: 0,
                });
            }
            Some(RelMsg::WriteSend {
                dst,
                region,
                offset,
                data,
                array,
                rpc,
            }) => {
                if shared.is_peer_down(node, dst) {
                    continue;
                }
                let seq = next_seq[dst];
                next_seq[dst] += 1;
                let bytes = rpc.payload_bytes();
                nic.rdma_write_send(
                    ctx,
                    dst,
                    &region,
                    offset,
                    data,
                    NetMsg::SeqRpc {
                        seq,
                        array,
                        rpc: rpc.clone(),
                    },
                    bytes,
                );
                outstanding[dst].push_back(Pending {
                    seq,
                    array,
                    rpc,
                    deadline: ctx.now() + timeout,
                    retries: 0,
                });
            }
            Some(RelMsg::Ack { from, seq }) => {
                while outstanding[from].front().is_some_and(|p| p.seq < seq) {
                    outstanding[from].pop_front();
                }
            }
            Some(RelMsg::Shutdown) => break,
            None => {
                // Timer fired: retransmit (or give up on) every expired head.
                let now = ctx.now();
                for (dst, queue) in outstanding.iter_mut().enumerate() {
                    let Some(head) = queue.front_mut() else {
                        continue;
                    };
                    if head.deadline > now {
                        continue;
                    }
                    NodeStats::bump(&stats.rpc_timeouts);
                    if head.retries >= max_retries {
                        NodeStats::bump(&stats.peers_down);
                        shared.mark_peer_down(node, dst);
                        queue.clear();
                        for rt in &shared.rt_mailboxes[node] {
                            rt.send(ctx, RtMsg::PeerDown { node: dst }, 0);
                        }
                        continue;
                    }
                    head.retries += 1;
                    head.deadline = now + (timeout << head.retries.min(16));
                    let bytes = head.rpc.payload_bytes();
                    nic.send(
                        ctx,
                        dst,
                        NetMsg::SeqRpc {
                            seq: head.seq,
                            array: head.array,
                            rpc: head.rpc.clone(),
                        },
                        bytes,
                    );
                    NodeStats::bump(&stats.retransmits);
                }
            }
        }
    }
}

/// Body of the per-node Rx thread: poll the NIC and deliver RPCs to the
/// runtime thread that owns each message's chunk. In fault mode it also
/// terminates the reliable channel: in-order delivery, duplicate
/// suppression, and cumulative acknowledgment, per source node.
pub(crate) fn rx_thread_main(ctx: &mut Ctx, shared: Arc<ClusterShared>, node: NodeId) {
    let nic = shared.nics[node].clone();
    let rx = nic.rx();
    let poll_cost = shared.cfg.net.cq_poll_ns;
    let nodes = shared.cfg.nodes;
    let mut next_expected = vec![0u64; nodes];
    let mut reorder: Vec<BTreeMap<u64, (ArrayId, Rpc)>> =
        (0..nodes).map(|_| BTreeMap::new()).collect();
    loop {
        let (src, msg) = rx.recv(ctx);
        ctx.charge(poll_cost);
        match msg {
            NetMsg::Halt => break,
            NetMsg::Rpc { array, rpc } => {
                let chunk = rpc.route_chunk();
                shared
                    .rt_mailbox(node, chunk)
                    .send(ctx, RtMsg::Net { src, array, rpc }, 0);
            }
            NetMsg::SeqRpc { seq, array, rpc } => {
                // A peer this node has declared down gets *silence*, not
                // acks: acking its traffic while the runtime discards it
                // would leave that peer waiting forever on replies that
                // will never come. Going quiet instead lets its own
                // retries exhaust, so the declaration becomes mutual and
                // its blocked requests fail over to `NodeUnavailable`.
                if shared.is_peer_down(node, src) {
                    continue;
                }
                if seq < next_expected[src] || reorder[src].contains_key(&seq) {
                    NodeStats::bump(&shared.stats[node].dup_rpcs);
                } else if seq == next_expected[src] {
                    let chunk = rpc.route_chunk();
                    shared
                        .rt_mailbox(node, chunk)
                        .send(ctx, RtMsg::Net { src, array, rpc }, 0);
                    next_expected[src] += 1;
                    // Release any buffered successors the gap was blocking.
                    while let Some((array, rpc)) = reorder[src].remove(&next_expected[src]) {
                        let chunk = rpc.route_chunk();
                        shared
                            .rt_mailbox(node, chunk)
                            .send(ctx, RtMsg::Net { src, array, rpc }, 0);
                        next_expected[src] += 1;
                    }
                } else {
                    reorder[src].insert(seq, (array, rpc));
                }
                // Ack cumulatively on every receipt — duplicates included,
                // since a duplicate usually means our previous ack was lost.
                nic.send(
                    ctx,
                    src,
                    NetMsg::Ack {
                        seq: next_expected[src],
                    },
                    ACK_BYTES,
                );
            }
            NetMsg::Ack { seq } => {
                if let Some(rel) = &shared.rel_mailboxes[node] {
                    rel.send(ctx, RelMsg::Ack { from: src, seq }, 0);
                }
            }
        }
    }
}
