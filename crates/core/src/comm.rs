//! Communication layer (§3.1, §4.5): the adapter between runtime threads
//! and the simulated RNIC.
//!
//! An **Rx thread** per node polls the NIC's receive queue and routes each
//! protocol message to the runtime thread owning the message's chunk. **Tx
//! threads** are optional (`ClusterConfig::tx_threads`): when enabled,
//! runtime threads enqueue RDMA requests on the RDMA-request queue and a
//! dedicated Tx thread posts them (the paper's design, which reduces queue
//! pairs from n²·t to n²·c); when disabled, the runtime posts inline and
//! pays the posting cost itself.

use std::sync::Arc;

use dsim::{Ctx, Mailbox};
use rdma_fabric::{MemoryRegion, Nic, NodeId};

use crate::msg::{ArrayId, NetMsg, Rpc, RtMsg};
use crate::shared::ClusterShared;

/// A work request on the RDMA-request queue (runtime → Tx thread).
pub(crate) enum TxReq {
    Send {
        dst: NodeId,
        array: ArrayId,
        rpc: Rpc,
    },
    WriteSend {
        dst: NodeId,
        region: MemoryRegion,
        offset: usize,
        data: Vec<u64>,
        array: ArrayId,
        rpc: Rpc,
    },
    Shutdown,
}

/// Handle the runtime uses to emit network traffic, hiding whether a Tx
/// thread is in between.
pub(crate) struct CommHandle {
    pub nic: Arc<Nic<NetMsg>>,
    pub tx: Option<Mailbox<TxReq>>,
}

impl CommHandle {
    /// Two-sided protocol message.
    pub(crate) fn send(&self, ctx: &mut Ctx, dst: NodeId, array: ArrayId, rpc: Rpc) {
        match &self.tx {
            Some(tx) => tx.send(ctx, TxReq::Send { dst, array, rpc }, 0),
            None => {
                let bytes = rpc.payload_bytes();
                self.nic.send(ctx, dst, NetMsg::Rpc { array, rpc }, bytes);
            }
        }
    }

    /// One-sided data WRITE followed by a notification message (RC FIFO
    /// guarantees the data lands first).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn write_send(
        &self,
        ctx: &mut Ctx,
        dst: NodeId,
        region: &MemoryRegion,
        offset: usize,
        data: Vec<u64>,
        array: ArrayId,
        rpc: Rpc,
    ) {
        match &self.tx {
            Some(tx) => tx.send(
                ctx,
                TxReq::WriteSend {
                    dst,
                    region: region.clone(),
                    offset,
                    data,
                    array,
                    rpc,
                },
                0,
            ),
            None => {
                let bytes = rpc.payload_bytes();
                self.nic
                    .rdma_write_send(ctx, dst, region, offset, data, NetMsg::Rpc { array, rpc }, bytes);
            }
        }
    }
}

/// Body of a Tx thread: drain the RDMA-request queue and post verbs.
pub(crate) fn tx_thread_main(ctx: &mut Ctx, nic: Arc<Nic<NetMsg>>, queue: Mailbox<TxReq>) {
    loop {
        match queue.recv(ctx) {
            TxReq::Send { dst, array, rpc } => {
                let bytes = rpc.payload_bytes();
                nic.send(ctx, dst, NetMsg::Rpc { array, rpc }, bytes);
            }
            TxReq::WriteSend {
                dst,
                region,
                offset,
                data,
                array,
                rpc,
            } => {
                let bytes = rpc.payload_bytes();
                nic.rdma_write_send(ctx, dst, &region, offset, data, NetMsg::Rpc { array, rpc }, bytes);
            }
            TxReq::Shutdown => break,
        }
    }
}

/// Body of the per-node Rx thread: poll the NIC and deliver RPCs to the
/// runtime thread that owns each message's chunk.
pub(crate) fn rx_thread_main(ctx: &mut Ctx, shared: Arc<ClusterShared>, node: NodeId) {
    let nic = shared.nics[node].clone();
    let rx = nic.rx();
    let poll_cost = shared.cfg.net.cq_poll_ns;
    loop {
        let (src, msg) = rx.recv(ctx);
        ctx.charge(poll_cost);
        match msg {
            NetMsg::Halt => break,
            NetMsg::Rpc { array, rpc } => {
                let chunk = rpc.route_chunk();
                shared
                    .rt_mailbox(node, chunk)
                    .send(ctx, RtMsg::Net { src, array, rpc }, 0);
            }
        }
    }
}
