//! Communication layer (§3.1, §4.5): the adapter between runtime threads
//! and the network, speaking only the backend-agnostic
//! [`Transport`] trait (simulated NIC by default, real TCP sockets behind
//! the `tcp-transport` feature — DESIGN.md §13).
//!
//! An **Rx thread** per node polls the transport's receive queue and routes each
//! protocol message to the runtime thread owning the message's chunk. **Tx
//! threads** are optional (`ClusterConfig::tx_threads`): when enabled,
//! runtime threads enqueue RDMA requests on the RDMA-request queue and a
//! dedicated Tx thread posts them (the paper's design, which reduces queue
//! pairs from n²·t to n²·c); when disabled, the runtime posts inline and
//! pays the posting cost itself.
//!
//! ## Reliable delivery (fault mode)
//!
//! When `ClusterConfig::fault` is set the fabric may jitter, stall, or drop
//! messages and crash whole nodes, so the layer switches to a reliable
//! channel run by one **reliability agent** thread per node:
//!
//! * Every outgoing protocol RPC is tagged with a per-(sender → receiver)
//!   **sequence number** and tracked until a cumulative ack covers it.
//! * The agent sleeps with [`Mailbox::recv_deadline`]; when the oldest
//!   unacked message's timer expires it **retransmits** the SEND with
//!   exponential backoff. One-sided WRITEs are *not* retransmitted: the
//!   fault model never drops them, and re-writing a buffer the receiver may
//!   already be using would corrupt it — only the notification SEND repeats,
//!   which is idempotent.
//! * The Rx thread delivers each link's messages **in sequence order**
//!   (buffering out-of-order arrivals), so the coherence protocol above
//!   keeps its RC-FIFO assumptions verbatim, and **suppresses duplicates**
//!   from retransmissions — re-acking them, since a duplicate usually means
//!   the previous ack was lost.
//!
//! ## Lease membership and quorum death declarations (DESIGN.md §12)
//!
//! The agent is also the node's failure detector, and it never declares a
//! peer dead on its own:
//!
//! * Every message the Rx thread receives renews the sender's **lease**
//!   (`MembershipView::note_heard`); the agent sends an explicit
//!   `Heartbeat` toward any peer it has been idle with for
//!   `FaultConfig::heartbeat_ns`, so leases stay fresh on idle links.
//! * A message retried past `FaultConfig::max_retries` makes the peer
//!   **Suspected**, not dead. If the suspect's own incoming lease is still
//!   fresh the suspicion is refuted on the spot (the loss is one-way — it
//!   can hear us or at least we can hear it) and retransmission continues.
//! * Otherwise the agent **polls** the rest of the cluster with
//!   `SuspectQuery`; peers vote `alive` iff their own lease on the suspect
//!   is fresh. A majority of the electorate (everyone but the suspect, the
//!   suspector counting itself) confirms the death; a single `alive` vote
//!   refutes it. After `suspect_poll_rounds` rounds, silent voters that
//!   are themselves Suspected or Dead in the local view abstain, so a
//!   shrinking cluster still converges (degenerate quorum).
//! * While a peer is Suspected its outstanding queue is **parked**: no
//!   retransmissions, nothing discarded. A refuted suspicion re-admits the
//!   peer and **replays** every parked SEND (same sequence numbers — the
//!   receiver deduplicates), so a live-but-lossy peer loses nothing. Only
//!   a quorum-confirmed death discards the queue, stamps a fresh
//!   membership epoch, and fans `RtMsg::PeerDown` out to the runtime
//!   threads — the membership view is the *sole* source of those events.

use std::collections::VecDeque;
use std::sync::Arc;

use dsim::{Ctx, Mailbox, VTime};
use rdma_fabric::{MemoryRegion, NodeId, Transport};

use crate::membership::{quorum_needed, MembershipView, PeerHealth};
use crate::msg::{ArrayId, NetMsg, Rpc, RtMsg};
use crate::shared::ClusterShared;
use crate::stats::NodeStats;

/// A work request on the RDMA-request queue (runtime → Tx thread).
pub(crate) enum TxReq {
    Send {
        dst: NodeId,
        array: ArrayId,
        rpc: Rpc,
    },
    WriteSend {
        dst: NodeId,
        region: MemoryRegion,
        offset: usize,
        data: Vec<u64>,
        array: ArrayId,
        rpc: Rpc,
    },
    Shutdown,
}

/// A work request for the reliability agent (runtime/Rx → agent).
pub(crate) enum RelMsg {
    /// Reliable two-sided SEND.
    Send {
        dst: NodeId,
        array: ArrayId,
        rpc: Rpc,
    },
    /// One-sided WRITE + reliable notification SEND.
    WriteSend {
        dst: NodeId,
        region: MemoryRegion,
        offset: usize,
        data: Vec<u64>,
        array: ArrayId,
        rpc: Rpc,
    },
    /// Cumulative ack from `from`, forwarded by the Rx thread.
    Ack {
        from: NodeId,
        seq: u64,
    },
    /// A peer's quorum poll about `suspect`, forwarded by the Rx thread;
    /// the agent answers with its own lease verdict.
    SuspectQuery {
        from: NodeId,
        suspect: NodeId,
    },
    /// Reset the sender side of the reliable link to `peer`: forget
    /// outstanding frames, restart sequencing from 0, drop any suspicion.
    /// Sent by [`crate::Cluster::restart_peer`] when a restarted peer is
    /// re-admitted; pairs with a [`crate::shared::RxLink::reset`] on both
    /// receiver sides so the link comes up like a cold boot.
    ResetLink {
        peer: NodeId,
    },
    /// A vote answering this node's own poll, forwarded by the Rx thread.
    SuspectVote {
        from: NodeId,
        suspect: NodeId,
        alive: bool,
    },
    /// This (pre-provisioned, `Joining`) node should announce itself to the
    /// live cluster and collect admit votes. Injected by
    /// [`crate::Cluster::join_peer`]; the agent re-announces every
    /// `suspect_poll_ns` until a quorum of survivors has admitted it
    /// (DESIGN.md §15).
    AnnounceJoin,
    /// A joiner's announcement, forwarded by the Rx thread: admit `from`
    /// into this node's view, bring the reliable link up from seq 0 (the
    /// first-contact generalization of `restart_peer`'s reset), and vote.
    JoinReq {
        from: NodeId,
    },
    /// A survivor's ballot on `node`'s join announcement, forwarded by the
    /// Rx thread (meaningful on `node` itself).
    JoinVote {
        from: NodeId,
        node: NodeId,
        admit: bool,
    },
    Shutdown,
}

/// Handle the runtime uses to emit network traffic, hiding whether a Tx
/// thread or the reliability agent is in between.
pub(crate) struct CommHandle {
    pub transport: Arc<dyn Transport<NetMsg>>,
    pub tx: Option<Mailbox<TxReq>>,
    /// Reliability agent queue; takes precedence over `tx` for remote
    /// destinations when fault mode is on.
    pub rel: Option<Mailbox<RelMsg>>,
    pub node: NodeId,
}

impl CommHandle {
    /// Two-sided protocol message.
    pub(crate) fn send(&self, ctx: &mut Ctx, dst: NodeId, array: ArrayId, rpc: Rpc) {
        if let Some(rel) = &self.rel {
            if dst != self.node {
                rel.send(ctx, RelMsg::Send { dst, array, rpc }, 0);
                return;
            }
        }
        match &self.tx {
            Some(tx) => tx.send(ctx, TxReq::Send { dst, array, rpc }, 0),
            None => self.transport.send(ctx, dst, NetMsg::Rpc { array, rpc }),
        }
    }

    /// One-sided data WRITE followed by a notification message (RC FIFO
    /// guarantees the data lands first).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn write_send(
        &self,
        ctx: &mut Ctx,
        dst: NodeId,
        region: &MemoryRegion,
        offset: usize,
        data: Vec<u64>,
        array: ArrayId,
        rpc: Rpc,
    ) {
        if let Some(rel) = &self.rel {
            if dst != self.node {
                rel.send(
                    ctx,
                    RelMsg::WriteSend {
                        dst,
                        region: region.clone(),
                        offset,
                        data,
                        array,
                        rpc,
                    },
                    0,
                );
                return;
            }
        }
        match &self.tx {
            Some(tx) => tx.send(
                ctx,
                TxReq::WriteSend {
                    dst,
                    region: region.clone(),
                    offset,
                    data,
                    array,
                    rpc,
                },
                0,
            ),
            None => {
                self.transport.write_send(
                    ctx,
                    dst,
                    region,
                    offset,
                    data,
                    NetMsg::Rpc { array, rpc },
                );
            }
        }
    }
}

/// Body of a Tx thread: drain the RDMA-request queue and post verbs.
pub(crate) fn tx_thread_main(
    ctx: &mut Ctx,
    transport: Arc<dyn Transport<NetMsg>>,
    queue: Mailbox<TxReq>,
) {
    loop {
        match queue.recv(ctx) {
            TxReq::Send { dst, array, rpc } => {
                transport.send(ctx, dst, NetMsg::Rpc { array, rpc });
            }
            TxReq::WriteSend {
                dst,
                region,
                offset,
                data,
                array,
                rpc,
            } => {
                transport.write_send(ctx, dst, &region, offset, data, NetMsg::Rpc { array, rpc });
            }
            TxReq::Shutdown => break,
        }
    }
}

/// An unacked reliable RPC awaiting its cumulative ack.
struct Pending {
    seq: u64,
    array: ArrayId,
    rpc: Rpc,
    deadline: VTime,
    retries: u32,
}

/// Ballot box for this node's own join announcement (held by the joiner's
/// agent while it is still `Joining`).
struct JoinPoll {
    /// `admits[v]` is set once survivor `v` voted to admit us.
    admits: Vec<bool>,
    /// When the next announcement round is due.
    next_announce: VTime,
}

/// Ballot box for one in-flight suspicion, held by the suspector's agent.
struct SuspectPoll {
    /// `votes[v]` is `Some(alive)` once voter `v`'s ballot arrived during
    /// *this* suspicion; a re-admitted peer starts a fresh box (old votes
    /// are fenced by dropping the box).
    votes: Vec<Option<bool>>,
    /// Query rounds sent so far.
    rounds: u32,
    /// When the next poll round (and verdict re-evaluation) is due.
    next_poll: VTime,
}

/// Outcome of counting a suspicion's ballots.
enum Verdict {
    /// Not enough ballots either way; keep polling.
    Pending,
    /// Someone has a fresh lease on the suspect: it lives.
    Refuted,
    /// A (possibly degenerate) quorum confirmed the death.
    Confirmed,
}

/// Count ballots for `suspect`. The electorate is every node except the
/// suspect; the suspector's own exhausted retries count as its ballot. One
/// `alive` vote refutes. A full majority of dead ballots confirms.
///
/// After `poll_rounds` query rounds the electorate degenerates to the
/// *reachable* voters: silent members that are themselves Suspected/Dead in
/// `view`, or whose lease on this node has lapsed (no receipt for
/// `lease_ns` — they cannot deliver a ballot), abstain. If every member has
/// either voted dead or abstained, the suspicion is confirmed on the
/// remaining evidence. This is what lets two survivors of a three-node
/// cluster agree on a real death, and what lets a node severed from
/// *everyone* (its own NIC died) converge on its local view instead of
/// polling forever — its declarations cannot propagate, so connected nodes'
/// quorum safety is untouched. The cost is deliberate: a node hearing no
/// peer at all cannot distinguish its own isolation from cluster death, and
/// resolves in favor of its own liveness (fail-stop, DESIGN.md §12).
#[allow(clippy::too_many_arguments)]
fn poll_verdict(
    st: &SuspectPoll,
    view: &MembershipView,
    me: NodeId,
    suspect: NodeId,
    nodes: usize,
    poll_rounds: u32,
    now: VTime,
    lease_ns: VTime,
) -> Verdict {
    if st.votes.iter().flatten().any(|&alive| alive) {
        return Verdict::Refuted;
    }
    let confirms = 1 + st.votes.iter().flatten().filter(|&&alive| !alive).count();
    if confirms >= quorum_needed(nodes) {
        return Verdict::Confirmed;
    }
    if st.rounds >= poll_rounds {
        let all_resolved = (0..nodes).filter(|&v| v != me && v != suspect).all(|v| {
            st.votes[v] == Some(false)
                || view.health(v) != PeerHealth::Alive
                || !view.lease_fresh(v, now, lease_ns)
        });
        if all_resolved {
            return Verdict::Confirmed;
        }
    }
    Verdict::Pending
}

/// Body of the per-node reliability agent (fault mode only): posts every
/// outgoing RPC with a sequence number, tracks it until acked, retransmits
/// on timeout with exponential backoff, keeps leases alive with idle
/// heartbeats, and runs the suspect → quorum-poll → confirm/refute
/// membership protocol when a retry budget is exhausted (module docs).
pub(crate) fn rel_thread_main(
    ctx: &mut Ctx,
    shared: Arc<ClusterShared>,
    node: NodeId,
    queue: Mailbox<RelMsg>,
) {
    let transport = shared.transports[node].clone();
    let fault = shared
        .cfg
        .fault
        .as_ref()
        .expect("reliability agent requires FaultConfig");
    let timeout = fault.rpc_timeout_ns;
    let max_retries = fault.max_retries;
    let lease_ns = fault.lease_ns;
    let heartbeat_ns = fault.heartbeat_ns;
    let poll_ns = fault.suspect_poll_ns;
    let poll_rounds = fault.suspect_poll_rounds;
    let nodes = shared.cfg.nodes;
    let stats = shared.stats[node].clone();
    let view = &shared.membership[node];
    let mut next_seq = vec![0u64; nodes];
    let mut outstanding: Vec<VecDeque<Pending>> = (0..nodes).map(|_| VecDeque::new()).collect();
    let mut suspects: Vec<Option<SuspectPoll>> = (0..nodes).map(|_| None).collect();
    let mut last_sent = vec![0 as VTime; nodes];
    let mut join: Option<JoinPoll> = None;

    /// Re-admit a refuted suspect and replay its parked SENDs with their
    /// original sequence numbers (the receiver deduplicates; the cumulative
    /// ack the replay provokes clears whatever had in fact arrived).
    #[allow(clippy::too_many_arguments)]
    fn refute(
        ctx: &mut Ctx,
        transport: &dyn Transport<NetMsg>,
        view: &MembershipView,
        stats: &NodeStats,
        parked: &mut VecDeque<Pending>,
        slot: &mut Option<SuspectPoll>,
        last_sent: &mut VTime,
        dst: NodeId,
        timeout: VTime,
    ) {
        view.readmit(dst);
        NodeStats::bump(&stats.refutations);
        *slot = None;
        let now = ctx.now();
        for p in parked.iter_mut() {
            p.retries = 0;
            p.deadline = now + timeout;
            transport.send(
                ctx,
                dst,
                NetMsg::SeqRpc {
                    seq: p.seq,
                    array: p.array,
                    rpc: p.rpc.clone(),
                },
            );
            NodeStats::bump(&stats.retransmits);
        }
        *last_sent = now;
    }

    /// Stamp a quorum-confirmed death into the membership view and fan the
    /// epoch-numbered `PeerDown` out to every runtime thread.
    fn confirm(
        ctx: &mut Ctx,
        shared: &ClusterShared,
        stats: &NodeStats,
        parked: &mut VecDeque<Pending>,
        slot: &mut Option<SuspectPoll>,
        node: NodeId,
        dst: NodeId,
    ) {
        let Some(epoch) = shared.membership[node].confirm_dead(dst) else {
            return;
        };
        NodeStats::bump(&stats.peers_down);
        NodeStats::bump(&stats.confirmed_deaths);
        NodeStats::raise(&stats.membership_epoch, epoch);
        parked.clear();
        *slot = None;
        for rt in &shared.rt_mailboxes[node] {
            rt.send(ctx, RtMsg::PeerDown { node: dst, epoch }, 0);
        }
    }

    loop {
        // Three timer families: the head retransmit timer of every live
        // un-suspected link (acks are cumulative, so only heads matter),
        // the poll timer of every suspicion, and each link's next idle
        // heartbeat. Parked (suspected) queues deliberately have no timer.
        let mut next_deadline: Option<VTime> = None;
        {
            let mut upd = |d: VTime| {
                next_deadline = Some(next_deadline.map_or(d, |x: VTime| x.min(d)));
            };
            for dst in 0..nodes {
                if dst == node || view.is_dead(dst) {
                    continue;
                }
                match &suspects[dst] {
                    Some(st) => upd(st.next_poll),
                    None => {
                        if let Some(p) = outstanding[dst].front() {
                            upd(p.deadline);
                        }
                    }
                }
                upd(last_sent[dst] + heartbeat_ns);
            }
            if let Some(jp) = &join {
                upd(jp.next_announce);
            }
        }
        let msg = match next_deadline {
            Some(d) => queue.recv_deadline(ctx, d),
            None => Some(queue.recv(ctx)),
        };
        match msg {
            Some(RelMsg::Send { dst, array, rpc }) => {
                if view.is_dead(dst) {
                    continue; // fail-stop: traffic to a dead peer is dropped
                }
                let seq = next_seq[dst];
                next_seq[dst] += 1;
                transport.send(
                    ctx,
                    dst,
                    NetMsg::SeqRpc {
                        seq,
                        array,
                        rpc: rpc.clone(),
                    },
                );
                last_sent[dst] = ctx.now();
                outstanding[dst].push_back(Pending {
                    seq,
                    array,
                    rpc,
                    deadline: ctx.now() + timeout,
                    retries: 0,
                });
            }
            Some(RelMsg::WriteSend {
                dst,
                region,
                offset,
                data,
                array,
                rpc,
            }) => {
                if view.is_dead(dst) {
                    continue;
                }
                // Posted even toward a Suspected peer: the WRITE always
                // lands (the fault model never drops one-sided verbs), and
                // the notification SEND is tracked like any other — parked
                // with the queue, replayed on re-admission.
                let seq = next_seq[dst];
                next_seq[dst] += 1;
                transport.write_send(
                    ctx,
                    dst,
                    &region,
                    offset,
                    data,
                    NetMsg::SeqRpc {
                        seq,
                        array,
                        rpc: rpc.clone(),
                    },
                );
                last_sent[dst] = ctx.now();
                outstanding[dst].push_back(Pending {
                    seq,
                    array,
                    rpc,
                    deadline: ctx.now() + timeout,
                    retries: 0,
                });
            }
            Some(RelMsg::Ack { from, seq }) => {
                while outstanding[from].front().is_some_and(|p| p.seq < seq) {
                    outstanding[from].pop_front();
                }
            }
            Some(RelMsg::ResetLink { peer }) => {
                // The peer restarted: its old incarnation's stream state is
                // void on both ends, so sequencing starts over from 0.
                next_seq[peer] = 0;
                outstanding[peer].clear();
                suspects[peer] = None;
                last_sent[peer] = ctx.now();
            }
            Some(RelMsg::SuspectQuery { from, suspect }) => {
                // Vote with this node's own lease oracle. A suspect this
                // node already confirmed dead gets a dead ballot even if a
                // stale lease stamp survives.
                let now = ctx.now();
                let alive = !view.is_dead(suspect) && view.lease_fresh(suspect, now, lease_ns);
                transport.send(ctx, from, NetMsg::SuspectVote { suspect, alive });
                last_sent[from] = now;
            }
            Some(RelMsg::SuspectVote {
                from,
                suspect,
                alive,
            }) => {
                // Votes for a peer this node is not currently suspecting
                // are fenced (stale ballots from a resolved or refuted
                // suspicion must not influence a later one).
                if let Some(st) = suspects[suspect].as_mut() {
                    st.votes[from] = Some(alive);
                    let now = ctx.now();
                    match poll_verdict(st, view, node, suspect, nodes, poll_rounds, now, lease_ns) {
                        Verdict::Refuted => refute(
                            ctx,
                            &*transport,
                            view,
                            &stats,
                            &mut outstanding[suspect],
                            &mut suspects[suspect],
                            &mut last_sent[suspect],
                            suspect,
                            timeout,
                        ),
                        Verdict::Confirmed => confirm(
                            ctx,
                            &shared,
                            &stats,
                            &mut outstanding[suspect],
                            &mut suspects[suspect],
                            node,
                            suspect,
                        ),
                        Verdict::Pending => {}
                    }
                }
            }
            Some(RelMsg::AnnounceJoin) => {
                // Start (or restart) the announce loop; the first round goes
                // out in the timer branch below.
                join = Some(JoinPoll {
                    admits: vec![false; nodes],
                    next_announce: ctx.now(),
                });
            }
            Some(RelMsg::JoinReq { from }) => {
                // First contact from a pre-provisioned joiner: admit it into
                // this node's view under a burned epoch and bring the
                // reliable link up exactly like a restart re-admission —
                // both directions start from sequence 0 with no suspicion.
                let admit = if view.is_joining(from) {
                    if view.admit(from).is_some() {
                        next_seq[from] = 0;
                        outstanding[from].clear();
                        suspects[from] = None;
                        shared.rx_links[node][from].lock().reset();
                    }
                    true
                } else {
                    // Duplicate announcement after we already admitted it —
                    // re-affirm; a confirmed-dead "joiner" is refused.
                    !view.is_dead(from)
                };
                transport.send(ctx, from, NetMsg::JoinVote { node: from, admit });
                last_sent[from] = ctx.now();
            }
            Some(RelMsg::JoinVote {
                from,
                node: who,
                admit,
            }) => {
                if who == node && admit {
                    if let Some(jp) = join.as_mut() {
                        jp.admits[from] = true;
                        let got = jp.admits.iter().filter(|&&v| v).count();
                        // Electorate: the peers this joiner can see as
                        // Alive. A majority of the full membership suffices;
                        // a smaller live cluster must answer unanimously.
                        let electorate = (0..nodes)
                            .filter(|&p| p != node && view.health(p) == PeerHealth::Alive)
                            .count();
                        let needed = quorum_needed(nodes).min(electorate).max(1);
                        if got >= needed {
                            view.admit(node);
                            join = None;
                        }
                    }
                }
            }
            Some(RelMsg::Shutdown) => break,
            None => {
                let now = ctx.now();
                // Join announce rounds: broadcast to every peer this joiner
                // sees as Alive until the vote resolves.
                let announce_due = matches!(&join, Some(jp) if now >= jp.next_announce);
                if announce_due {
                    let jp = join.as_mut().unwrap();
                    jp.next_announce = now + poll_ns;
                    for (dst, sent) in last_sent.iter_mut().enumerate().take(nodes) {
                        if dst == node || view.health(dst) != PeerHealth::Alive || jp.admits[dst] {
                            continue;
                        }
                        transport.send(ctx, dst, NetMsg::JoinReq { node });
                        *sent = now;
                    }
                }
                // Idle heartbeats: renew this node's lease at every live
                // peer it has not transmitted to for a heartbeat interval.
                for (dst, sent) in last_sent.iter_mut().enumerate() {
                    if dst == node || view.is_dead(dst) {
                        continue;
                    }
                    if now >= *sent + heartbeat_ns {
                        transport.send(ctx, dst, NetMsg::Heartbeat);
                        *sent = now;
                    }
                }
                // Retransmit pass over live, un-suspected links with an
                // expired head timer.
                for dst in 0..nodes {
                    if dst == node || view.is_dead(dst) || suspects[dst].is_some() {
                        continue;
                    }
                    let Some(head) = outstanding[dst].front_mut() else {
                        continue;
                    };
                    if head.deadline > now {
                        continue;
                    }
                    NodeStats::bump(&stats.rpc_timeouts);
                    if head.retries >= max_retries {
                        NodeStats::bump(&stats.suspicions);
                        if view.lease_fresh(dst, now, lease_ns) {
                            // The peer is still talking to us: the loss is
                            // one-way, so refute on the spot and keep
                            // retransmitting from a fresh retry budget.
                            NodeStats::bump(&stats.refutations);
                            head.retries = 0;
                        } else {
                            view.suspect(dst);
                            suspects[dst] = Some(SuspectPoll {
                                votes: vec![None; nodes],
                                rounds: 0,
                                next_poll: now, // first round goes out below
                            });
                            continue;
                        }
                    } else {
                        head.retries += 1;
                    }
                    head.deadline = now + (timeout << head.retries.min(16));
                    transport.send(
                        ctx,
                        dst,
                        NetMsg::SeqRpc {
                            seq: head.seq,
                            array: head.array,
                            rpc: head.rpc.clone(),
                        },
                    );
                    last_sent[dst] = now;
                    NodeStats::bump(&stats.retransmits);
                }
                // Poll pass: evaluate and advance every due suspicion.
                for dst in 0..nodes {
                    let due = matches!(&suspects[dst], Some(st) if now >= st.next_poll);
                    if !due {
                        continue;
                    }
                    if view.lease_fresh(dst, now, lease_ns) {
                        // The suspect spoke to us since the suspicion
                        // (lease renewed by the Rx thread): self-refute.
                        refute(
                            ctx,
                            &*transport,
                            view,
                            &stats,
                            &mut outstanding[dst],
                            &mut suspects[dst],
                            &mut last_sent[dst],
                            dst,
                            timeout,
                        );
                        continue;
                    }
                    let st = suspects[dst].as_ref().unwrap();
                    match poll_verdict(st, view, node, dst, nodes, poll_rounds, now, lease_ns) {
                        Verdict::Refuted => refute(
                            ctx,
                            &*transport,
                            view,
                            &stats,
                            &mut outstanding[dst],
                            &mut suspects[dst],
                            &mut last_sent[dst],
                            dst,
                            timeout,
                        ),
                        Verdict::Confirmed => confirm(
                            ctx,
                            &shared,
                            &stats,
                            &mut outstanding[dst],
                            &mut suspects[dst],
                            node,
                            dst,
                        ),
                        Verdict::Pending => {
                            // Another query round to everyone who has not
                            // voted and is not confirmed dead.
                            let st = suspects[dst].as_mut().unwrap();
                            st.rounds += 1;
                            st.next_poll = now + poll_ns;
                            let pending_voters: Vec<NodeId> = (0..nodes)
                                .filter(|&v| v != node && v != dst && st.votes[v].is_none())
                                .collect();
                            for v in pending_voters {
                                if view.is_dead(v) {
                                    continue;
                                }
                                transport.send(ctx, v, NetMsg::SuspectQuery { suspect: dst });
                                last_sent[v] = now;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Body of the per-node Rx thread: poll the transport and deliver RPCs to
/// the runtime thread that owns each message's chunk. In fault mode it also
/// terminates the reliable channel — in-order delivery, duplicate
/// suppression, and cumulative acknowledgment, per source node — and is the
/// membership view's ear: every receipt from `src` renews `src`'s lease.
pub(crate) fn rx_thread_main(ctx: &mut Ctx, shared: Arc<ClusterShared>, node: NodeId) {
    let transport = shared.transports[node].clone();
    let poll_cost = shared.cfg.net.cq_poll_ns;
    loop {
        // Opportunistic drain: take an already-delivered message without
        // re-entering the blocking receive path (one inbox probe instead
        // of a blocking-point setup per message of a burst). Timing is
        // unchanged — on the simulated backend `try_recv` on a delivered
        // message performs the same dequeue-and-bump a non-empty `recv`
        // would — so protocol traffic stays bit-identical.
        let (src, msg) = match transport.try_recv(ctx) {
            Some(item) => item,
            None => transport.recv(ctx),
        };
        ctx.charge(poll_cost);
        if matches!(msg, NetMsg::Halt) {
            break;
        }
        // A peer this node has confirmed dead gets *silence* — no acks, no
        // votes, no lease renewal: acking its traffic while the runtime
        // discards it would leave that peer waiting forever on replies that
        // will never come. Going quiet instead lets its own retries
        // exhaust, so the declaration becomes mutual and its blocked
        // requests fail over to `NodeUnavailable`. (A merely *Suspected*
        // peer is still served normally — its traffic is exactly what
        // refutes the suspicion.)
        if src != node && shared.is_peer_down(node, src) {
            continue;
        }
        // Any receipt proves the sender was alive when it transmitted.
        shared.membership[node].note_heard(src, ctx.now());
        match msg {
            NetMsg::Halt => break,
            NetMsg::Rpc { array, rpc } => {
                let chunk = rpc.route_chunk();
                shared
                    .rt_mailbox(node, array, chunk)
                    .send(ctx, RtMsg::Net { src, array, rpc }, 0);
            }
            NetMsg::Heartbeat => {
                // Lease already renewed above; nothing else to do.
            }
            NetMsg::SuspectQuery { suspect } => {
                if let Some(rel) = &shared.rel_mailboxes[node] {
                    rel.send(ctx, RelMsg::SuspectQuery { from: src, suspect }, 0);
                }
            }
            NetMsg::SuspectVote { suspect, alive } => {
                if let Some(rel) = &shared.rel_mailboxes[node] {
                    rel.send(
                        ctx,
                        RelMsg::SuspectVote {
                            from: src,
                            suspect,
                            alive,
                        },
                        0,
                    );
                }
            }
            NetMsg::SeqRpc { seq, array, rpc } => {
                // Link state lives in shared so `restart_peer` can reset it
                // when a peer is re-admitted; uncontended otherwise.
                let ack = {
                    let mut link = shared.rx_links[node][src].lock();
                    if seq < link.next_expected || link.reorder.contains_key(&seq) {
                        NodeStats::bump(&shared.stats[node].dup_rpcs);
                    } else if seq == link.next_expected {
                        let chunk = rpc.route_chunk();
                        shared.rt_mailbox(node, array, chunk).send(
                            ctx,
                            RtMsg::Net { src, array, rpc },
                            0,
                        );
                        link.next_expected += 1;
                        // Release any buffered successors the gap was blocking.
                        let mut next = link.next_expected;
                        while let Some((array, rpc)) = link.reorder.remove(&next) {
                            let chunk = rpc.route_chunk();
                            shared.rt_mailbox(node, array, chunk).send(
                                ctx,
                                RtMsg::Net { src, array, rpc },
                                0,
                            );
                            next += 1;
                        }
                        link.next_expected = next;
                    } else {
                        link.reorder.insert(seq, (array, rpc));
                    }
                    link.next_expected
                };
                // Ack cumulatively on every receipt — duplicates included,
                // since a duplicate usually means our previous ack was lost.
                transport.send(ctx, src, NetMsg::Ack { seq: ack });
            }
            NetMsg::Ack { seq } => {
                if let Some(rel) = &shared.rel_mailboxes[node] {
                    rel.send(ctx, RelMsg::Ack { from: src, seq }, 0);
                }
            }
            NetMsg::JoinReq { node: who } => {
                // Only the joiner itself may announce its own join.
                if who == src {
                    if let Some(rel) = &shared.rel_mailboxes[node] {
                        rel.send(ctx, RelMsg::JoinReq { from: src }, 0);
                    }
                }
            }
            NetMsg::JoinVote { node: who, admit } => {
                if let Some(rel) = &shared.rel_mailboxes[node] {
                    rel.send(
                        ctx,
                        RelMsg::JoinVote {
                            from: src,
                            node: who,
                            admit,
                        },
                        0,
                    );
                }
            }
        }
    }
}
