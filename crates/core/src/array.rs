//! The `DArray` public API (Figure 3): `get`/`set`, `apply` (Operate),
//! distributed `rlock`/`wlock`/`unlock`, and `pin`.
//!
//! `get`/`set`/`apply` follow the lock-free data access path of Figure 4:
//! check `delay_flag`, take a reference, check rights, touch the data,
//! release. A miss submits a request to the runtime through the
//! local-request queue and blocks (in virtual time) until filled, then
//! retries.

use std::marker::PhantomData;
use std::sync::Arc;

use dsim::{Ctx, WaitCell};
use rdma_fabric::NodeId;

use crate::config::AccessPath;
use crate::dentry::{Acquire, Dentry, Want};
use crate::element::Element;
use crate::error::DArrayError;
use crate::msg::{ChunkId, LocalKind, LocalReq, LockKind, RtMsg};
use crate::op::OpId;
use crate::shared::{data_location, ArrayShared, ClusterShared};
use crate::stats::NodeStats;

/// A node-local view of a distributed array of `T`. Cheap to clone; one per
/// application thread is typical.
pub struct DArray<T: Element> {
    pub(crate) shared: Arc<ClusterShared>,
    pub(crate) arr: Arc<ArrayShared>,
    pub(crate) node: NodeId,
    pub(crate) _pd: PhantomData<fn() -> T>,
}

impl<T: Element> Clone for DArray<T> {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
            arr: self.arr.clone(),
            node: self.node,
            _pd: PhantomData,
        }
    }
}

impl<T: Element> DArray<T> {
    /// Number of elements in the global array.
    pub fn len(&self) -> usize {
        self.arr.layout.len()
    }

    /// True for an empty array.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Elements per chunk (directory granularity).
    pub fn chunk_size(&self) -> usize {
        self.arr.layout.chunk_size()
    }

    /// The node this view is bound to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of nodes the array spans.
    pub fn nodes(&self) -> usize {
        self.arr.layout.nodes()
    }

    /// Home node of element `index` — as this node currently believes:
    /// elastic clusters answer from the local home map (which migration
    /// commits advance), static clusters from the layout.
    pub fn home_of(&self, index: usize) -> NodeId {
        self.arr.home_on(self.node, self.arr.layout.chunk_of(index))
    }

    /// Elements whose home is this node (useful for owner-computes loops).
    pub fn local_range(&self) -> std::ops::Range<usize> {
        self.arr.layout.node_elems(self.node)
    }

    #[inline]
    pub(crate) fn dentry(&self, chunk: usize) -> &Dentry {
        &self.arr.per_node[self.node].dentries[chunk]
    }

    /// Submit a request to the runtime and wait for completion (the slow
    /// path of Figure 4, lines 10-12).
    pub(crate) fn slow_request(&self, ctx: &mut Ctx, kind: LocalKind) {
        NodeStats::bump(&self.shared.stats[self.node].slow_misses);
        let waiter = WaitCell::new();
        let chunk = kind.route_chunk(self.arr.layout.chunk_size());
        self.shared.rt_mailbox(self.node, self.arr.id, chunk).send(
            ctx,
            RtMsg::Local(LocalReq {
                array: self.arr.id,
                kind,
                waiter: waiter.clone(),
            }),
            0,
        );
        waiter.wait(ctx);
    }

    /// Fast-path access skeleton: acquire rights for `want`, run `body` on
    /// the data word, release. Retries through the slow path on a miss;
    /// fails with [`DArrayError::NodeUnavailable`] instead of retrying
    /// forever when the chunk's home node has been declared down.
    #[inline]
    fn try_access<R>(
        &self,
        ctx: &mut Ctx,
        index: usize,
        want: Want,
        miss: impl Fn() -> LocalKind,
        body: impl Fn(&rdma_fabric::MemoryRegion, usize, &Self, &mut Ctx) -> R,
    ) -> Result<R, DArrayError> {
        assert!(index < self.len(), "index {index} out of bounds");
        let layout = &self.arr.layout;
        let chunk = layout.chunk_of(index);
        let off = layout.offset_in_chunk(index);
        let d = self.dentry(chunk);
        let cost = &self.shared.cfg.cost;
        let path_cost = self
            .shared
            .cfg
            .fast_path_cost_ns
            .unwrap_or_else(|| cost.darray_fast_path());
        let lock_based = self.shared.cfg.access_path == AccessPath::LockBased;
        loop {
            if lock_based {
                // §4.1 strawman: a per-chunk lock on every access. Large
                // overhead and chunk-serialized concurrency.
                d.chunk_lock.lock(ctx, cost.mutex_pair_ns);
            }
            ctx.charge(path_cost);
            match d.acquire(want) {
                Acquire::Ok(line) => {
                    let (region, word) =
                        data_location(&self.shared, &self.arr, self.node, line, chunk, off);
                    let r = body(region, word, self, ctx);
                    d.release();
                    if lock_based {
                        d.chunk_lock.unlock(ctx);
                    }
                    NodeStats::bump(&self.shared.stats[self.node].fast_hits);
                    return Ok(r);
                }
                Acquire::Delayed => {
                    if lock_based {
                        d.chunk_lock.unlock(ctx);
                    }
                    ctx.spin_hint(20);
                }
                Acquire::NoRights(st) => {
                    if lock_based {
                        d.chunk_lock.unlock(ctx);
                    }
                    crate::trace::event(
                        self.arr.id,
                        chunk as u32,
                        self.node,
                        ctx.now(),
                        format_args!("APP-MISS want={:?} state={:?}", want, st),
                    );
                    if let Some(message) = self.shared.protocol_fault.get() {
                        return Err(DArrayError::ProtocolInvariant { message });
                    }
                    let home = self.arr.home_on(self.node, chunk);
                    if home != self.node && self.shared.is_peer_down(self.node, home) {
                        return Err(self.shared.unavailable_error(self.node, home));
                    }
                    self.slow_request(ctx, miss());
                }
            }
        }
    }

    /// Read element `index` (Figure 3 line 3). Panics if the element's home
    /// node has been declared down; see [`DArray::try_get`].
    pub fn get(&self, ctx: &mut Ctx, index: usize) -> T {
        self.try_get(ctx, index)
            .unwrap_or_else(|e| panic!("get({index}): {e}"))
    }

    /// Fallible [`DArray::get`]: returns [`DArrayError::NodeUnavailable`]
    /// when the element's home node has been declared down and no local copy
    /// is cached (only possible when `ClusterConfig::fault` is set).
    pub fn try_get(&self, ctx: &mut Ctx, index: usize) -> Result<T, DArrayError> {
        let chunk = self.arr.layout.chunk_of(index) as ChunkId;
        let bits = self.try_access(
            ctx,
            index,
            Want::Read,
            || LocalKind::Read { chunk },
            |region, word, _, _| region.load(word),
        )?;
        Ok(T::from_bits(bits))
    }

    /// Write element `index` (Figure 3 line 4). Panics if the element's home
    /// node has been declared down; see [`DArray::try_set`].
    pub fn set(&self, ctx: &mut Ctx, index: usize, value: T) {
        self.try_set(ctx, index, value)
            .unwrap_or_else(|e| panic!("set({index}): {e}"))
    }

    /// Fallible [`DArray::set`].
    pub fn try_set(&self, ctx: &mut Ctx, index: usize, value: T) -> Result<(), DArrayError> {
        let chunk = self.arr.layout.chunk_of(index) as ChunkId;
        let bits = value.to_bits();
        self.try_access(
            ctx,
            index,
            Want::Write,
            || LocalKind::Write { chunk },
            move |region, word, _, _| region.store(word, bits),
        )
    }

    /// Apply a registered operator to element `index` (Figure 3 line 9, the
    /// Operate interface). Under the Operated state the operand is combined
    /// into the local operand buffer; under Exclusive rights it is applied
    /// to the value directly — both are the same commutative combine.
    ///
    /// ```
    /// use darray::{ArrayOptions, Cluster, ClusterConfig, Sim, SimConfig};
    /// Sim::new(SimConfig::default()).run(|ctx| {
    ///     let cluster = Cluster::new(ctx, ClusterConfig::test_config(3));
    ///     let min = cluster.ops().register_min_u64();
    ///     let arr = cluster.alloc_with::<u64>(1024, ArrayOptions::default(), |_| u64::MAX);
    ///     cluster.run(ctx, 1, move |ctx, env| {
    ///         let a = arr.on(env.node);
    ///         // All three nodes concurrently propose a minimum.
    ///         a.apply(ctx, 42, min, 100 + env.node as u64);
    ///         env.barrier(ctx);
    ///         assert_eq!(a.get(ctx, 42), 100);
    ///     });
    ///     cluster.shutdown(ctx);
    /// });
    /// ```
    pub fn apply(&self, ctx: &mut Ctx, index: usize, op: OpId, operand: T) {
        self.try_apply(ctx, index, op, operand)
            .unwrap_or_else(|e| panic!("apply({index}): {e}"))
    }

    /// Fallible [`DArray::apply`].
    pub fn try_apply(
        &self,
        ctx: &mut Ctx,
        index: usize,
        op: OpId,
        operand: T,
    ) -> Result<(), DArrayError> {
        let chunk = self.arr.layout.chunk_of(index) as ChunkId;
        let bits = operand.to_bits();
        let registry = self.shared.registry.clone();
        let op_cost = self.shared.cfg.cost.op_apply_ns;
        self.try_access(
            ctx,
            index,
            Want::Operate(op.0),
            || LocalKind::Operate { chunk, op: op.0 },
            move |region, word, this, ctx| {
                loop {
                    let cur = region.load(word);
                    let new = registry.combine(op, cur, bits);
                    if region.compare_exchange(word, cur, new).is_ok() {
                        break;
                    }
                }
                ctx.charge(op_cost);
                NodeStats::bump(&this.shared.stats[this.node].local_combines);
            },
        )
    }

    /// Atomic read-modify-write under exclusive (Write) ownership: acquires
    /// the chunk once and CAS-updates the element. This is how systems
    /// *without* the Operate interface (e.g. the GAM baseline's Atomic
    /// verbs) implement read-then-write — the chunk's ownership must
    /// migrate to the caller, serializing concurrent updaters.
    pub fn update(&self, ctx: &mut Ctx, index: usize, f: impl Fn(T) -> T) {
        self.try_update(ctx, index, f)
            .unwrap_or_else(|e| panic!("update({index}): {e}"))
    }

    /// Fallible [`DArray::update`].
    pub fn try_update(
        &self,
        ctx: &mut Ctx,
        index: usize,
        f: impl Fn(T) -> T,
    ) -> Result<(), DArrayError> {
        let chunk = self.arr.layout.chunk_of(index) as ChunkId;
        self.try_access(
            ctx,
            index,
            Want::Write,
            || LocalKind::Write { chunk },
            move |region, word, _, _| loop {
                let cur = region.load(word);
                let new = f(T::from_bits(cur)).to_bits();
                if region.compare_exchange(word, cur, new).is_ok() {
                    break;
                }
            },
        )
    }

    // ------------------------------------------------------------------
    // Distributed locks (Figure 3 lines 5-7)
    // ------------------------------------------------------------------

    /// Acquire the distributed reader lock of element `index`.
    pub fn rlock(&self, ctx: &mut Ctx, index: usize) {
        self.try_rlock(ctx, index)
            .unwrap_or_else(|e| panic!("rlock({index}): {e}"))
    }

    /// Fallible [`DArray::rlock`]: errors when the lock's home node has been
    /// declared down rather than waiting for a grant that can never come.
    pub fn try_rlock(&self, ctx: &mut Ctx, index: usize) -> Result<(), DArrayError> {
        self.try_lock_acquire(ctx, index, LockKind::Read)
    }

    /// Shared implementation of the fallible lock acquires. The home is
    /// checked both before submitting (fast fail) and after waking: a wake
    /// may come from `PeerDown` recovery rather than a grant, in which case
    /// the lock was NOT acquired.
    fn try_lock_acquire(
        &self,
        ctx: &mut Ctx,
        index: usize,
        kind: LockKind,
    ) -> Result<(), DArrayError> {
        assert!(index < self.len());
        let home = self.arr.layout.home_of(index);
        if let Some(message) = self.shared.protocol_fault.get() {
            return Err(DArrayError::ProtocolInvariant { message });
        }
        if home != self.node && self.shared.is_peer_down(self.node, home) {
            return Err(self.shared.unavailable_error(self.node, home));
        }
        self.slow_request(
            ctx,
            LocalKind::LockAcquire {
                index: index as u64,
                kind,
            },
        );
        if let Some(message) = self.shared.protocol_fault.get() {
            return Err(DArrayError::ProtocolInvariant { message });
        }
        if home != self.node && self.shared.is_peer_down(self.node, home) {
            return Err(self.shared.unavailable_error(self.node, home));
        }
        self.note_held(index, kind);
        Ok(())
    }

    /// Acquire the distributed writer lock of element `index`.
    ///
    /// ```
    /// use darray::{ArrayOptions, Cluster, ClusterConfig, Sim, SimConfig};
    /// Sim::new(SimConfig::default()).run(|ctx| {
    ///     let cluster = Cluster::new(ctx, ClusterConfig::test_config(2));
    ///     let arr = cluster.alloc::<u64>(512, ArrayOptions::default());
    ///     cluster.run(ctx, 1, move |ctx, env| {
    ///         let a = arr.on(env.node);
    ///         for _ in 0..5 {
    ///             a.wlock(ctx, 7);
    ///             let v = a.get(ctx, 7);
    ///             a.set(ctx, 7, v + 1); // read-modify-write under the lock
    ///             a.unlock(ctx, 7);
    ///         }
    ///         env.barrier(ctx);
    ///         assert_eq!(a.get(ctx, 7), 10);
    ///     });
    ///     cluster.shutdown(ctx);
    /// });
    /// ```
    pub fn wlock(&self, ctx: &mut Ctx, index: usize) {
        self.try_wlock(ctx, index)
            .unwrap_or_else(|e| panic!("wlock({index}): {e}"))
    }

    /// Fallible [`DArray::wlock`]; see [`DArray::try_rlock`].
    pub fn try_wlock(&self, ctx: &mut Ctx, index: usize) -> Result<(), DArrayError> {
        self.try_lock_acquire(ctx, index, LockKind::Write)
    }

    /// Release the lock this node holds on element `index`.
    pub fn unlock(&self, ctx: &mut Ctx, index: usize) {
        let kind = self.take_held(index);
        self.slow_request(
            ctx,
            LocalKind::LockRelease {
                index: index as u64,
                kind,
            },
        );
    }

    fn note_held(&self, index: usize, kind: LockKind) {
        let mut held = self.arr.per_node[self.node].held.lock();
        let e = held.entry(index as u64).or_insert((kind, 0));
        debug_assert_eq!(e.0, kind, "mixed lock kinds held on index {index}");
        e.1 += 1;
    }

    fn take_held(&self, index: usize) -> LockKind {
        let mut held = self.arr.per_node[self.node].held.lock();
        let e = held
            .get_mut(&(index as u64))
            .unwrap_or_else(|| panic!("unlock({index}) without a held lock"));
        let kind = e.0;
        e.1 -= 1;
        if e.1 == 0 {
            held.remove(&(index as u64));
        }
        kind
    }
}
